//! The relational source simulator.
//!
//! ALDSP's physical layer speaks to JDBC databases; this module is the
//! closest in-process equivalent that exercises the same code paths:
//! schema metadata (columns, primary keys, foreign keys) driving
//! introspection, conditioned `UPDATE … WHERE` statements carrying the
//! optimistic-concurrency "sameness" predicates, constraint
//! enforcement, and **XA two-phase commit**.
//!
//! Concurrency model: the store is sharded per table — every table
//! sits behind its own `RwLock`, so readers of different tables (and
//! concurrent readers of the same table) never contend, while a
//! transactional write takes the affected tables' write locks in
//! **canonical (sorted-name) order** so two multi-table transactions
//! can never deadlock. A separate *prepared-lock table* (the
//! transaction-manager mutex) pins the rows touched by a
//! prepared-but-undecided transaction so a concurrent transaction
//! cannot slip between `prepare` and `commit` — the standard
//! presumed-abort XA discipline. Lock hierarchy: catalog (briefly, to
//! resolve table handles) → table shards in sorted name order → the
//! transaction-manager / read-cache leaf mutexes. No path acquires a
//! shard lock while holding a leaf mutex.

// The versioned-scan/secondary-index layer sits on every read path,
// and the branch commit/rollback path is replayed by crash recovery;
// both must degrade via Results, never panic: enforced at lint level
// (test-only unwraps are re-allowed on the tests module).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

use xdm::datetime::{Date, DateTime};
use xdm::decimal::Decimal;
use xdm::error::{ErrorCode, XdmError, XdmResult};

use crate::fault::Op;
use crate::resilience::Access;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Integer,
    /// Exact decimal.
    Decimal,
    /// Variable-length string.
    Varchar,
    /// Boolean.
    Boolean,
    /// Calendar date.
    Date,
    /// Timestamp (second precision).
    Timestamp,
}

/// A typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Decimal.
    Dec(Decimal),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Date.
    Date(Date),
    /// Timestamp.
    Ts(DateTime),
}

impl SqlValue {
    /// The lexical form used by the XML row view.
    pub fn lexical(&self) -> String {
        match self {
            SqlValue::Null => String::new(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Dec(d) => d.to_string(),
            SqlValue::Str(s) => s.clone(),
            SqlValue::Bool(b) => b.to_string(),
            SqlValue::Date(d) => d.to_string(),
            SqlValue::Ts(t) => t.to_string(),
        }
    }

    /// Parse a lexical form into a typed value (NULL for empty
    /// strings on non-varchar columns).
    pub fn parse(ty: ColumnType, s: &str) -> XdmResult<SqlValue> {
        if s.is_empty() && ty != ColumnType::Varchar {
            return Ok(SqlValue::Null);
        }
        Ok(match ty {
            ColumnType::Integer => SqlValue::Int(s.trim().parse().map_err(|_| {
                XdmError::new(ErrorCode::DSP0003, format!("bad INTEGER literal {s:?}"))
            })?),
            ColumnType::Decimal => SqlValue::Dec(Decimal::parse(s)?),
            ColumnType::Varchar => SqlValue::Str(s.to_string()),
            ColumnType::Boolean => match s.trim() {
                "true" | "1" => SqlValue::Bool(true),
                "false" | "0" => SqlValue::Bool(false),
                _ => {
                    return Err(XdmError::new(
                        ErrorCode::DSP0003,
                        format!("bad BOOLEAN literal {s:?}"),
                    ))
                }
            },
            ColumnType::Date => SqlValue::Date(Date::parse(s)?),
            ColumnType::Timestamp => SqlValue::Ts(DateTime::parse(s)?),
        })
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Str(s) => write!(f, "'{s}'"),
            other => write!(f, "{}", other.lexical()),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// NOT NULL when false.
    pub nullable: bool,
}

impl Column {
    /// A NOT NULL column.
    pub fn required(name: &str, ty: ColumnType) -> Column {
        Column { name: name.to_string(), ty, nullable: false }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: ColumnType) -> Column {
        Column { name: name.to_string(), ty, nullable: true }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table`.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Constraint name (drives navigation-function naming).
    pub name: String,
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced (key) columns.
    pub ref_columns: Vec<String>,
}

/// A table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A row: values in schema column order.
pub type Row = Vec<SqlValue>;

/// An equality condition: conjunction of `col = value` (this is all
/// the decomposer ever generates — PK identification plus OCC
/// "sameness" predicates).
pub type Condition = Vec<(String, SqlValue)>;

/// One buffered write operation of a transaction.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// INSERT INTO table VALUES (row).
    Insert {
        /// Target table.
        table: String,
        /// The new row in column order.
        row: Row,
    },
    /// UPDATE table SET set WHERE cond; must affect exactly
    /// `expect_rows` rows or the transaction aborts (the OCC check).
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        set: Condition,
        /// WHERE conjunction.
        cond: Condition,
        /// Expected match count (1 for keyed updates).
        expect_rows: usize,
    },
    /// DELETE FROM table WHERE cond.
    Delete {
        /// Target table.
        table: String,
        /// WHERE conjunction.
        cond: Condition,
        /// Expected match count.
        expect_rows: usize,
    },
}

impl WriteOp {
    fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Update { table, .. }
            | WriteOp::Delete { table, .. } => table,
        }
    }

    /// Render as a SQL-ish string (diagnostics, EXPERIMENTS.md).
    pub fn to_sql(&self) -> String {
        let render_cond = |cond: &Condition| {
            cond.iter()
                .map(|(c, v)| format!("{c} = {v}"))
                .collect::<Vec<_>>()
                .join(" AND ")
        };
        match self {
            WriteOp::Insert { table, row } => format!(
                "INSERT INTO {table} VALUES ({})",
                row.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            WriteOp::Update { table, set, cond, .. } => format!(
                "UPDATE {table} SET {} WHERE {}",
                set.iter()
                    .map(|(c, v)| format!("{c} = {v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                render_cond(cond)
            ),
            WriteOp::Delete { table, cond, .. } => {
                format!("DELETE FROM {table} WHERE {}", render_cond(cond))
            }
        }
    }
}

/// Transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(pub u64);

static NEXT_TX: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh transaction id.
pub fn fresh_tx() -> TxId {
    TxId(NEXT_TX.fetch_add(1, Ordering::Relaxed))
}

#[derive(Debug)]
struct TableData {
    schema: TableSchema,
    rows: Vec<(u64, Row)>, // (row id, values); always sorted by row id
    next_row_id: u64,
    /// Monotonically increasing table version: bumped once per
    /// committed transaction that touches the table. Read functions
    /// key their materialized XDM trees on this, so unchanged tables
    /// never pay a re-conversion (ISSUE 2 tentpole part 2).
    version: u64,
    /// Lazily built secondary hash indexes: column name → value
    /// fingerprint → row ids. Built on the first indexed select of a
    /// column, maintained incrementally by `commit`, dropped wholesale
    /// by `rollback` (rebuilt on next use).
    indexes: HashMap<String, HashMap<String, Vec<u64>>>,
}

#[derive(Debug)]
struct Prepared {
    ops: Vec<WriteOp>,
    locked: HashSet<(String, u64)>,
    inserted_keys: Vec<(String, Vec<SqlValue>)>,
}

/// One table shard: the unit of reader/writer concurrency.
type TableHandle = Arc<RwLock<TableData>>;

/// Transaction-manager state: the prepared-lock table plus the
/// commit/abort counters. A leaf mutex in the lock hierarchy — no
/// path may acquire a table shard lock while holding it.
#[derive(Debug, Default)]
struct TxState {
    prepared: HashMap<TxId, Prepared>,
    commits: u64,
    aborts: u64,
}

#[derive(Debug, Default)]
struct DbShared {
    /// The catalog: table name → shard. Write-locked only by
    /// `create_table`; every data path takes a brief read lock to
    /// clone the shard handle and drops it before locking the shard.
    catalog: RwLock<HashMap<String, TableHandle>>,
    /// Table names in creation order (leaf mutex).
    table_order: Mutex<Vec<String>>,
    /// Transaction-manager state (leaf mutex).
    txm: Mutex<TxState>,
    /// Last successfully read snapshot per table (tagged with the
    /// table version *at snapshot time*), served as a marked-stale
    /// result when the source is unavailable and the resilience
    /// policy allows degraded reads. Stale consumers must key any
    /// derived caches on the snapshot's version, never the live one.
    /// Leaf mutex: held only for the map insert/lookup, never while a
    /// shard lock is being acquired.
    read_cache: Mutex<HashMap<String, (u64, Vec<Row>)>>,
}

/// Generation numbers for [`AccessSlot`]s are drawn from one global
/// counter, so a (slot address, generation) pair can never collide
/// across reallocated slots — the per-thread access cache keys on it.
static NEXT_ACCESS_GEN: AtomicU64 = AtomicU64::new(1);

/// The source's installed [`Access`] handle, readable without
/// contention: workers cache a private clone per thread keyed by the
/// slot's generation (bumped on every [`Database::set_access`]), so
/// the per-call path is one atomic load plus a thread-local lookup —
/// per-worker resilience state over shared breaker/injector cores
/// (the cores inside `Access` are `Arc`s, so a breaker trip observed
/// by one worker is seen by all).
#[derive(Debug)]
struct AccessSlot {
    /// 0 = never installed (fast path: `Access::none()` without
    /// touching the lock or the thread-local cache).
    gen: AtomicU64,
    slot: RwLock<Access>,
}

thread_local! {
    /// Per-thread access clones: slot address → (generation, Access).
    static ACCESS_CACHE: std::cell::RefCell<HashMap<usize, (u64, Access)>> =
        std::cell::RefCell::new(HashMap::new());
}

/// An in-memory relational database (one "source" in ALDSP terms).
///
/// Cloning shares the same underlying store (`Arc`).
///
/// Every externally visible operation is routed through the source's
/// [`Access`] handle (fault injection + retry/timeout/circuit
/// breaker); with no injector or policy installed the handle is a
/// pass-through. `commit`/`rollback` are deliberately *not* injectable
/// — once a branch votes yes in phase 1, phase 2 cannot fail (the XA
/// contract this simulator upholds).
#[derive(Debug, Clone)]
pub struct Database {
    /// The source name (e.g. `db1`).
    pub name: String,
    shared: Arc<DbShared>,
    access: Arc<AccessSlot>,
    /// Optimize-gated write-path fast paths (index-accelerated
    /// primary-key uniqueness checks in `prepare`). `Arc<AtomicBool>`
    /// rather than the engine's `Rc<Cell<bool>>` because `Database`
    /// must stay `Send`; introspection registers this handle as an
    /// engine opt mirror so `Engine::set_optimize` toggles it.
    /// Defaults to off (the seed's full-scan check) until registered.
    write_opt: Arc<AtomicBool>,
}

fn cerr(msg: impl Into<String>) -> XdmError {
    XdmError::new(ErrorCode::DSP0003, msg)
}

impl Database {
    /// Create an empty database.
    pub fn new(name: &str) -> Database {
        Database {
            name: name.to_string(),
            shared: Arc::new(DbShared::default()),
            access: Arc::new(AccessSlot {
                gen: AtomicU64::new(0),
                slot: RwLock::new(Access::none()),
            }),
            write_opt: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Resolve a table's shard handle (brief catalog read lock).
    fn table_handle(&self, table: &str) -> XdmResult<TableHandle> {
        self.shared
            .catalog
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| cerr(format!("no table {table} in {}", self.name)))
    }

    /// The optimize mirror for this source's write-path fast paths.
    /// Introspection hands this to [`Engine::register_opt_mirror`] so
    /// the engine kill-switch also disables index-accelerated
    /// uniqueness checks (`set_optimize(false)` must restore the
    /// seed's O(rows) scan exactly).
    ///
    /// [`Engine::register_opt_mirror`]: xqeval::Engine::register_opt_mirror
    pub fn opt_flag(&self) -> Arc<AtomicBool> {
        self.write_opt.clone()
    }

    /// Install (or replace) the fault-injection / resilience handle
    /// for this source. Shared across clones: bumps the slot
    /// generation so every worker's thread-local clone refreshes on
    /// its next [`Database::access`] call.
    pub fn set_access(&self, access: Access) {
        *self.access.slot.write() = access;
        self.access
            .gen
            .store(NEXT_ACCESS_GEN.fetch_add(1, Ordering::Relaxed), Ordering::Release);
    }

    /// A snapshot of this source's access handle — the per-worker
    /// resilience state. The hot path is lock-free: one atomic
    /// generation load plus a thread-local cache lookup; only a
    /// generation change (a new handle installed) re-reads the shared
    /// slot. The breaker/injector cores inside the clone are `Arc`s,
    /// so they stay shared across all workers.
    pub fn access(&self) -> Access {
        let gen = self.access.gen.load(Ordering::Acquire);
        if gen == 0 {
            // Never installed: skip the cache entirely.
            return Access::none();
        }
        let key = Arc::as_ptr(&self.access) as usize;
        ACCESS_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if let Some((g, a)) = c.get(&key) {
                if *g == gen {
                    return a.clone();
                }
            }
            let a = self.access.slot.read().clone();
            c.insert(key, (gen, a.clone()));
            a
        })
    }

    /// Create a table.
    pub fn create_table(&self, schema: TableSchema) -> XdmResult<()> {
        let mut catalog = self.shared.catalog.write();
        if catalog.contains_key(&schema.name) {
            return Err(cerr(format!("table {} already exists", schema.name)));
        }
        for pk in &schema.primary_key {
            if schema.col_index(pk).is_none() {
                return Err(cerr(format!("PK column {pk} not in table {}", schema.name)));
            }
        }
        self.shared.table_order.lock().push(schema.name.clone());
        catalog.insert(
            schema.name.clone(),
            Arc::new(RwLock::new(TableData {
                schema,
                rows: Vec::new(),
                next_row_id: 1,
                version: 1,
                indexes: HashMap::new(),
            })),
        );
        Ok(())
    }

    /// Table names in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.shared.table_order.lock().clone()
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> XdmResult<TableSchema> {
        Ok(self.table_handle(table)?.read().schema.clone())
    }

    /// All rows of a table (committed state).
    ///
    /// Routed through the source's [`Access`] handle as a degradable
    /// read: if the source is unavailable (injected outage or open
    /// breaker) the last successfully read snapshot is served instead,
    /// counted in [`crate::ResilienceStats::stale_reads`].
    pub fn scan(&self, table: &str) -> XdmResult<Vec<Row>> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Scan,
            || self.scan_raw(table),
            || self.cached_rows(table),
        )
    }

    fn scan_raw(&self, table: &str) -> XdmResult<Vec<Row>> {
        let h = self.table_handle(table)?;
        let (ver, rows) = {
            let t = h.read();
            let rows: Vec<Row> = t.rows.iter().map(|(_, r)| r.clone()).collect();
            (t.version, rows)
        };
        self.shared.read_cache.lock().insert(table.to_string(), (ver, rows.clone()));
        Ok(rows)
    }

    fn cached_rows(&self, table: &str) -> Option<Vec<Row>> {
        self.shared.read_cache.lock().get(table).map(|(_, rows)| rows.clone())
    }

    /// The table's current version counter (bumped once per committed
    /// transaction that touches it). This is catalog metadata, not a
    /// data read: it is deliberately *not* routed through the
    /// [`Access`] handle, so cache-validity probes neither trip fault
    /// injection nor count as source traffic.
    pub fn table_version(&self, table: &str) -> XdmResult<u64> {
        Ok(self.table_handle(table)?.read().version)
    }

    /// Versioned scan for materialization caching: returns the table
    /// version and, *only if* it differs from `known`, the rows. When
    /// the caller's cached version is still current, the row clone is
    /// skipped entirely — `(version, None)` means "your copy is good".
    ///
    /// Degrades like [`Database::scan`]: under an outage the last
    /// snapshot is served, tagged with the *snapshot's* version (never
    /// the live one), so stale-read consumers key derived caches
    /// correctly.
    pub fn scan_if_changed(
        &self,
        table: &str,
        known: Option<u64>,
    ) -> XdmResult<(u64, Option<Vec<Row>>)> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Scan,
            || self.scan_if_changed_raw(table, known),
            || self.cached_rows_versioned(table, known),
        )
    }

    fn scan_if_changed_raw(
        &self,
        table: &str,
        known: Option<u64>,
    ) -> XdmResult<(u64, Option<Vec<Row>>)> {
        let h = self.table_handle(table)?;
        let (ver, rows) = {
            let t = h.read();
            if known == Some(t.version) {
                return Ok((t.version, None));
            }
            let rows: Vec<Row> = t.rows.iter().map(|(_, r)| r.clone()).collect();
            (t.version, rows)
        };
        self.shared.read_cache.lock().insert(table.to_string(), (ver, rows.clone()));
        Ok((ver, Some(rows)))
    }

    fn cached_rows_versioned(
        &self,
        table: &str,
        known: Option<u64>,
    ) -> Option<(u64, Option<Vec<Row>>)> {
        let cache = self.shared.read_cache.lock();
        let (ver, rows) = cache.get(table)?;
        if known == Some(*ver) {
            Some((*ver, None))
        } else {
            Some((*ver, Some(rows.clone())))
        }
    }

    /// Rows matching an equality condition (degradable read, like
    /// [`Database::scan`]).
    pub fn select(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Select,
            || self.select_raw(table, cond),
            || self.cached_select(table, cond),
        )
    }

    fn select_raw(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let h = self.table_handle(table)?;
        let (ver, all, hits) = {
            let t = h.read();
            let idx = cond_indices(&t.schema, cond)?;
            let all: Vec<Row> = t.rows.iter().map(|(_, r)| r.clone()).collect();
            let hits: Vec<Row> =
                all.iter().filter(|r| row_matches(r, &idx)).cloned().collect();
            (t.version, all, hits)
        };
        self.shared.read_cache.lock().insert(table.to_string(), (ver, all));
        Ok(hits)
    }

    fn cached_select(&self, table: &str, cond: &Condition) -> Option<Vec<Row>> {
        let idx = {
            let h = self.table_handle(table).ok()?;
            let t = h.read();
            cond_indices(&t.schema, cond).ok()?
        };
        let cache = self.shared.read_cache.lock();
        let (_, cached) = cache.get(table)?;
        Some(cached.iter().filter(|r| row_matches(r, &idx)).cloned().collect())
    }

    /// Index-accelerated variant of [`Database::select`]: the first
    /// condition column with an indexable type (INTEGER, VARCHAR,
    /// BOOLEAN) and a non-NULL value probes a secondary hash index
    /// (built lazily on first use, maintained incrementally by
    /// `commit`); every candidate is then re-verified against the
    /// *full* condition, so results are always identical to a full
    /// scan. Falls back to a filtered scan when no condition column is
    /// indexable.
    ///
    /// This is the target of the FLWOR pushdown rewrite and the
    /// optimize-gated read paths; plain [`Database::select`] keeps the
    /// seed's full-scan behavior so `set_optimize(false)` measurements
    /// stay honest.
    pub fn select_indexed(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Select,
            || self.select_indexed_raw(table, cond),
            || self.cached_select(table, cond),
        )
    }

    fn select_indexed_raw(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let h = self.table_handle(table)?;
        // Fast path under the shared lock: concurrent indexed readers
        // of the same table must not contend once the index exists.
        {
            let t = h.read();
            let idx = cond_indices(&t.schema, cond)?;
            let probe = index_probe(&t.schema, cond);
            let Some((col, fp)) = probe else {
                // No indexable column in the condition: plain filtered
                // scan (without refreshing the stale-read snapshot —
                // only full scans snapshot the table).
                return Ok(t
                    .rows
                    .iter()
                    .filter(|(_, r)| row_matches(r, &idx))
                    .map(|(_, r)| r.clone())
                    .collect());
            };
            if let Some(map) = t.indexes.get(&col) {
                return Ok(probe_sorted_ids(&t.rows, map.get(&fp), &idx));
            }
        }
        // Slow path: build the index under the exclusive lock, then
        // probe it (re-deriving everything — the table may have moved
        // between the lock releases).
        let mut t = h.write();
        let idx = cond_indices(&t.schema, cond)?;
        let Some((col, fp)) = index_probe(&t.schema, cond) else {
            return Ok(t
                .rows
                .iter()
                .filter(|(_, r)| row_matches(r, &idx))
                .map(|(_, r)| r.clone())
                .collect());
        };
        let TableData { schema, rows, indexes, .. } = &mut *t;
        if !indexes.contains_key(&col) {
            let built = build_index(schema, rows, &col);
            indexes.insert(col.clone(), built);
        }
        Ok(probe_sorted_ids(rows, indexes.get(&col).and_then(|m| m.get(&fp)), &idx))
    }

    /// Columns of `table` that currently have a built secondary index
    /// (diagnostics; `xqsh --explain`).
    pub fn indexed_columns(&self, table: &str) -> Vec<String> {
        self.table_handle(table)
            .map(|h| {
                let t = h.read();
                let mut cols: Vec<String> = t.indexes.keys().cloned().collect();
                cols.sort();
                cols
            })
            .unwrap_or_default()
    }

    /// Number of rows.
    pub fn row_count(&self, table: &str) -> XdmResult<usize> {
        self.shared
            .catalog
            .read()
            .get(table)
            .map(|h| h.read().rows.len())
            .ok_or_else(|| cerr(format!("no table {table}")))
    }

    /// Auto-commit convenience: run a batch of ops as a local
    /// transaction (prepare + commit immediately).
    ///
    /// Fault-injectable as one unit (`Op::Execute`): a retried
    /// transient fails *before* the prepare, so a retry can never
    /// double-apply the batch.
    pub fn execute(&self, ops: Vec<WriteOp>) -> XdmResult<()> {
        let access = self.access();
        access.run(&self.name, Op::Execute, || {
            let tx = fresh_tx();
            self.prepare_raw(tx, ops.clone())?;
            self.commit_branch(tx)?;
            Ok(())
        })
    }

    /// Insert a single row, auto-commit.
    pub fn insert(&self, table: &str, row: Row) -> XdmResult<()> {
        self.execute(vec![WriteOp::Insert { table: table.to_string(), row }])
    }

    /// Phase one of 2PC: validate every op (constraints, expected row
    /// counts, no conflict with other prepared transactions) and pin
    /// the touched rows. On success the transaction is durable-ready;
    /// on failure nothing is changed.
    pub fn prepare(&self, tx: TxId, ops: Vec<WriteOp>) -> XdmResult<()> {
        let access = self.access();
        access.run(&self.name, Op::Prepare, || self.prepare_raw(tx, ops.clone()))
    }

    fn prepare_raw(&self, tx: TxId, ops: Vec<WriteOp>) -> XdmResult<()> {
        // Canonical lock order: write-lock every affected table shard
        // in sorted name order (two transactions touching the same
        // tables in opposite declaration order therefore can never
        // deadlock), THEN take the transaction-manager mutex — never
        // the other way round.
        let names = affected_tables(&ops);
        let handles: Vec<TableHandle> = names
            .iter()
            .map(|n| {
                self.shared
                    .catalog
                    .read()
                    .get(n)
                    .cloned()
                    .ok_or_else(|| cerr(format!("no table {n}")))
            })
            .collect::<XdmResult<_>>()?;
        let mut guards: Vec<RwLockWriteGuard<'_, TableData>> =
            handles.iter().map(|h| h.write()).collect();
        let use_index = self.write_opt.load(Ordering::Relaxed);
        let mut txm = self.shared.txm.lock();
        if txm.prepared.contains_key(&tx) {
            return Err(cerr(format!("transaction {tx:?} already prepared")));
        }
        // Collect locks already held by other prepared transactions.
        let held: HashSet<(String, u64)> = txm
            .prepared
            .values()
            .flat_map(|p| p.locked.iter().cloned())
            .collect();
        let mut locked = HashSet::new();
        let mut inserted_keys: Vec<(String, Vec<SqlValue>)> = Vec::new();
        // Pending inserts of other prepared txs also reserve PKs.
        let reserved_keys: HashSet<(String, String)> = txm
            .prepared
            .values()
            .flat_map(|p| p.inserted_keys.iter())
            .map(|(t, k)| (t.clone(), key_fingerprint(k)))
            .collect();
        for op in &ops {
            let ti = names
                .iter()
                .position(|n| n == op.table())
                .ok_or_else(|| cerr(format!("no table {}", op.table())))?;
            let t: &mut TableData = &mut guards[ti];
            match op {
                WriteOp::Insert { table, row } => {
                    validate_insert_shape(&t.schema, row)?;
                    let key = pk_values(&t.schema, row);
                    if !key.is_empty() {
                        let fp = key_fingerprint(&key);
                        let dup_existing = pk_dup_check(t, &key, use_index);
                        if dup_existing || reserved_keys.contains(&(table.clone(), fp)) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0003,
                                format!(
                                    "primary key violation on {table}: ({})",
                                    key.iter()
                                        .map(|v| v.to_string())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            ));
                        }
                        inserted_keys.push((table.clone(), key));
                    }
                }
                WriteOp::Update { table, set, cond, expect_rows } => {
                    let idx = cond_indices(&t.schema, cond)?;
                    // Validate SET column types/nullability.
                    for (c, v) in set {
                        let col = t
                            .schema
                            .column(c)
                            .ok_or_else(|| cerr(format!("no column {c} in {table}")))?;
                        if v.is_null() && !col.nullable {
                            return Err(cerr(format!("{table}.{c} is NOT NULL")));
                        }
                    }
                    let hits: Vec<u64> = t
                        .rows
                        .iter()
                        .filter(|(_, r)| row_matches(r, &idx))
                        .map(|(id, _)| *id)
                        .collect();
                    if hits.len() != *expect_rows {
                        return Err(XdmError::new(
                            ErrorCode::DSP0001,
                            format!(
                                "optimistic concurrency conflict: {} matched {} row(s), \
                                 expected {expect_rows}",
                                op.to_sql(),
                                hits.len()
                            ),
                        ));
                    }
                    for id in hits {
                        let key = (table.clone(), id);
                        if held.contains(&key) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0004,
                                format!("row {id} of {table} locked by another transaction"),
                            ));
                        }
                        locked.insert(key);
                    }
                }
                WriteOp::Delete { table, cond, expect_rows } => {
                    let idx = cond_indices(&t.schema, cond)?;
                    let hits: Vec<u64> = t
                        .rows
                        .iter()
                        .filter(|(_, r)| row_matches(r, &idx))
                        .map(|(id, _)| *id)
                        .collect();
                    if hits.len() != *expect_rows {
                        return Err(XdmError::new(
                            ErrorCode::DSP0001,
                            format!(
                                "optimistic concurrency conflict: {} matched {} row(s), \
                                 expected {expect_rows}",
                                op.to_sql(),
                                hits.len()
                            ),
                        ));
                    }
                    for id in hits {
                        let key = (table.clone(), id);
                        if held.contains(&key) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0004,
                                format!("row {id} of {table} locked by another transaction"),
                            ));
                        }
                        locked.insert(key);
                    }
                }
            }
        }
        txm.prepared.insert(tx, Prepared { ops, locked, inserted_keys });
        Ok(())
    }

    /// Phase two: apply a prepared transaction. Kept for callers that
    /// treat commit as infallible (everything was validated at
    /// prepare); failures are impossible by construction and silently
    /// dropped here — crash recovery uses [`Database::commit_branch`],
    /// which surfaces them as typed `aldsp:XA_REPLAY_FAILED` errors.
    pub fn commit(&self, tx: TxId) {
        let _ = self.commit_branch(tx);
    }

    /// Phase two, **idempotent** branch form for the recovery manager:
    /// apply the branch prepared under `tx`.
    ///
    /// Returns `Ok(true)` when a prepared branch was applied,
    /// `Ok(false)` when nothing is prepared under `tx` — either the
    /// branch already committed (a replay after a crash between the
    /// source commit and the journal's `Committed` record) or it never
    /// prepared here. Replaying a decision any number of times is
    /// therefore safe: only the first call applies writes.
    ///
    /// Internal inconsistencies that prepare-time validation should
    /// make impossible (a table vanishing under a prepared op) surface
    /// as `aldsp:XA_REPLAY_FAILED` instead of panicking — the commit
    /// path must never poison the database lock.
    pub fn commit_branch(&self, tx: TxId) -> XdmResult<bool> {
        let replay_err = |what: &str| {
            crate::errors::AldspCode::XaReplayFailed.error(format!(
                "commit replay of {tx:?} on {}: {what} disappeared after prepare",
                self.name
            ))
        };
        // Peek the affected table set under the tx-manager lock, then
        // RELEASE it before taking shard locks (leaf mutexes are never
        // held across shard acquisition). The entry is claimed — i.e.
        // removed — only after the shards are write-locked, so a
        // concurrent duplicate commit_branch loses the race and
        // returns Ok(false).
        let names: Vec<String> = {
            let txm = self.shared.txm.lock();
            match txm.prepared.get(&tx) {
                Some(p) => affected_tables(&p.ops),
                None => return Ok(false),
            }
        };
        let handles: Vec<TableHandle> = names
            .iter()
            .map(|n| {
                self.shared
                    .catalog
                    .read()
                    .get(n)
                    .cloned()
                    .ok_or_else(|| replay_err(&format!("table {n}")))
            })
            .collect::<XdmResult<_>>()?;
        // Canonical order: `names` is sorted, so the write locks are
        // taken in the same global order as prepare_raw's.
        let mut guards: Vec<RwLockWriteGuard<'_, TableData>> =
            handles.iter().map(|h| h.write()).collect();
        let p = {
            let mut txm = self.shared.txm.lock();
            match txm.prepared.remove(&tx) {
                Some(p) => p,
                None => return Ok(false),
            }
        };
        let lookup = |table: &str| -> XdmResult<usize> {
            names
                .iter()
                .position(|n| n == table)
                .ok_or_else(|| replay_err(&format!("table {table}")))
        };
        let mut touched: Vec<String> = Vec::new();
        for op in p.ops {
            let tname = op.table().to_string();
            if !touched.contains(&tname) {
                touched.push(tname);
            }
            match op {
                WriteOp::Insert { table, row } => {
                    let ti = lookup(&table)?;
                    let t: &mut TableData = &mut guards[ti];
                    let TableData { schema, rows, next_row_id, indexes, .. } = &mut *t;
                    let id = *next_row_id;
                    *next_row_id += 1;
                    // Incrementally maintain any built secondary index.
                    for (col, map) in indexes.iter_mut() {
                        if let Some(ci) = schema.col_index(col) {
                            if let Some(fp) = index_fingerprint(&row[ci]) {
                                map.entry(fp).or_default().push(id);
                            }
                        }
                    }
                    rows.push((id, row));
                }
                WriteOp::Update { table, set, cond, .. } => {
                    let ti = lookup(&table)?;
                    let t: &mut TableData = &mut guards[ti];
                    let TableData { schema, rows, indexes, .. } = &mut *t;
                    let idx = cond_indices(schema, &cond)
                        .map_err(|_| replay_err("condition column"))?;
                    let sets: Vec<(usize, SqlValue)> = set
                        .iter()
                        .map(|(c, v)| {
                            schema
                                .col_index(c)
                                .map(|i| (i, v.clone()))
                                .ok_or_else(|| replay_err(&format!("column {c}")))
                        })
                        .collect::<XdmResult<_>>()?;
                    for (id, r) in rows.iter_mut() {
                        if !row_matches(r, &idx) {
                            continue;
                        }
                        // Capture old fingerprints of indexed columns,
                        // apply the SETs, then fix up changed entries.
                        let old: Vec<(String, Option<String>)> = indexes
                            .keys()
                            .map(|col| {
                                let fp = schema
                                    .col_index(col)
                                    .and_then(|ci| index_fingerprint(&r[ci]));
                                (col.clone(), fp)
                            })
                            .collect();
                        for (i, v) in &sets {
                            r[*i] = v.clone();
                        }
                        for (col, old_fp) in old {
                            let Some(ci) = schema.col_index(&col) else { continue };
                            let new_fp = index_fingerprint(&r[ci]);
                            if old_fp == new_fp {
                                continue;
                            }
                            let Some(map) = indexes.get_mut(&col) else { continue };
                            if let Some(fp) = old_fp {
                                if let Some(ids) = map.get_mut(&fp) {
                                    ids.retain(|x| x != id);
                                }
                            }
                            if let Some(fp) = new_fp {
                                map.entry(fp).or_default().push(*id);
                            }
                        }
                    }
                }
                WriteOp::Delete { table, cond, .. } => {
                    let ti = lookup(&table)?;
                    let t: &mut TableData = &mut guards[ti];
                    let TableData { schema, rows, indexes, .. } = &mut *t;
                    let idx = cond_indices(schema, &cond)
                        .map_err(|_| replay_err("condition column"))?;
                    rows.retain(|(id, r)| {
                        if !row_matches(r, &idx) {
                            return true;
                        }
                        for (col, map) in indexes.iter_mut() {
                            if let Some(fp) = schema
                                .col_index(col)
                                .and_then(|ci| index_fingerprint(&r[ci]))
                            {
                                if let Some(ids) = map.get_mut(&fp) {
                                    ids.retain(|x| x != id);
                                }
                            }
                        }
                        false
                    });
                }
            }
        }
        // One version bump per touched table per committed transaction:
        // this is what invalidates the materialization caches above.
        for table in touched {
            if let Some(ti) = names.iter().position(|n| *n == table) {
                guards[ti].version += 1;
            }
        }
        drop(guards);
        self.shared.txm.lock().commits += 1;
        Ok(true)
    }

    /// Abort a prepared (or never-prepared) transaction; releases
    /// locks, changes nothing.
    pub fn rollback(&self, tx: TxId) {
        let _ = self.rollback_branch(tx);
    }

    /// Abort, **idempotent** branch form for the recovery manager.
    /// Returns `true` when a prepared branch was actually released,
    /// `false` when nothing was prepared under `tx` (already rolled
    /// back, already committed, or never prepared here) — replaying a
    /// presumed abort is always safe.
    pub fn rollback_branch(&self, tx: TxId) -> bool {
        let p = {
            let mut txm = self.shared.txm.lock();
            match txm.prepared.remove(&tx) {
                Some(p) => {
                    txm.aborts += 1;
                    p
                }
                None => return false,
            }
        };
        // Conservative: drop the secondary indexes of every table
        // the aborted transaction *named*. The rows never changed
        // (writes are buffered until commit), so this is purely a
        // belt-and-braces measure — the indexes are rebuilt lazily
        // on the next indexed select. Versions are untouched: the
        // committed state is exactly what it was. Shard locks are
        // taken one at a time, after the tx-manager lock is released.
        for name in affected_tables(&p.ops) {
            if let Some(h) = self.shared.catalog.read().get(&name).cloned() {
                h.write().indexes.clear();
            }
        }
        true
    }

    /// Is the transaction currently in prepared state?
    pub fn is_prepared(&self, tx: TxId) -> bool {
        self.shared.txm.lock().prepared.contains_key(&tx)
    }

    /// (commits, aborts) counters — used by the XA experiments.
    pub fn stats(&self) -> (u64, u64) {
        let txm = self.shared.txm.lock();
        (txm.commits, txm.aborts)
    }
}

/// Sorted, deduplicated table names touched by a write set — the
/// canonical shard-lock acquisition order shared by `prepare_raw` and
/// `commit_branch`.
fn affected_tables(ops: &[WriteOp]) -> Vec<String> {
    let mut names: Vec<String> = ops.iter().map(|op| op.table().to_string()).collect();
    names.sort_unstable();
    names.dedup();
    names
}

fn validate_insert_shape(schema: &TableSchema, row: &Row) -> XdmResult<()> {
    if row.len() != schema.columns.len() {
        return Err(cerr(format!(
            "row arity {} does not match table {} ({} columns)",
            row.len(),
            schema.name,
            schema.columns.len()
        )));
    }
    for (col, val) in schema.columns.iter().zip(row) {
        if val.is_null() {
            if !col.nullable {
                return Err(cerr(format!("{}.{} is NOT NULL", schema.name, col.name)));
            }
            continue;
        }
        let ok = matches!(
            (col.ty, val),
            (ColumnType::Integer, SqlValue::Int(_))
                | (ColumnType::Decimal, SqlValue::Dec(_))
                | (ColumnType::Decimal, SqlValue::Int(_))
                | (ColumnType::Varchar, SqlValue::Str(_))
                | (ColumnType::Boolean, SqlValue::Bool(_))
                | (ColumnType::Date, SqlValue::Date(_))
                | (ColumnType::Timestamp, SqlValue::Ts(_))
        );
        if !ok {
            return Err(cerr(format!(
                "type mismatch for {}.{}: {:?}",
                schema.name, col.name, val
            )));
        }
    }
    Ok(())
}

fn pk_values(schema: &TableSchema, row: &Row) -> Vec<SqlValue> {
    schema
        .primary_key
        .iter()
        .filter_map(|c| schema.col_index(c).map(|i| row[i].clone()))
        .collect()
}

fn key_fingerprint(key: &[SqlValue]) -> String {
    key.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\u{1}")
}

/// Does a committed row with primary key `key` already exist?
///
/// With `use_index` (the optimize mirror is on) a single-column
/// indexable PK probes the secondary hash index — built lazily here if
/// absent, exactly like indexed selects, and maintained incrementally
/// by `commit` afterwards. This turns the per-insert duplicate check
/// from O(rows) into O(1), which is the difference between O(n²) and
/// O(n) for the paper's iterate-over-create loops (use case 3 / E3).
/// Candidates are always re-verified against the actual key values,
/// and multi-column, non-indexable, or NULL-bearing keys fall back to
/// the full scan, so the answer is identical in every case.
fn pk_dup_check(t: &mut TableData, key: &[SqlValue], use_index: bool) -> bool {
    if use_index {
        if let [pk_col] = &t.schema.primary_key[..] {
            let pk_col = pk_col.clone();
            let pk_indexable = t
                .schema
                .column(&pk_col)
                .map(|c| indexable_type(c.ty))
                .unwrap_or(false);
            if pk_indexable {
                if let Some(fp) = index_fingerprint(&key[0]) {
                    let TableData { schema, rows, indexes, .. } = t;
                    let map = indexes
                        .entry(pk_col.clone())
                        .or_insert_with(|| build_index(schema, rows, &pk_col));
                    return map.get(&fp).is_some_and(|ids| {
                        ids.iter().any(|id| {
                            rows.binary_search_by_key(id, |(rid, _)| *rid)
                                .map(|pos| pk_values(schema, &rows[pos].1) == key)
                                .unwrap_or(false)
                        })
                    });
                }
            }
        }
    }
    t.rows.iter().any(|(_, r)| pk_values(&t.schema, r) == key)
}

fn cond_indices(
    schema: &TableSchema,
    cond: &Condition,
) -> XdmResult<Vec<(usize, SqlValue)>> {
    cond.iter()
        .map(|(c, v)| {
            schema
                .col_index(c)
                .map(|i| (i, v.clone()))
                .ok_or_else(|| cerr(format!("no column {c} in {}", schema.name)))
        })
        .collect()
}

fn row_matches(row: &Row, idx: &[(usize, SqlValue)]) -> bool {
    idx.iter().all(|(i, v)| &row[*i] == v)
}

/// Column types eligible for secondary hash indexes. DECIMAL is
/// excluded on purpose: its equality is *numeric* (manual `PartialEq`
/// — `1.0 == 1.00`), so a lexical fingerprint would split equal values
/// across buckets and produce false negatives. DATE/TIMESTAMP are
/// excluded to keep fingerprints trivially canonical.
fn indexable_type(ty: ColumnType) -> bool {
    matches!(ty, ColumnType::Integer | ColumnType::Varchar | ColumnType::Boolean)
}

/// Canonical hash-bucket key for an indexable value. NULL returns
/// `None` (NULL rows are not indexed; conditions on NULL fall back to
/// a filtered scan so `NULL = NULL` matching keeps the seed
/// semantics), as does any value of a non-indexable type.
fn index_fingerprint(v: &SqlValue) -> Option<String> {
    match v {
        SqlValue::Int(i) => Some(format!("i{i}")),
        SqlValue::Str(s) => Some(format!("s{s}")),
        SqlValue::Bool(b) => Some(format!("b{b}")),
        _ => None,
    }
}

/// First condition column with an indexable type (INTEGER, VARCHAR,
/// BOOLEAN) and a non-NULL probe value, as `(column, fingerprint)`.
/// `None` sends the caller down the filtered-scan path.
fn index_probe(schema: &TableSchema, cond: &Condition) -> Option<(String, String)> {
    cond.iter().find_map(|(c, v)| {
        let col = schema.column(c)?;
        if !indexable_type(col.ty) {
            return None;
        }
        index_fingerprint(v).map(|fp| (c.clone(), fp))
    })
}

/// Probe a secondary-index bucket and re-verify every candidate
/// against the full condition. Results come back in table (row-id)
/// order, exactly like a full scan: buckets accumulate in maintenance
/// order, so the ids are sorted first.
fn probe_sorted_ids(
    rows: &[(u64, Row)],
    ids: Option<&Vec<u64>>,
    idx: &[(usize, SqlValue)],
) -> Vec<Row> {
    let mut ids = ids.cloned().unwrap_or_default();
    ids.sort_unstable();
    let mut hits = Vec::new();
    for id in ids {
        // `rows` is always sorted by row id (ids are allocated
        // monotonically and deletes preserve order).
        if let Ok(pos) = rows.binary_search_by_key(&id, |(rid, _)| *rid) {
            let (_, r) = &rows[pos];
            if row_matches(r, idx) {
                hits.push(r.clone());
            }
        }
    }
    hits
}

fn build_index(
    schema: &TableSchema,
    rows: &[(u64, Row)],
    col: &str,
) -> HashMap<String, Vec<u64>> {
    let mut map: HashMap<String, Vec<u64>> = HashMap::new();
    if let Some(ci) = schema.col_index(col) {
        for (id, r) in rows {
            if let Some(fp) = index_fingerprint(&r[ci]) {
                map.entry(fp).or_default().push(*id);
            }
        }
    }
    map
}

// ---------------------------------------------------------------- 2PC

/// Where to inject a coordinator crash in the XA experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after preparing the first participant only.
    AfterFirstPrepare,
    /// Crash after all prepares, before any commit (decision not yet
    /// logged → presumed abort).
    AfterAllPrepares,
    /// Crash after the decision is logged and the first commit is
    /// delivered (recovery must push the rest).
    AfterFirstCommit,
}

/// Outcome of a coordinated transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOutcome {
    /// All participants committed.
    Committed,
    /// All participants rolled back. Carries the typed error that
    /// caused the abort so callers (and ultimately XQSE `catch`
    /// clauses) can discriminate an infrastructure outage from an OCC
    /// conflict from a constraint violation.
    Aborted(XdmError),
}

/// A two-phase-commit coordinator over multiple [`Database`]
/// participants (§II.C: XA across the affected sources).
pub struct TwoPhaseCoordinator {
    participants: Vec<(Database, Vec<WriteOp>)>,
}

impl TwoPhaseCoordinator {
    /// Build a coordinator over per-source op batches.
    pub fn new(participants: Vec<(Database, Vec<WriteOp>)>) -> TwoPhaseCoordinator {
        TwoPhaseCoordinator { participants }
    }

    /// Run the protocol to completion.
    pub fn run(self) -> TxOutcome {
        self.run_with_crash(None).0
    }

    /// Run with an optional injected coordinator crash; returns the
    /// outcome *after recovery* plus whether a crash was simulated.
    /// Recovery semantics: no decision logged → presumed abort; commit
    /// decision logged → commit is pushed to every participant.
    pub fn run_with_crash(self, crash: Option<CrashPoint>) -> (TxOutcome, bool) {
        let tx = fresh_tx();
        let mut prepared: Vec<&Database> = Vec::new();
        let mut crashed = false;
        // Phase 1.
        for (i, (db, ops)) in self.participants.iter().enumerate() {
            match db.prepare(tx, ops.clone()) {
                Ok(()) => prepared.push(db),
                Err(e) => {
                    for p in &prepared {
                        p.rollback(tx);
                    }
                    return (TxOutcome::Aborted(e), crashed);
                }
            }
            if crash == Some(CrashPoint::AfterFirstPrepare) && i == 0 {
                crashed = true;
                // Recovery: no commit decision was logged → abort all
                // prepared branches (presumed abort).
                for p in &prepared {
                    p.rollback(tx);
                }
                // The remaining participants never prepared; nothing
                // to do for them.
                return (
                    TxOutcome::Aborted(
                        crate::errors::AldspCode::TxAborted
                            .error("coordinator crash before decision"),
                    ),
                    crashed,
                );
            }
        }
        if crash == Some(CrashPoint::AfterAllPrepares) {
            crashed = true;
            // Still no decision logged → presumed abort on recovery.
            for p in &prepared {
                p.rollback(tx);
            }
            return (
                TxOutcome::Aborted(
                    crate::errors::AldspCode::TxAborted
                        .error("coordinator crash before decision"),
                ),
                crashed,
            );
        }
        // Decision: COMMIT (logged here — conceptually the force-write
        // of the commit record).
        for (i, (db, _)) in self.participants.iter().enumerate() {
            db.commit(tx);
            if crash == Some(CrashPoint::AfterFirstCommit) && i == 0 {
                crashed = true;
                // Recovery replays the logged COMMIT decision to the
                // remaining participants.
                for (db2, _) in self.participants.iter().skip(1) {
                    db2.commit(tx);
                }
                return (TxOutcome::Committed, crashed);
            }
        }
        (TxOutcome::Committed, crashed)
    }

    /// Run the protocol with every point journaled and crash-injectable
    /// — the crash-consistent driver behind multi-source
    /// `decompose::execute`.
    ///
    /// Each protocol point is (a) recorded in the coordinator journal
    /// *before* the protocol advances, and (b) followed by a crash
    /// check against the fault injector, keyed by the XA ops
    /// ([`Op::XaBegin`] on `"coordinator"`, [`Op::XaPrepared`] per
    /// branch, [`Op::XaDecide`] on `"coordinator"`, [`Op::XaCommit`]
    /// per branch). For N participants that is `2N + 2` injectable
    /// points. A firing `FaultKind::CrashPoint` makes this return
    /// `Err(aldsp:XA_COORD_CRASH)` **without any cleanup** — prepared
    /// branches keep their locks, committed branches keep their writes
    /// — exactly the divergence [`crate::journal::RecoveryManager`]
    /// exists to resolve.
    ///
    /// An ordinary prepare failure still aborts tidily (roll back the
    /// prepared branches, journal `Aborted`, return
    /// `Ok(TxOutcome::Aborted)`), matching [`TwoPhaseCoordinator::run`].
    ///
    /// **Budgets and cancellation.** At every *pre-decision* point
    /// (after `Begin`, after each `Prepared`, and immediately before
    /// the `CommitDecision` force-write) the coordinator consults the
    /// thread-local request budget: an expired deadline or an external
    /// cancel aborts tidily — prepared branches are rolled back, an
    /// `Aborted` record is journaled, and the budget error rides out in
    /// `Ok(TxOutcome::Aborted)`. Once the decision is journaled the
    /// transaction is past the point of no return and commits to
    /// completion regardless of the budget — a half-committed
    /// transaction is worse than a late one. A `FaultKind::Stall` rule
    /// at a protocol point advances `clock` before the budget is
    /// consulted, which is how the chaos matrix expires a deadline at
    /// an exact protocol step.
    pub fn run_journaled(
        self,
        journal: &crate::journal::CoordinatorJournal,
        injector: Option<&Arc<Mutex<crate::fault::FaultInjector>>>,
        clock: Option<&crate::resilience::VirtualClock>,
    ) -> XdmResult<TxOutcome> {
        use crate::journal::XaRecord;

        // Consult the injector at a protocol point. Crash verdicts
        // unwind with no cleanup; Stall verdicts advance the virtual
        // clock (burning the request's deadline) and continue.
        // Error/delay kinds aimed at source ops are injected inside
        // `Database::prepare` (via Access::run) as before, not at
        // coordinator points.
        let point_check = |source: &str, op: Op| -> XdmResult<()> {
            match injector.and_then(|inj| inj.lock().on_call(source, op)) {
                Some(crate::fault::Injected::Crash) => {
                    Err(crate::errors::AldspCode::XaCoordCrash
                        .error(format!("coordinator crashed at {op} ({source})")))
                }
                Some(crate::fault::Injected::Stall(ms)) => {
                    if let Some(c) = clock {
                        c.advance(ms);
                    }
                    Ok(())
                }
                _ => Ok(()),
            }
        };
        // The budget verdict at a pre-decision point, if any.
        let budget_err = || xqeval::budget::current_budget().and_then(|b| b.check().err());

        let tx = fresh_tx();
        let xid = tx.0;
        let branches: Vec<String> =
            self.participants.iter().map(|(db, _)| db.name.clone()).collect();
        // Tidy pre-decision abort: release every prepared branch and
        // journal the decision so recovery has nothing to presume.
        let abort_with = |prepared: &[&Database], e: XdmError| -> XdmResult<TxOutcome> {
            for p in prepared {
                p.rollback_branch(tx);
            }
            journal.append(XaRecord::Aborted { xid })?;
            Ok(TxOutcome::Aborted(e))
        };

        journal.append(XaRecord::Begin { xid, branches })?;
        point_check("coordinator", Op::XaBegin)?;
        if let Some(e) = budget_err() {
            return abort_with(&[], e);
        }

        // Phase 1: prepare every branch, journaling each yes-vote.
        let mut prepared: Vec<&Database> = Vec::new();
        for (db, ops) in &self.participants {
            match db.prepare(tx, ops.clone()) {
                Ok(()) => prepared.push(db),
                // A no-vote is not a crash: abort tidily.
                Err(e) => return abort_with(&prepared, e),
            }
            journal.append(XaRecord::Prepared { xid, source: db.name.clone() })?;
            // A crash here leaves this branch (and every earlier one)
            // holding prepared locks with no decision journaled —
            // recovery presumes abort.
            point_check(&db.name, Op::XaPrepared)?;
            if let Some(e) = budget_err() {
                return abort_with(&prepared, e);
            }
        }

        // Last chance to cancel: once the decision is journaled the
        // transaction commits no matter what the budget says.
        if let Some(e) = budget_err() {
            return abort_with(&prepared, e);
        }
        // The point of no return.
        journal.append(XaRecord::CommitDecision { xid })?;
        point_check("coordinator", Op::XaDecide)?;

        // Phase 2: commit every branch, journaling each completion.
        for (db, _) in &self.participants {
            db.commit_branch(tx)?;
            // A crash here: the branch is committed at the source but
            // its Committed record is missing — recovery replays the
            // decision, and the branch's idempotent commit absorbs it.
            point_check(&db.name, Op::XaCommit)?;
            journal.append(XaRecord::Committed { xid, source: db.name.clone() })?;
        }
        Ok(TxOutcome::Committed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn people_schema() -> TableSchema {
        TableSchema {
            name: "PEOPLE".into(),
            columns: vec![
                Column::required("ID", ColumnType::Integer),
                Column::required("NAME", ColumnType::Varchar),
                Column::nullable("AGE", ColumnType::Integer),
            ],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        }
    }

    fn db_with_people() -> Database {
        let db = Database::new("db1");
        db.create_table(people_schema()).unwrap();
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(1), SqlValue::Str("ann".into()), SqlValue::Int(30)],
        )
        .unwrap();
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(2), SqlValue::Str("bob".into()), SqlValue::Null],
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_scan_select() {
        let db = db_with_people();
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
        let rows = db
            .select("PEOPLE", &vec![("NAME".into(), SqlValue::Str("ann".into()))])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], SqlValue::Int(1));
    }

    #[test]
    fn pk_violation_rejected() {
        let db = db_with_people();
        let err = db
            .insert(
                "PEOPLE",
                vec![SqlValue::Int(1), SqlValue::Str("dup".into()), SqlValue::Null],
            )
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0003));
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
    }

    #[test]
    fn not_null_and_type_checks() {
        let db = db_with_people();
        assert!(db
            .insert("PEOPLE", vec![SqlValue::Int(3), SqlValue::Null, SqlValue::Null])
            .is_err());
        assert!(db
            .insert(
                "PEOPLE",
                vec![SqlValue::Str("x".into()), SqlValue::Str("n".into()), SqlValue::Null]
            )
            .is_err());
        assert!(db
            .insert("PEOPLE", vec![SqlValue::Int(3), SqlValue::Str("n".into())])
            .is_err()); // arity
    }

    #[test]
    fn conditioned_update_and_expected_rows() {
        let db = db_with_people();
        // The OCC-style conditioned update: matches → applies.
        db.execute(vec![WriteOp::Update {
            table: "PEOPLE".into(),
            set: vec![("NAME".into(), SqlValue::Str("ANN".into()))],
            cond: vec![
                ("ID".into(), SqlValue::Int(1)),
                ("NAME".into(), SqlValue::Str("ann".into())),
            ],
            expect_rows: 1,
        }])
        .unwrap();
        let rows = db
            .select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))])
            .unwrap();
        assert_eq!(rows[0][1], SqlValue::Str("ANN".into()));
        // Stale condition → DSP0001 conflict, nothing applied.
        let err = db
            .execute(vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("NAME".into(), SqlValue::Str("X".into()))],
                cond: vec![
                    ("ID".into(), SqlValue::Int(1)),
                    ("NAME".into(), SqlValue::Str("ann".into())), // stale
                ],
                expect_rows: 1,
            }])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0001));
    }

    #[test]
    fn delete_with_condition() {
        let db = db_with_people();
        db.execute(vec![WriteOp::Delete {
            table: "PEOPLE".into(),
            cond: vec![("ID".into(), SqlValue::Int(2))],
            expect_rows: 1,
        }])
        .unwrap();
        assert_eq!(db.row_count("PEOPLE").unwrap(), 1);
    }

    #[test]
    fn transaction_atomicity_on_failure() {
        let db = db_with_people();
        // Second op fails at prepare → first op must not apply.
        let err = db
            .execute(vec![
                WriteOp::Insert {
                    table: "PEOPLE".into(),
                    row: vec![SqlValue::Int(9), SqlValue::Str("new".into()), SqlValue::Null],
                },
                WriteOp::Update {
                    table: "PEOPLE".into(),
                    set: vec![("NAME".into(), SqlValue::Str("X".into()))],
                    cond: vec![("ID".into(), SqlValue::Int(404))],
                    expect_rows: 1,
                },
            ])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0001));
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
    }

    #[test]
    fn prepared_rows_are_locked() {
        let db = db_with_people();
        let t1 = fresh_tx();
        db.prepare(
            t1,
            vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("AGE".into(), SqlValue::Int(31))],
                cond: vec![("ID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }],
        )
        .unwrap();
        // A second transaction touching the same row is refused.
        let t2 = fresh_tx();
        let err = db
            .prepare(
                t2,
                vec![WriteOp::Update {
                    table: "PEOPLE".into(),
                    set: vec![("AGE".into(), SqlValue::Int(99))],
                    cond: vec![("ID".into(), SqlValue::Int(1))],
                    expect_rows: 1,
                }],
            )
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0004));
        // After commit, t2 can retry (but the OCC cond may now differ).
        db.commit(t1);
        assert!(!db.is_prepared(t1));
        db.prepare(
            t2,
            vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("AGE".into(), SqlValue::Int(99))],
                cond: vec![("ID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }],
        )
        .unwrap();
        db.rollback(t2);
        let rows = db.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(31));
    }

    #[test]
    fn concurrent_inserts_same_pk_conflict_at_prepare() {
        let db = db_with_people();
        let t1 = fresh_tx();
        let t2 = fresh_tx();
        let row = |n: &str| {
            vec![SqlValue::Int(7), SqlValue::Str(n.into()), SqlValue::Null]
        };
        db.prepare(t1, vec![WriteOp::Insert { table: "PEOPLE".into(), row: row("a") }])
            .unwrap();
        let err = db
            .prepare(t2, vec![WriteOp::Insert { table: "PEOPLE".into(), row: row("b") }])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0003));
        db.rollback(t1);
    }

    fn two_dbs() -> (Database, Database) {
        let db1 = db_with_people();
        let db2 = Database::new("db2");
        db2.create_table(TableSchema {
            name: "AUDIT".into(),
            columns: vec![
                Column::required("ID", ColumnType::Integer),
                Column::required("WHAT", ColumnType::Varchar),
            ],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        })
        .unwrap();
        (db1, db2)
    }

    fn audit_insert(id: i64) -> WriteOp {
        WriteOp::Insert {
            table: "AUDIT".into(),
            row: vec![SqlValue::Int(id), SqlValue::Str("update".into())],
        }
    }

    fn people_update() -> WriteOp {
        WriteOp::Update {
            table: "PEOPLE".into(),
            set: vec![("AGE".into(), SqlValue::Int(31))],
            cond: vec![("ID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let (db1, db2) = two_dbs();
        let outcome = TwoPhaseCoordinator::new(vec![
            (db1.clone(), vec![people_update()]),
            (db2.clone(), vec![audit_insert(1)]),
        ])
        .run();
        assert_eq!(outcome, TxOutcome::Committed);
        assert_eq!(db2.row_count("AUDIT").unwrap(), 1);
        let rows = db1.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(31));
    }

    #[test]
    fn two_phase_commit_aborts_all_on_one_failure() {
        let (db1, db2) = two_dbs();
        // db2 op fails (duplicate PK after a first insert).
        db2.insert("AUDIT", vec![SqlValue::Int(1), SqlValue::Str("x".into())]).unwrap();
        let outcome = TwoPhaseCoordinator::new(vec![
            (db1.clone(), vec![people_update()]),
            (db2.clone(), vec![audit_insert(1)]),
        ])
        .run();
        assert!(matches!(outcome, TxOutcome::Aborted(_)));
        // db1's branch rolled back: age unchanged.
        let rows = db1.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(30));
        // And no lingering prepared state.
        let t = fresh_tx();
        db1.prepare(t, vec![people_update()]).unwrap();
        db1.rollback(t);
    }

    #[test]
    fn crash_injection_preserves_atomicity() {
        for crash in [
            CrashPoint::AfterFirstPrepare,
            CrashPoint::AfterAllPrepares,
            CrashPoint::AfterFirstCommit,
        ] {
            let (db1, db2) = two_dbs();
            let (outcome, crashed) = TwoPhaseCoordinator::new(vec![
                (db1.clone(), vec![people_update()]),
                (db2.clone(), vec![audit_insert(1)]),
            ])
            .run_with_crash(Some(crash));
            assert!(crashed);
            // Atomicity: both applied or neither.
            let age = db1
                .select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))])
                .unwrap()[0][2]
                .clone();
            let audits = db2.row_count("AUDIT").unwrap();
            match outcome {
                TxOutcome::Committed => {
                    assert_eq!(age, SqlValue::Int(31), "{crash:?}");
                    assert_eq!(audits, 1, "{crash:?}");
                }
                TxOutcome::Aborted(_) => {
                    assert_eq!(age, SqlValue::Int(30), "{crash:?}");
                    assert_eq!(audits, 0, "{crash:?}");
                }
            }
            // No prepared garbage survives recovery.
            assert!(!db1.is_prepared(TxId(0)));
        }
    }

    #[test]
    fn table_version_bumps_on_commit_only() {
        let db = db_with_people();
        let v0 = db.table_version("PEOPLE").unwrap();
        // Reads don't bump.
        db.scan("PEOPLE").unwrap();
        db.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(db.table_version("PEOPLE").unwrap(), v0);
        // A committed write bumps exactly once per transaction.
        db.execute(vec![
            WriteOp::Insert {
                table: "PEOPLE".into(),
                row: vec![SqlValue::Int(3), SqlValue::Str("cat".into()), SqlValue::Null],
            },
            WriteOp::Delete {
                table: "PEOPLE".into(),
                cond: vec![("ID".into(), SqlValue::Int(3))],
                expect_rows: 0,
            },
        ])
        .unwrap();
        assert_eq!(db.table_version("PEOPLE").unwrap(), v0 + 1);
        // A rollback does not bump.
        let t = fresh_tx();
        db.prepare(t, vec![people_update()]).unwrap();
        db.rollback(t);
        assert_eq!(db.table_version("PEOPLE").unwrap(), v0 + 1);
    }

    #[test]
    fn scan_if_changed_skips_unchanged_tables() {
        let db = db_with_people();
        let (v1, rows) = db.scan_if_changed("PEOPLE", None).unwrap();
        assert_eq!(rows.as_ref().map(Vec::len), Some(2));
        // Same version known → no rows shipped.
        let (v2, rows) = db.scan_if_changed("PEOPLE", Some(v1)).unwrap();
        assert_eq!(v2, v1);
        assert!(rows.is_none());
        // After a write the version moves and rows come back.
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(5), SqlValue::Str("eve".into()), SqlValue::Null],
        )
        .unwrap();
        let (v3, rows) = db.scan_if_changed("PEOPLE", Some(v1)).unwrap();
        assert!(v3 > v1);
        assert_eq!(rows.map(|r| r.len()), Some(3));
    }

    #[test]
    fn select_indexed_agrees_with_select_across_mutations() {
        let db = db_with_people();
        let cond_name: Condition = vec![("NAME".into(), SqlValue::Str("ann".into()))];
        // First indexed select builds the index.
        assert_eq!(
            db.select_indexed("PEOPLE", &cond_name).unwrap(),
            db.select("PEOPLE", &cond_name).unwrap()
        );
        assert_eq!(db.indexed_columns("PEOPLE"), vec!["NAME".to_string()]);
        // Insert, update, delete — the index is maintained, results agree.
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(3), SqlValue::Str("ann".into()), SqlValue::Int(9)],
        )
        .unwrap();
        assert_eq!(db.select_indexed("PEOPLE", &cond_name).unwrap().len(), 2);
        db.execute(vec![WriteOp::Update {
            table: "PEOPLE".into(),
            set: vec![("NAME".into(), SqlValue::Str("ann".into()))],
            cond: vec![("ID".into(), SqlValue::Int(2))],
            expect_rows: 1,
        }])
        .unwrap();
        assert_eq!(
            db.select_indexed("PEOPLE", &cond_name).unwrap(),
            db.select("PEOPLE", &cond_name).unwrap()
        );
        assert_eq!(db.select_indexed("PEOPLE", &cond_name).unwrap().len(), 3);
        db.execute(vec![WriteOp::Delete {
            table: "PEOPLE".into(),
            cond: vec![("ID".into(), SqlValue::Int(3))],
            expect_rows: 1,
        }])
        .unwrap();
        assert_eq!(
            db.select_indexed("PEOPLE", &cond_name).unwrap(),
            db.select("PEOPLE", &cond_name).unwrap()
        );
        // Multi-column condition: index probes one column, the full
        // condition re-verifies.
        let multi = vec![
            ("NAME".into(), SqlValue::Str("ann".into())),
            ("ID".into(), SqlValue::Int(1)),
        ];
        assert_eq!(
            db.select_indexed("PEOPLE", &multi).unwrap(),
            db.select("PEOPLE", &multi).unwrap()
        );
        // NULL conditions fall back to the scan path and agree too.
        let null_cond = vec![("AGE".into(), SqlValue::Null)];
        assert_eq!(
            db.select_indexed("PEOPLE", &null_cond).unwrap(),
            db.select("PEOPLE", &null_cond).unwrap()
        );
    }

    #[test]
    fn rollback_drops_indexes_but_results_stay_correct() {
        let db = db_with_people();
        let cond = vec![("NAME".into(), SqlValue::Str("bob".into()))];
        assert_eq!(db.select_indexed("PEOPLE", &cond).unwrap().len(), 1);
        assert!(!db.indexed_columns("PEOPLE").is_empty());
        let t = fresh_tx();
        db.prepare(t, vec![people_update()]).unwrap();
        db.rollback(t);
        // Indexes dropped…
        assert!(db.indexed_columns("PEOPLE").is_empty());
        // …and lazily rebuilt with identical results.
        assert_eq!(
            db.select_indexed("PEOPLE", &cond).unwrap(),
            db.select("PEOPLE", &cond).unwrap()
        );
    }

    #[test]
    fn sql_rendering() {
        let op = WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str("Carey".into()))],
            cond: vec![
                ("CID".into(), SqlValue::Int(7)),
                ("LAST_NAME".into(), SqlValue::Str("Carrey".into())),
            ],
            expect_rows: 1,
        };
        assert_eq!(
            op.to_sql(),
            "UPDATE CUSTOMER SET LAST_NAME = 'Carey' \
             WHERE CID = 7 AND LAST_NAME = 'Carrey'"
        );
    }

    #[test]
    fn sql_value_parse_round_trip() {
        let v = SqlValue::parse(ColumnType::Integer, "42").unwrap();
        assert_eq!(v, SqlValue::Int(42));
        let v = SqlValue::parse(ColumnType::Date, "2007-12-07").unwrap();
        assert_eq!(v.lexical(), "2007-12-07");
        let v = SqlValue::parse(ColumnType::Integer, "").unwrap();
        assert!(v.is_null());
        assert!(SqlValue::parse(ColumnType::Integer, "abc").is_err());
        let v = SqlValue::parse(ColumnType::Boolean, "true").unwrap();
        assert_eq!(v, SqlValue::Bool(true));
    }

    #[test]
    fn concurrent_prepare_from_threads() {
        use std::thread;
        let db = db_with_people();
        let mut handles = Vec::new();
        for i in 0..8 {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                db.execute(vec![WriteOp::Insert {
                    table: "PEOPLE".into(),
                    row: vec![
                        SqlValue::Int(100 + i),
                        SqlValue::Str(format!("t{i}")),
                        SqlValue::Null,
                    ],
                }])
            }));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(db.row_count("PEOPLE").unwrap(), 10);
    }
}
