//! The relational source simulator.
//!
//! ALDSP's physical layer speaks to JDBC databases; this module is the
//! closest in-process equivalent that exercises the same code paths:
//! schema metadata (columns, primary keys, foreign keys) driving
//! introspection, conditioned `UPDATE … WHERE` statements carrying the
//! optimistic-concurrency "sameness" predicates, constraint
//! enforcement, and **XA two-phase commit**.
//!
//! Concurrency model: one global lock per database around each call
//! (calls are short), plus a *prepared-lock table* that pins the rows
//! touched by a prepared-but-undecided transaction so a concurrent
//! transaction cannot slip between `prepare` and `commit` — the
//! standard presumed-abort XA discipline.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use xdm::datetime::{Date, DateTime};
use xdm::decimal::Decimal;
use xdm::error::{ErrorCode, XdmError, XdmResult};

use crate::fault::Op;
use crate::resilience::Access;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Integer,
    /// Exact decimal.
    Decimal,
    /// Variable-length string.
    Varchar,
    /// Boolean.
    Boolean,
    /// Calendar date.
    Date,
    /// Timestamp (second precision).
    Timestamp,
}

/// A typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Decimal.
    Dec(Decimal),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Date.
    Date(Date),
    /// Timestamp.
    Ts(DateTime),
}

impl SqlValue {
    /// The lexical form used by the XML row view.
    pub fn lexical(&self) -> String {
        match self {
            SqlValue::Null => String::new(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Dec(d) => d.to_string(),
            SqlValue::Str(s) => s.clone(),
            SqlValue::Bool(b) => b.to_string(),
            SqlValue::Date(d) => d.to_string(),
            SqlValue::Ts(t) => t.to_string(),
        }
    }

    /// Parse a lexical form into a typed value (NULL for empty
    /// strings on non-varchar columns).
    pub fn parse(ty: ColumnType, s: &str) -> XdmResult<SqlValue> {
        if s.is_empty() && ty != ColumnType::Varchar {
            return Ok(SqlValue::Null);
        }
        Ok(match ty {
            ColumnType::Integer => SqlValue::Int(s.trim().parse().map_err(|_| {
                XdmError::new(ErrorCode::DSP0003, format!("bad INTEGER literal {s:?}"))
            })?),
            ColumnType::Decimal => SqlValue::Dec(Decimal::parse(s)?),
            ColumnType::Varchar => SqlValue::Str(s.to_string()),
            ColumnType::Boolean => match s.trim() {
                "true" | "1" => SqlValue::Bool(true),
                "false" | "0" => SqlValue::Bool(false),
                _ => {
                    return Err(XdmError::new(
                        ErrorCode::DSP0003,
                        format!("bad BOOLEAN literal {s:?}"),
                    ))
                }
            },
            ColumnType::Date => SqlValue::Date(Date::parse(s)?),
            ColumnType::Timestamp => SqlValue::Ts(DateTime::parse(s)?),
        })
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Str(s) => write!(f, "'{s}'"),
            other => write!(f, "{}", other.lexical()),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// NOT NULL when false.
    pub nullable: bool,
}

impl Column {
    /// A NOT NULL column.
    pub fn required(name: &str, ty: ColumnType) -> Column {
        Column { name: name.to_string(), ty, nullable: false }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: ColumnType) -> Column {
        Column { name: name.to_string(), ty, nullable: true }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table`.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Constraint name (drives navigation-function naming).
    pub name: String,
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced (key) columns.
    pub ref_columns: Vec<String>,
}

/// A table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A row: values in schema column order.
pub type Row = Vec<SqlValue>;

/// An equality condition: conjunction of `col = value` (this is all
/// the decomposer ever generates — PK identification plus OCC
/// "sameness" predicates).
pub type Condition = Vec<(String, SqlValue)>;

/// One buffered write operation of a transaction.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// INSERT INTO table VALUES (row).
    Insert {
        /// Target table.
        table: String,
        /// The new row in column order.
        row: Row,
    },
    /// UPDATE table SET set WHERE cond; must affect exactly
    /// `expect_rows` rows or the transaction aborts (the OCC check).
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        set: Condition,
        /// WHERE conjunction.
        cond: Condition,
        /// Expected match count (1 for keyed updates).
        expect_rows: usize,
    },
    /// DELETE FROM table WHERE cond.
    Delete {
        /// Target table.
        table: String,
        /// WHERE conjunction.
        cond: Condition,
        /// Expected match count.
        expect_rows: usize,
    },
}

impl WriteOp {
    fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Update { table, .. }
            | WriteOp::Delete { table, .. } => table,
        }
    }

    /// Render as a SQL-ish string (diagnostics, EXPERIMENTS.md).
    pub fn to_sql(&self) -> String {
        let render_cond = |cond: &Condition| {
            cond.iter()
                .map(|(c, v)| format!("{c} = {v}"))
                .collect::<Vec<_>>()
                .join(" AND ")
        };
        match self {
            WriteOp::Insert { table, row } => format!(
                "INSERT INTO {table} VALUES ({})",
                row.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            WriteOp::Update { table, set, cond, .. } => format!(
                "UPDATE {table} SET {} WHERE {}",
                set.iter()
                    .map(|(c, v)| format!("{c} = {v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                render_cond(cond)
            ),
            WriteOp::Delete { table, cond, .. } => {
                format!("DELETE FROM {table} WHERE {}", render_cond(cond))
            }
        }
    }
}

/// Transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(pub u64);

static NEXT_TX: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh transaction id.
pub fn fresh_tx() -> TxId {
    TxId(NEXT_TX.fetch_add(1, Ordering::Relaxed))
}

#[derive(Debug)]
struct TableData {
    schema: TableSchema,
    rows: Vec<(u64, Row)>, // (row id, values)
    next_row_id: u64,
}

#[derive(Debug)]
struct Prepared {
    ops: Vec<WriteOp>,
    locked: HashSet<(String, u64)>,
    inserted_keys: Vec<(String, Vec<SqlValue>)>,
}

#[derive(Debug, Default)]
struct DbInner {
    tables: HashMap<String, TableData>,
    table_order: Vec<String>,
    prepared: HashMap<TxId, Prepared>,
    commits: u64,
    aborts: u64,
    /// Last successfully read snapshot per table, served as a
    /// marked-stale result when the source is unavailable and the
    /// resilience policy allows degraded reads.
    read_cache: HashMap<String, Vec<Row>>,
}

/// An in-memory relational database (one "source" in ALDSP terms).
///
/// Cloning shares the same underlying store (`Arc`).
///
/// Every externally visible operation is routed through the source's
/// [`Access`] handle (fault injection + retry/timeout/circuit
/// breaker); with no injector or policy installed the handle is a
/// pass-through. `commit`/`rollback` are deliberately *not* injectable
/// — once a branch votes yes in phase 1, phase 2 cannot fail (the XA
/// contract this simulator upholds).
#[derive(Debug, Clone)]
pub struct Database {
    /// The source name (e.g. `db1`).
    pub name: String,
    inner: Arc<Mutex<DbInner>>,
    access: Arc<Mutex<Access>>,
}

fn cerr(msg: impl Into<String>) -> XdmError {
    XdmError::new(ErrorCode::DSP0003, msg)
}

impl Database {
    /// Create an empty database.
    pub fn new(name: &str) -> Database {
        Database {
            name: name.to_string(),
            inner: Arc::new(Mutex::new(DbInner::default())),
            access: Arc::new(Mutex::new(Access::none())),
        }
    }

    /// Install (or replace) the fault-injection / resilience handle
    /// for this source. Shared across clones.
    pub fn set_access(&self, access: Access) {
        *self.access.lock() = access;
    }

    /// A snapshot of this source's access handle.
    pub fn access(&self) -> Access {
        self.access.lock().clone()
    }

    /// Create a table.
    pub fn create_table(&self, schema: TableSchema) -> XdmResult<()> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(&schema.name) {
            return Err(cerr(format!("table {} already exists", schema.name)));
        }
        for pk in &schema.primary_key {
            if schema.col_index(pk).is_none() {
                return Err(cerr(format!("PK column {pk} not in table {}", schema.name)));
            }
        }
        inner.table_order.push(schema.name.clone());
        inner.tables.insert(
            schema.name.clone(),
            TableData { schema, rows: Vec::new(), next_row_id: 1 },
        );
        Ok(())
    }

    /// Table names in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.lock().table_order.clone()
    }

    /// A table's schema.
    pub fn schema(&self, table: &str) -> XdmResult<TableSchema> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(|t| t.schema.clone())
            .ok_or_else(|| cerr(format!("no table {table} in {}", self.name)))
    }

    /// All rows of a table (committed state).
    ///
    /// Routed through the source's [`Access`] handle as a degradable
    /// read: if the source is unavailable (injected outage or open
    /// breaker) the last successfully read snapshot is served instead,
    /// counted in [`crate::ResilienceStats::stale_reads`].
    pub fn scan(&self, table: &str) -> XdmResult<Vec<Row>> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Scan,
            || self.scan_raw(table),
            || self.cached_rows(table),
        )
    }

    fn scan_raw(&self, table: &str) -> XdmResult<Vec<Row>> {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| cerr(format!("no table {table} in {}", self.name)))?;
        let rows: Vec<Row> = t.rows.iter().map(|(_, r)| r.clone()).collect();
        inner.read_cache.insert(table.to_string(), rows.clone());
        Ok(rows)
    }

    fn cached_rows(&self, table: &str) -> Option<Vec<Row>> {
        self.inner.lock().read_cache.get(table).cloned()
    }

    /// Rows matching an equality condition (degradable read, like
    /// [`Database::scan`]).
    pub fn select(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Select,
            || self.select_raw(table, cond),
            || self.cached_select(table, cond),
        )
    }

    fn select_raw(&self, table: &str, cond: &Condition) -> XdmResult<Vec<Row>> {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| cerr(format!("no table {table} in {}", self.name)))?;
        let idx = cond_indices(&t.schema, cond)?;
        let all: Vec<Row> = t.rows.iter().map(|(_, r)| r.clone()).collect();
        let hits = all.iter().filter(|r| row_matches(r, &idx)).cloned().collect();
        inner.read_cache.insert(table.to_string(), all);
        Ok(hits)
    }

    fn cached_select(&self, table: &str, cond: &Condition) -> Option<Vec<Row>> {
        let inner = self.inner.lock();
        let t = inner.tables.get(table)?;
        let idx = cond_indices(&t.schema, cond).ok()?;
        let cached = inner.read_cache.get(table)?;
        Some(cached.iter().filter(|r| row_matches(r, &idx)).cloned().collect())
    }

    /// Number of rows.
    pub fn row_count(&self, table: &str) -> XdmResult<usize> {
        let inner = self.inner.lock();
        inner
            .tables
            .get(table)
            .map(|t| t.rows.len())
            .ok_or_else(|| cerr(format!("no table {table}")))
    }

    /// Auto-commit convenience: run a batch of ops as a local
    /// transaction (prepare + commit immediately).
    ///
    /// Fault-injectable as one unit (`Op::Execute`): a retried
    /// transient fails *before* the prepare, so a retry can never
    /// double-apply the batch.
    pub fn execute(&self, ops: Vec<WriteOp>) -> XdmResult<()> {
        let access = self.access();
        access.run(&self.name, Op::Execute, || {
            let tx = fresh_tx();
            self.prepare_raw(tx, ops.clone())?;
            self.commit(tx);
            Ok(())
        })
    }

    /// Insert a single row, auto-commit.
    pub fn insert(&self, table: &str, row: Row) -> XdmResult<()> {
        self.execute(vec![WriteOp::Insert { table: table.to_string(), row }])
    }

    /// Phase one of 2PC: validate every op (constraints, expected row
    /// counts, no conflict with other prepared transactions) and pin
    /// the touched rows. On success the transaction is durable-ready;
    /// on failure nothing is changed.
    pub fn prepare(&self, tx: TxId, ops: Vec<WriteOp>) -> XdmResult<()> {
        let access = self.access();
        access.run(&self.name, Op::Prepare, || self.prepare_raw(tx, ops.clone()))
    }

    fn prepare_raw(&self, tx: TxId, ops: Vec<WriteOp>) -> XdmResult<()> {
        let mut inner = self.inner.lock();
        if inner.prepared.contains_key(&tx) {
            return Err(cerr(format!("transaction {tx:?} already prepared")));
        }
        // Collect locks already held by other prepared transactions.
        let held: HashSet<(String, u64)> = inner
            .prepared
            .values()
            .flat_map(|p| p.locked.iter().cloned())
            .collect();
        let mut locked = HashSet::new();
        let mut inserted_keys: Vec<(String, Vec<SqlValue>)> = Vec::new();
        // Pending inserts of other prepared txs also reserve PKs.
        let reserved_keys: HashSet<(String, String)> = inner
            .prepared
            .values()
            .flat_map(|p| p.inserted_keys.iter())
            .map(|(t, k)| (t.clone(), key_fingerprint(k)))
            .collect();
        for op in &ops {
            let t = inner
                .tables
                .get(op.table())
                .ok_or_else(|| cerr(format!("no table {}", op.table())))?;
            match op {
                WriteOp::Insert { table, row } => {
                    validate_insert_shape(&t.schema, row)?;
                    let key = pk_values(&t.schema, row);
                    if !key.is_empty() {
                        let fp = key_fingerprint(&key);
                        let dup_existing = t.rows.iter().any(|(_, r)| {
                            pk_values(&t.schema, r) == key
                        });
                        if dup_existing || reserved_keys.contains(&(table.clone(), fp)) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0003,
                                format!(
                                    "primary key violation on {table}: ({})",
                                    key.iter()
                                        .map(|v| v.to_string())
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            ));
                        }
                        inserted_keys.push((table.clone(), key));
                    }
                }
                WriteOp::Update { table, set, cond, expect_rows } => {
                    let idx = cond_indices(&t.schema, cond)?;
                    // Validate SET column types/nullability.
                    for (c, v) in set {
                        let col = t
                            .schema
                            .column(c)
                            .ok_or_else(|| cerr(format!("no column {c} in {table}")))?;
                        if v.is_null() && !col.nullable {
                            return Err(cerr(format!("{table}.{c} is NOT NULL")));
                        }
                    }
                    let hits: Vec<u64> = t
                        .rows
                        .iter()
                        .filter(|(_, r)| row_matches(r, &idx))
                        .map(|(id, _)| *id)
                        .collect();
                    if hits.len() != *expect_rows {
                        return Err(XdmError::new(
                            ErrorCode::DSP0001,
                            format!(
                                "optimistic concurrency conflict: {} matched {} row(s), \
                                 expected {expect_rows}",
                                op.to_sql(),
                                hits.len()
                            ),
                        ));
                    }
                    for id in hits {
                        let key = (table.clone(), id);
                        if held.contains(&key) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0004,
                                format!("row {id} of {table} locked by another transaction"),
                            ));
                        }
                        locked.insert(key);
                    }
                }
                WriteOp::Delete { table, cond, expect_rows } => {
                    let idx = cond_indices(&t.schema, cond)?;
                    let hits: Vec<u64> = t
                        .rows
                        .iter()
                        .filter(|(_, r)| row_matches(r, &idx))
                        .map(|(id, _)| *id)
                        .collect();
                    if hits.len() != *expect_rows {
                        return Err(XdmError::new(
                            ErrorCode::DSP0001,
                            format!(
                                "optimistic concurrency conflict: {} matched {} row(s), \
                                 expected {expect_rows}",
                                op.to_sql(),
                                hits.len()
                            ),
                        ));
                    }
                    for id in hits {
                        let key = (table.clone(), id);
                        if held.contains(&key) {
                            return Err(XdmError::new(
                                ErrorCode::DSP0004,
                                format!("row {id} of {table} locked by another transaction"),
                            ));
                        }
                        locked.insert(key);
                    }
                }
            }
        }
        inner.prepared.insert(tx, Prepared { ops, locked, inserted_keys });
        Ok(())
    }

    /// Phase two: apply a prepared transaction. Panics are impossible
    /// by construction (everything validated at prepare), so commit
    /// cannot fail — the XA contract.
    pub fn commit(&self, tx: TxId) {
        let mut inner = self.inner.lock();
        let Some(p) = inner.prepared.remove(&tx) else { return };
        for op in p.ops {
            match op {
                WriteOp::Insert { table, row } => {
                    let t = inner.tables.get_mut(&table).expect("validated");
                    let id = t.next_row_id;
                    t.next_row_id += 1;
                    t.rows.push((id, row));
                }
                WriteOp::Update { table, set, cond, .. } => {
                    let t = inner.tables.get_mut(&table).expect("validated");
                    let idx = cond_indices(&t.schema, &cond).expect("validated");
                    let sets: Vec<(usize, SqlValue)> = set
                        .iter()
                        .map(|(c, v)| (t.schema.col_index(c).expect("validated"), v.clone()))
                        .collect();
                    for (_, r) in t.rows.iter_mut() {
                        if row_matches(r, &idx) {
                            for (i, v) in &sets {
                                r[*i] = v.clone();
                            }
                        }
                    }
                }
                WriteOp::Delete { table, cond, .. } => {
                    let t = inner.tables.get_mut(&table).expect("validated");
                    let idx = cond_indices(&t.schema, &cond).expect("validated");
                    t.rows.retain(|(_, r)| !row_matches(r, &idx));
                }
            }
        }
        inner.commits += 1;
    }

    /// Abort a prepared (or never-prepared) transaction; releases
    /// locks, changes nothing.
    pub fn rollback(&self, tx: TxId) {
        let mut inner = self.inner.lock();
        if inner.prepared.remove(&tx).is_some() {
            inner.aborts += 1;
        }
    }

    /// Is the transaction currently in prepared state?
    pub fn is_prepared(&self, tx: TxId) -> bool {
        self.inner.lock().prepared.contains_key(&tx)
    }

    /// (commits, aborts) counters — used by the XA experiments.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.commits, inner.aborts)
    }
}

fn validate_insert_shape(schema: &TableSchema, row: &Row) -> XdmResult<()> {
    if row.len() != schema.columns.len() {
        return Err(cerr(format!(
            "row arity {} does not match table {} ({} columns)",
            row.len(),
            schema.name,
            schema.columns.len()
        )));
    }
    for (col, val) in schema.columns.iter().zip(row) {
        if val.is_null() {
            if !col.nullable {
                return Err(cerr(format!("{}.{} is NOT NULL", schema.name, col.name)));
            }
            continue;
        }
        let ok = matches!(
            (col.ty, val),
            (ColumnType::Integer, SqlValue::Int(_))
                | (ColumnType::Decimal, SqlValue::Dec(_))
                | (ColumnType::Decimal, SqlValue::Int(_))
                | (ColumnType::Varchar, SqlValue::Str(_))
                | (ColumnType::Boolean, SqlValue::Bool(_))
                | (ColumnType::Date, SqlValue::Date(_))
                | (ColumnType::Timestamp, SqlValue::Ts(_))
        );
        if !ok {
            return Err(cerr(format!(
                "type mismatch for {}.{}: {:?}",
                schema.name, col.name, val
            )));
        }
    }
    Ok(())
}

fn pk_values(schema: &TableSchema, row: &Row) -> Vec<SqlValue> {
    schema
        .primary_key
        .iter()
        .filter_map(|c| schema.col_index(c).map(|i| row[i].clone()))
        .collect()
}

fn key_fingerprint(key: &[SqlValue]) -> String {
    key.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\u{1}")
}

fn cond_indices(
    schema: &TableSchema,
    cond: &Condition,
) -> XdmResult<Vec<(usize, SqlValue)>> {
    cond.iter()
        .map(|(c, v)| {
            schema
                .col_index(c)
                .map(|i| (i, v.clone()))
                .ok_or_else(|| cerr(format!("no column {c} in {}", schema.name)))
        })
        .collect()
}

fn row_matches(row: &Row, idx: &[(usize, SqlValue)]) -> bool {
    idx.iter().all(|(i, v)| &row[*i] == v)
}

// ---------------------------------------------------------------- 2PC

/// Where to inject a coordinator crash in the XA experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after preparing the first participant only.
    AfterFirstPrepare,
    /// Crash after all prepares, before any commit (decision not yet
    /// logged → presumed abort).
    AfterAllPrepares,
    /// Crash after the decision is logged and the first commit is
    /// delivered (recovery must push the rest).
    AfterFirstCommit,
}

/// Outcome of a coordinated transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOutcome {
    /// All participants committed.
    Committed,
    /// All participants rolled back. Carries the typed error that
    /// caused the abort so callers (and ultimately XQSE `catch`
    /// clauses) can discriminate an infrastructure outage from an OCC
    /// conflict from a constraint violation.
    Aborted(XdmError),
}

/// A two-phase-commit coordinator over multiple [`Database`]
/// participants (§II.C: XA across the affected sources).
pub struct TwoPhaseCoordinator {
    participants: Vec<(Database, Vec<WriteOp>)>,
}

impl TwoPhaseCoordinator {
    /// Build a coordinator over per-source op batches.
    pub fn new(participants: Vec<(Database, Vec<WriteOp>)>) -> TwoPhaseCoordinator {
        TwoPhaseCoordinator { participants }
    }

    /// Run the protocol to completion.
    pub fn run(self) -> TxOutcome {
        self.run_with_crash(None).0
    }

    /// Run with an optional injected coordinator crash; returns the
    /// outcome *after recovery* plus whether a crash was simulated.
    /// Recovery semantics: no decision logged → presumed abort; commit
    /// decision logged → commit is pushed to every participant.
    pub fn run_with_crash(self, crash: Option<CrashPoint>) -> (TxOutcome, bool) {
        let tx = fresh_tx();
        let mut prepared: Vec<&Database> = Vec::new();
        let mut crashed = false;
        // Phase 1.
        for (i, (db, ops)) in self.participants.iter().enumerate() {
            match db.prepare(tx, ops.clone()) {
                Ok(()) => prepared.push(db),
                Err(e) => {
                    for p in &prepared {
                        p.rollback(tx);
                    }
                    return (TxOutcome::Aborted(e), crashed);
                }
            }
            if crash == Some(CrashPoint::AfterFirstPrepare) && i == 0 {
                crashed = true;
                // Recovery: no commit decision was logged → abort all
                // prepared branches (presumed abort).
                for p in &prepared {
                    p.rollback(tx);
                }
                // The remaining participants never prepared; nothing
                // to do for them.
                return (
                    TxOutcome::Aborted(
                        crate::errors::AldspCode::TxAborted
                            .error("coordinator crash before decision"),
                    ),
                    crashed,
                );
            }
        }
        if crash == Some(CrashPoint::AfterAllPrepares) {
            crashed = true;
            // Still no decision logged → presumed abort on recovery.
            for p in &prepared {
                p.rollback(tx);
            }
            return (
                TxOutcome::Aborted(
                    crate::errors::AldspCode::TxAborted
                        .error("coordinator crash before decision"),
                ),
                crashed,
            );
        }
        // Decision: COMMIT (logged here — conceptually the force-write
        // of the commit record).
        for (i, (db, _)) in self.participants.iter().enumerate() {
            db.commit(tx);
            if crash == Some(CrashPoint::AfterFirstCommit) && i == 0 {
                crashed = true;
                // Recovery replays the logged COMMIT decision to the
                // remaining participants.
                for (db2, _) in self.participants.iter().skip(1) {
                    db2.commit(tx);
                }
                return (TxOutcome::Committed, crashed);
            }
        }
        (TxOutcome::Committed, crashed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_schema() -> TableSchema {
        TableSchema {
            name: "PEOPLE".into(),
            columns: vec![
                Column::required("ID", ColumnType::Integer),
                Column::required("NAME", ColumnType::Varchar),
                Column::nullable("AGE", ColumnType::Integer),
            ],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        }
    }

    fn db_with_people() -> Database {
        let db = Database::new("db1");
        db.create_table(people_schema()).unwrap();
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(1), SqlValue::Str("ann".into()), SqlValue::Int(30)],
        )
        .unwrap();
        db.insert(
            "PEOPLE",
            vec![SqlValue::Int(2), SqlValue::Str("bob".into()), SqlValue::Null],
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_scan_select() {
        let db = db_with_people();
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
        let rows = db
            .select("PEOPLE", &vec![("NAME".into(), SqlValue::Str("ann".into()))])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], SqlValue::Int(1));
    }

    #[test]
    fn pk_violation_rejected() {
        let db = db_with_people();
        let err = db
            .insert(
                "PEOPLE",
                vec![SqlValue::Int(1), SqlValue::Str("dup".into()), SqlValue::Null],
            )
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0003));
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
    }

    #[test]
    fn not_null_and_type_checks() {
        let db = db_with_people();
        assert!(db
            .insert("PEOPLE", vec![SqlValue::Int(3), SqlValue::Null, SqlValue::Null])
            .is_err());
        assert!(db
            .insert(
                "PEOPLE",
                vec![SqlValue::Str("x".into()), SqlValue::Str("n".into()), SqlValue::Null]
            )
            .is_err());
        assert!(db
            .insert("PEOPLE", vec![SqlValue::Int(3), SqlValue::Str("n".into())])
            .is_err()); // arity
    }

    #[test]
    fn conditioned_update_and_expected_rows() {
        let db = db_with_people();
        // The OCC-style conditioned update: matches → applies.
        db.execute(vec![WriteOp::Update {
            table: "PEOPLE".into(),
            set: vec![("NAME".into(), SqlValue::Str("ANN".into()))],
            cond: vec![
                ("ID".into(), SqlValue::Int(1)),
                ("NAME".into(), SqlValue::Str("ann".into())),
            ],
            expect_rows: 1,
        }])
        .unwrap();
        let rows = db
            .select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))])
            .unwrap();
        assert_eq!(rows[0][1], SqlValue::Str("ANN".into()));
        // Stale condition → DSP0001 conflict, nothing applied.
        let err = db
            .execute(vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("NAME".into(), SqlValue::Str("X".into()))],
                cond: vec![
                    ("ID".into(), SqlValue::Int(1)),
                    ("NAME".into(), SqlValue::Str("ann".into())), // stale
                ],
                expect_rows: 1,
            }])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0001));
    }

    #[test]
    fn delete_with_condition() {
        let db = db_with_people();
        db.execute(vec![WriteOp::Delete {
            table: "PEOPLE".into(),
            cond: vec![("ID".into(), SqlValue::Int(2))],
            expect_rows: 1,
        }])
        .unwrap();
        assert_eq!(db.row_count("PEOPLE").unwrap(), 1);
    }

    #[test]
    fn transaction_atomicity_on_failure() {
        let db = db_with_people();
        // Second op fails at prepare → first op must not apply.
        let err = db
            .execute(vec![
                WriteOp::Insert {
                    table: "PEOPLE".into(),
                    row: vec![SqlValue::Int(9), SqlValue::Str("new".into()), SqlValue::Null],
                },
                WriteOp::Update {
                    table: "PEOPLE".into(),
                    set: vec![("NAME".into(), SqlValue::Str("X".into()))],
                    cond: vec![("ID".into(), SqlValue::Int(404))],
                    expect_rows: 1,
                },
            ])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0001));
        assert_eq!(db.row_count("PEOPLE").unwrap(), 2);
    }

    #[test]
    fn prepared_rows_are_locked() {
        let db = db_with_people();
        let t1 = fresh_tx();
        db.prepare(
            t1,
            vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("AGE".into(), SqlValue::Int(31))],
                cond: vec![("ID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }],
        )
        .unwrap();
        // A second transaction touching the same row is refused.
        let t2 = fresh_tx();
        let err = db
            .prepare(
                t2,
                vec![WriteOp::Update {
                    table: "PEOPLE".into(),
                    set: vec![("AGE".into(), SqlValue::Int(99))],
                    cond: vec![("ID".into(), SqlValue::Int(1))],
                    expect_rows: 1,
                }],
            )
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0004));
        // After commit, t2 can retry (but the OCC cond may now differ).
        db.commit(t1);
        assert!(!db.is_prepared(t1));
        db.prepare(
            t2,
            vec![WriteOp::Update {
                table: "PEOPLE".into(),
                set: vec![("AGE".into(), SqlValue::Int(99))],
                cond: vec![("ID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }],
        )
        .unwrap();
        db.rollback(t2);
        let rows = db.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(31));
    }

    #[test]
    fn concurrent_inserts_same_pk_conflict_at_prepare() {
        let db = db_with_people();
        let t1 = fresh_tx();
        let t2 = fresh_tx();
        let row = |n: &str| {
            vec![SqlValue::Int(7), SqlValue::Str(n.into()), SqlValue::Null]
        };
        db.prepare(t1, vec![WriteOp::Insert { table: "PEOPLE".into(), row: row("a") }])
            .unwrap();
        let err = db
            .prepare(t2, vec![WriteOp::Insert { table: "PEOPLE".into(), row: row("b") }])
            .unwrap_err();
        assert!(err.is(ErrorCode::DSP0003));
        db.rollback(t1);
    }

    fn two_dbs() -> (Database, Database) {
        let db1 = db_with_people();
        let db2 = Database::new("db2");
        db2.create_table(TableSchema {
            name: "AUDIT".into(),
            columns: vec![
                Column::required("ID", ColumnType::Integer),
                Column::required("WHAT", ColumnType::Varchar),
            ],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        })
        .unwrap();
        (db1, db2)
    }

    fn audit_insert(id: i64) -> WriteOp {
        WriteOp::Insert {
            table: "AUDIT".into(),
            row: vec![SqlValue::Int(id), SqlValue::Str("update".into())],
        }
    }

    fn people_update() -> WriteOp {
        WriteOp::Update {
            table: "PEOPLE".into(),
            set: vec![("AGE".into(), SqlValue::Int(31))],
            cond: vec![("ID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let (db1, db2) = two_dbs();
        let outcome = TwoPhaseCoordinator::new(vec![
            (db1.clone(), vec![people_update()]),
            (db2.clone(), vec![audit_insert(1)]),
        ])
        .run();
        assert_eq!(outcome, TxOutcome::Committed);
        assert_eq!(db2.row_count("AUDIT").unwrap(), 1);
        let rows = db1.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(31));
    }

    #[test]
    fn two_phase_commit_aborts_all_on_one_failure() {
        let (db1, db2) = two_dbs();
        // db2 op fails (duplicate PK after a first insert).
        db2.insert("AUDIT", vec![SqlValue::Int(1), SqlValue::Str("x".into())]).unwrap();
        let outcome = TwoPhaseCoordinator::new(vec![
            (db1.clone(), vec![people_update()]),
            (db2.clone(), vec![audit_insert(1)]),
        ])
        .run();
        assert!(matches!(outcome, TxOutcome::Aborted(_)));
        // db1's branch rolled back: age unchanged.
        let rows = db1.select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))]).unwrap();
        assert_eq!(rows[0][2], SqlValue::Int(30));
        // And no lingering prepared state.
        let t = fresh_tx();
        db1.prepare(t, vec![people_update()]).unwrap();
        db1.rollback(t);
    }

    #[test]
    fn crash_injection_preserves_atomicity() {
        for crash in [
            CrashPoint::AfterFirstPrepare,
            CrashPoint::AfterAllPrepares,
            CrashPoint::AfterFirstCommit,
        ] {
            let (db1, db2) = two_dbs();
            let (outcome, crashed) = TwoPhaseCoordinator::new(vec![
                (db1.clone(), vec![people_update()]),
                (db2.clone(), vec![audit_insert(1)]),
            ])
            .run_with_crash(Some(crash));
            assert!(crashed);
            // Atomicity: both applied or neither.
            let age = db1
                .select("PEOPLE", &vec![("ID".into(), SqlValue::Int(1))])
                .unwrap()[0][2]
                .clone();
            let audits = db2.row_count("AUDIT").unwrap();
            match outcome {
                TxOutcome::Committed => {
                    assert_eq!(age, SqlValue::Int(31), "{crash:?}");
                    assert_eq!(audits, 1, "{crash:?}");
                }
                TxOutcome::Aborted(_) => {
                    assert_eq!(age, SqlValue::Int(30), "{crash:?}");
                    assert_eq!(audits, 0, "{crash:?}");
                }
            }
            // No prepared garbage survives recovery.
            assert!(!db1.is_prepared(TxId(0)));
        }
    }

    #[test]
    fn sql_rendering() {
        let op = WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str("Carey".into()))],
            cond: vec![
                ("CID".into(), SqlValue::Int(7)),
                ("LAST_NAME".into(), SqlValue::Str("Carrey".into())),
            ],
            expect_rows: 1,
        };
        assert_eq!(
            op.to_sql(),
            "UPDATE CUSTOMER SET LAST_NAME = 'Carey' \
             WHERE CID = 7 AND LAST_NAME = 'Carrey'"
        );
    }

    #[test]
    fn sql_value_parse_round_trip() {
        let v = SqlValue::parse(ColumnType::Integer, "42").unwrap();
        assert_eq!(v, SqlValue::Int(42));
        let v = SqlValue::parse(ColumnType::Date, "2007-12-07").unwrap();
        assert_eq!(v.lexical(), "2007-12-07");
        let v = SqlValue::parse(ColumnType::Integer, "").unwrap();
        assert!(v.is_null());
        assert!(SqlValue::parse(ColumnType::Integer, "abc").is_err());
        let v = SqlValue::parse(ColumnType::Boolean, "true").unwrap();
        assert_eq!(v, SqlValue::Bool(true));
    }

    #[test]
    fn concurrent_prepare_from_threads() {
        use std::thread;
        let db = db_with_people();
        let mut handles = Vec::new();
        for i in 0..8 {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                db.execute(vec![WriteOp::Insert {
                    table: "PEOPLE".into(),
                    row: vec![
                        SqlValue::Int(100 + i),
                        SqlValue::Str(format!("t{i}")),
                        SqlValue::Null,
                    ],
                }])
            }));
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(db.row_count("PEOPLE").unwrap(), 10);
    }
}
