//! Deterministic fault injection for ALDSP sources.
//!
//! Real ALDSP deployments sit in front of flaky infrastructure:
//! relational sources drop connections, web services time out, and
//! distributed transactions abort mid-flight.  The paper's motivation
//! for XQSE's `try`/`catch` (§III.D) and compensation patterns (Use
//! Case 4's replicating create) is exactly these failures — but the
//! seed substrate could only ever succeed, so none of those paths were
//! exercisable.
//!
//! This module adds a **seedable, deterministic** [`FaultInjector`]
//! that sources consult before touching their backing state.  A
//! [`FaultPlan`] is an ordered list of [`FaultRule`]s keyed by source
//! name and operation; the first matching rule with remaining budget
//! fires.  Determinism is the point: a chaos test writes a plan,
//! replays it, and asserts *exact* outcomes — no real sleeps, no wall
//! clocks, no flaky tests.  Simulated latency is expressed through the
//! virtual clock in [`crate::resilience`].
//!
//! Probabilistic rules are supported for soak-style tests via a
//! seeded splitmix64 RNG: the same seed always yields the same fault
//! sequence.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fmt;

use xdm::error::XdmError;

use crate::errors::AldspCode;

/// The operations a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Full-table scan on a relational source.
    Scan,
    /// Keyed select on a relational source.
    Select,
    /// Auto-commit write batch on a relational source.
    Execute,
    /// XA phase-1 prepare on a relational source.
    Prepare,
    /// Web-service operation invocation.
    Call,
    /// Data-space read (`DataSpace::get`).
    Get,
    /// Data-space update submission (`submit` / `default_submit`).
    Submit,
    /// 2PC protocol point: coordinator wrote `Begin` to its journal
    /// (source name is always `"coordinator"`).
    XaBegin,
    /// 2PC protocol point: one branch prepared and its `Prepared`
    /// record was journaled (source name is the branch's database).
    XaPrepared,
    /// 2PC protocol point: the `CommitDecision` record was journaled
    /// (source name is `"coordinator"`).
    XaDecide,
    /// 2PC protocol point: one branch committed, but its `Committed`
    /// record is *not yet* journaled (source name is the branch's
    /// database).
    XaCommit,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Scan => "scan",
            Op::Select => "select",
            Op::Execute => "execute",
            Op::Prepare => "prepare",
            Op::Call => "call",
            Op::Get => "get",
            Op::Submit => "submit",
            Op::XaBegin => "xa-begin",
            Op::XaPrepared => "xa-prepared",
            Op::XaDecide => "xa-decide",
            Op::XaCommit => "xa-commit",
        })
    }
}

/// What a matching rule does to the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise `aldsp:SRC_TRANSIENT` (retryable) on every firing.
    Transient,
    /// Raise `aldsp:SRC_UNAVAILABLE` (not retryable) on every firing.
    Permanent,
    /// Raise `aldsp:SRC_TIMEOUT` (retryable) on every firing.
    Timeout,
    /// Succeed, but take the given number of virtual milliseconds.
    /// Under a resilience policy the delay is checked against the call
    /// timeout and may surface as `aldsp:SRC_TIMEOUT`.
    SlowResponse(u64),
    /// Raise `aldsp:SRC_TRANSIENT` for the first `k` firings, then
    /// stop matching (the canonical "transient blip" rule).
    FailNTimes(u32),
    /// Kill the 2PC coordinator at the matched protocol point
    /// (`Op::XaBegin`/`XaPrepared`/`XaDecide`/`XaCommit`): the
    /// coordinator unwinds with `aldsp:XA_COORD_CRASH`, leaving
    /// sources in whatever partial state the protocol had reached —
    /// prepared locks held, or some branches committed and others not.
    /// Defaults to a budget of **1** (a process crashes once), so a
    /// later `DataSpace::recover()` / retried submit runs unimpeded.
    CrashPoint,
    /// Succeed, but *stall* for the given number of virtual
    /// milliseconds first: the clock advances and the request's budget
    /// burns, but — unlike [`FaultKind::SlowResponse`] — the stall is
    /// **never** compared against the policy timeout, so it cannot
    /// surface as `aldsp:SRC_TIMEOUT`. The only observable consequence
    /// is whatever the caller's *budget* says afterwards: this is the
    /// primitive the cancel-at-every-protocol-point chaos matrix uses
    /// to expire a deadline at an exact 2PC step.
    Stall(u64),
}

/// One entry in a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Source name to match; `"*"` matches every source.
    pub source: String,
    /// Operation to match; `None` matches every operation.
    pub op: Option<Op>,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Remaining firing budget. `FailNTimes(k)` starts at `k`; other
    /// kinds default to unlimited unless capped with
    /// [`FaultRule::times`].
    budget: u32,
    /// Firing probability in `[0,1]`; `1.0` (always) by default.
    /// Evaluated with the plan's seeded RNG, so runs are reproducible.
    probability: f64,
}

impl FaultRule {
    /// A rule for `source`/`op` with the given kind and default budget.
    pub fn new(source: impl Into<String>, op: Op, kind: FaultKind) -> FaultRule {
        FaultRule {
            source: source.into(),
            op: Some(op),
            kind,
            budget: match kind {
                FaultKind::FailNTimes(k) => k,
                FaultKind::CrashPoint => 1,
                _ => u32::MAX,
            },
            probability: 1.0,
        }
    }

    /// A rule matching *every* operation on `source`.
    pub fn any_op(source: impl Into<String>, kind: FaultKind) -> FaultRule {
        let mut r = FaultRule::new(source, Op::Scan, kind);
        r.op = None;
        r
    }

    /// Cap how many times this rule may fire.
    pub fn times(mut self, n: u32) -> FaultRule {
        self.budget = n;
        self
    }

    /// Fire only with the given probability (seeded, reproducible).
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches(&self, source: &str, op: Op) -> bool {
        (self.source == "*" || self.source == source)
            && self.op.is_none_or(|o| o == op)
            && self.budget > 0
    }
}

/// An ordered collection of fault rules plus the RNG seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with an explicit RNG seed for probabilistic rules.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { rules: Vec::new(), seed }
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The injector's verdict for one call.
#[derive(Debug, Clone, PartialEq)]
pub enum Injected {
    /// Fail the call with this error before it reaches the source.
    Error(XdmError),
    /// Let the call proceed, but charge this many virtual
    /// milliseconds of latency first.
    Delay(u64),
    /// Kill the coordinator here: the 2PC driver unwinds immediately
    /// with `aldsp:XA_COORD_CRASH` and performs **no** cleanup —
    /// unlike `Error`, which aborts the transaction tidily. Only the
    /// coordinator's crash-check points honour this; ordinary source
    /// calls treat it like a permanent error.
    Crash,
    /// Let the call proceed after this many virtual milliseconds of
    /// latency that consume the request budget but are exempt from the
    /// policy timeout (see [`FaultKind::Stall`]).
    Stall(u64),
}

/// A record of one injected fault, for assertions and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The source the faulted call targeted.
    pub source: String,
    /// The operation that was intercepted.
    pub op: Op,
    /// What was injected.
    pub injected: Injected,
    /// Number of coalesced requests in flight when a *batched* call
    /// was intercepted; `None` for single calls.
    pub batch_size: Option<usize>,
    /// Index of the serving-pool worker whose call hit the fault
    /// (`None` when the call came from outside a pool worker, e.g. a
    /// single-threaded test or the coordinator's recovery pass).
    pub worker: Option<usize>,
}

thread_local! {
    /// Serving-pool worker identity of the current thread; stamped
    /// onto every [`FaultEvent`] the thread triggers. The pool sets it
    /// once per worker thread via [`set_current_worker`].
    static CURRENT_WORKER: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Tag the current thread as serving-pool worker `idx` (or clear the
/// tag with `None`). Subsequent injected faults on this thread carry
/// the tag in [`FaultEvent::worker`].
pub fn set_current_worker(idx: Option<usize>) {
    CURRENT_WORKER.with(|w| w.set(idx));
}

/// The serving-pool worker tag of the current thread, if any.
pub fn current_worker() -> Option<usize> {
    CURRENT_WORKER.with(|w| w.get())
}

/// Default capacity of the injector's event ring. Big enough that
/// every existing chaos test sees all its events; small enough that a
/// soak run injecting millions of faults stays bounded.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Deterministic fault injector: consult [`FaultInjector::on_call`]
/// before performing a source operation.
///
/// The event log is a capped ring: once `capacity` events are held,
/// each new event evicts the oldest and bumps
/// [`FaultInjector::dropped_events`], so unbounded chaos runs don't
/// grow memory without limit.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    rng: u64,
    log: std::collections::VecDeque<FaultEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector::new(FaultPlan::default())
    }
}

/// splitmix64 step — tiny, seedable, good enough for fault dice.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rules: plan.rules,
            rng: plan.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
            log: std::collections::VecDeque::new(),
            capacity: DEFAULT_EVENT_CAPACITY,
            dropped: 0,
        }
    }

    /// Cap the event ring at `capacity` events (builder style). A
    /// capacity of 0 keeps no events at all — every injection counts
    /// as dropped.
    pub fn with_event_capacity(mut self, capacity: usize) -> FaultInjector {
        self.capacity = capacity;
        while self.log.len() > self.capacity {
            self.log.pop_front();
            self.dropped += 1;
        }
        self
    }

    fn push_event(&mut self, event: FaultEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.log.len() >= self.capacity {
            self.log.pop_front();
            self.dropped += 1;
        }
        self.log.push_back(event);
    }

    /// Decide the fate of one call against `source`/`op`.
    ///
    /// Scans rules in plan order; the first match with remaining
    /// budget (and a winning probability roll) fires and has its
    /// budget decremented. Returns `None` when the call should proceed
    /// unmolested.
    pub fn on_call(&mut self, source: &str, op: Op) -> Option<Injected> {
        for rule in self.rules.iter_mut() {
            if !rule.matches(source, op) {
                continue;
            }
            if rule.probability < 1.0 {
                let roll = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
                if roll >= rule.probability {
                    continue;
                }
            }
            rule.budget = rule.budget.saturating_sub(1);
            let injected = match rule.kind {
                FaultKind::Transient | FaultKind::FailNTimes(_) => Injected::Error(
                    AldspCode::SrcTransient
                        .error(format!("injected transient fault on {source}/{op}")),
                ),
                FaultKind::Permanent => Injected::Error(
                    AldspCode::SrcUnavailable
                        .error(format!("injected permanent fault on {source}/{op}")),
                ),
                FaultKind::Timeout => Injected::Error(
                    AldspCode::SrcTimeout.error(format!("injected timeout on {source}/{op}")),
                ),
                FaultKind::SlowResponse(ms) => Injected::Delay(ms),
                FaultKind::CrashPoint => Injected::Crash,
                FaultKind::Stall(ms) => Injected::Stall(ms),
            };
            self.push_event(FaultEvent {
                source: source.to_string(),
                op,
                injected: injected.clone(),
                batch_size: None,
                worker: current_worker(),
            });
            return Some(injected);
        }
        None
    }

    /// Decide the fate of one *batched* call.
    ///
    /// A coalesced batch of `size` requests consults the plan once —
    /// a firing rule fails (or delays) the whole flight, exactly like
    /// a real bulk endpoint. The logged [`FaultEvent`] records the
    /// batch size so chaos tests can assert coalescing happened.
    pub fn on_batch(&mut self, source: &str, op: Op, size: usize) -> Option<Injected> {
        let verdict = self.on_call(source, op);
        if verdict.is_some() {
            if let Some(ev) = self.log.back_mut() {
                ev.batch_size = Some(size);
            }
        }
        verdict
    }

    /// Every *retained* fault injected so far, in order. When the ring
    /// has overflowed, the oldest events are gone — check
    /// [`FaultInjector::dropped_events`] before assuming completeness.
    pub fn events(&mut self) -> &[FaultEvent] {
        self.log.make_contiguous();
        self.log.as_slices().0
    }

    /// How many faults have been injected so far (retained + dropped).
    pub fn injected_count(&self) -> usize {
        self.log.len() + self.dropped as usize
    }

    /// How many events the ring has evicted (or refused, at capacity
    /// 0) since construction.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The ring's current capacity.
    pub fn event_capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
#[allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
mod fault_tests {
    use super::*;

    #[test]
    fn fail_n_times_exhausts_its_budget() {
        let plan = FaultPlan::new().rule(FaultRule::new(
            "DB1",
            Op::Prepare,
            FaultKind::FailNTimes(2),
        ));
        let mut inj = FaultInjector::new(plan);
        assert!(matches!(inj.on_call("DB1", Op::Prepare), Some(Injected::Error(_))));
        assert!(matches!(inj.on_call("DB1", Op::Prepare), Some(Injected::Error(_))));
        assert_eq!(inj.on_call("DB1", Op::Prepare), None);
        // Other sources/ops never matched.
        assert_eq!(inj.on_call("DB2", Op::Prepare), None);
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn wildcard_and_any_op_rules_match_broadly() {
        let plan = FaultPlan::new().rule(FaultRule::any_op("*", FaultKind::Permanent).times(3));
        let mut inj = FaultInjector::new(plan);
        for (s, op) in [("A", Op::Scan), ("B", Op::Call), ("C", Op::Submit)] {
            match inj.on_call(s, op) {
                Some(Injected::Error(e)) => {
                    assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcUnavailable))
                }
                other => panic!("expected permanent fault, got {other:?}"),
            }
        }
        assert_eq!(inj.on_call("D", Op::Get), None);
    }

    #[test]
    fn slow_response_is_a_delay_not_an_error() {
        let plan =
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::SlowResponse(250)));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_call("WS", Op::Call), Some(Injected::Delay(250)));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let mk = |seed| {
            let plan = FaultPlan::seeded(seed).rule(
                FaultRule::new("DB", Op::Scan, FaultKind::Transient).with_probability(0.5),
            );
            let mut inj = FaultInjector::new(plan);
            (0..32).map(|_| inj.on_call("DB", Op::Scan).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed, same fault sequence");
        assert_ne!(mk(7), mk(8), "different seeds diverge");
        assert!(mk(7).iter().any(|&b| b) && mk(7).iter().any(|&b| !b));
    }

    #[test]
    fn crash_point_fires_once_and_injects_crash() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new("coordinator", Op::XaDecide, FaultKind::CrashPoint));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_call("coordinator", Op::XaDecide), Some(Injected::Crash));
        assert_eq!(
            inj.on_call("coordinator", Op::XaDecide),
            None,
            "a process crashes once; the default budget is 1"
        );
    }

    #[test]
    fn event_ring_caps_and_counts_drops() {
        let plan = FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Transient));
        let mut inj = FaultInjector::new(plan).with_event_capacity(3);
        for _ in 0..10 {
            inj.on_call("DB", Op::Scan);
        }
        assert_eq!(inj.events().len(), 3, "ring holds only the newest 3");
        assert_eq!(inj.dropped_events(), 7);
        assert_eq!(inj.injected_count(), 10, "count includes evicted events");
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let plan = FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Transient));
        let mut inj = FaultInjector::new(plan).with_event_capacity(0);
        inj.on_call("DB", Op::Scan);
        assert!(inj.events().is_empty());
        assert_eq!(inj.dropped_events(), 1);
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn stall_is_a_stall_not_a_delay() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new("coordinator", Op::XaDecide, FaultKind::Stall(500)).times(2));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_call("coordinator", Op::XaDecide), Some(Injected::Stall(500)));
        assert_eq!(inj.on_call("coordinator", Op::XaDecide), Some(Injected::Stall(500)));
        assert_eq!(inj.on_call("coordinator", Op::XaDecide), None, "times(2) respected");
    }

    #[test]
    fn timeout_kind_carries_the_timeout_code() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new("WS", Op::Call, FaultKind::Timeout).times(1));
        let mut inj = FaultInjector::new(plan);
        match inj.on_call("WS", Op::Call) {
            Some(Injected::Error(e)) => {
                assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcTimeout))
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(inj.on_call("WS", Op::Call), None, "budget of 1 respected");
    }
}
