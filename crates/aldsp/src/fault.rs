//! Deterministic fault injection for ALDSP sources.
//!
//! Real ALDSP deployments sit in front of flaky infrastructure:
//! relational sources drop connections, web services time out, and
//! distributed transactions abort mid-flight.  The paper's motivation
//! for XQSE's `try`/`catch` (§III.D) and compensation patterns (Use
//! Case 4's replicating create) is exactly these failures — but the
//! seed substrate could only ever succeed, so none of those paths were
//! exercisable.
//!
//! This module adds a **seedable, deterministic** [`FaultInjector`]
//! that sources consult before touching their backing state.  A
//! [`FaultPlan`] is an ordered list of [`FaultRule`]s keyed by source
//! name and operation; the first matching rule with remaining budget
//! fires.  Determinism is the point: a chaos test writes a plan,
//! replays it, and asserts *exact* outcomes — no real sleeps, no wall
//! clocks, no flaky tests.  Simulated latency is expressed through the
//! virtual clock in [`crate::resilience`].
//!
//! Probabilistic rules are supported for soak-style tests via a
//! seeded splitmix64 RNG: the same seed always yields the same fault
//! sequence.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fmt;

use xdm::error::XdmError;

use crate::errors::AldspCode;

/// The operations a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Full-table scan on a relational source.
    Scan,
    /// Keyed select on a relational source.
    Select,
    /// Auto-commit write batch on a relational source.
    Execute,
    /// XA phase-1 prepare on a relational source.
    Prepare,
    /// Web-service operation invocation.
    Call,
    /// Data-space read (`DataSpace::get`).
    Get,
    /// Data-space update submission (`submit` / `default_submit`).
    Submit,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Scan => "scan",
            Op::Select => "select",
            Op::Execute => "execute",
            Op::Prepare => "prepare",
            Op::Call => "call",
            Op::Get => "get",
            Op::Submit => "submit",
        })
    }
}

/// What a matching rule does to the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise `aldsp:SRC_TRANSIENT` (retryable) on every firing.
    Transient,
    /// Raise `aldsp:SRC_UNAVAILABLE` (not retryable) on every firing.
    Permanent,
    /// Raise `aldsp:SRC_TIMEOUT` (retryable) on every firing.
    Timeout,
    /// Succeed, but take the given number of virtual milliseconds.
    /// Under a resilience policy the delay is checked against the call
    /// timeout and may surface as `aldsp:SRC_TIMEOUT`.
    SlowResponse(u64),
    /// Raise `aldsp:SRC_TRANSIENT` for the first `k` firings, then
    /// stop matching (the canonical "transient blip" rule).
    FailNTimes(u32),
}

/// One entry in a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Source name to match; `"*"` matches every source.
    pub source: String,
    /// Operation to match; `None` matches every operation.
    pub op: Option<Op>,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Remaining firing budget. `FailNTimes(k)` starts at `k`; other
    /// kinds default to unlimited unless capped with
    /// [`FaultRule::times`].
    budget: u32,
    /// Firing probability in `[0,1]`; `1.0` (always) by default.
    /// Evaluated with the plan's seeded RNG, so runs are reproducible.
    probability: f64,
}

impl FaultRule {
    /// A rule for `source`/`op` with the given kind and default budget.
    pub fn new(source: impl Into<String>, op: Op, kind: FaultKind) -> FaultRule {
        FaultRule {
            source: source.into(),
            op: Some(op),
            kind,
            budget: match kind {
                FaultKind::FailNTimes(k) => k,
                _ => u32::MAX,
            },
            probability: 1.0,
        }
    }

    /// A rule matching *every* operation on `source`.
    pub fn any_op(source: impl Into<String>, kind: FaultKind) -> FaultRule {
        let mut r = FaultRule::new(source, Op::Scan, kind);
        r.op = None;
        r
    }

    /// Cap how many times this rule may fire.
    pub fn times(mut self, n: u32) -> FaultRule {
        self.budget = n;
        self
    }

    /// Fire only with the given probability (seeded, reproducible).
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches(&self, source: &str, op: Op) -> bool {
        (self.source == "*" || self.source == source)
            && self.op.is_none_or(|o| o == op)
            && self.budget > 0
    }
}

/// An ordered collection of fault rules plus the RNG seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with an explicit RNG seed for probabilistic rules.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { rules: Vec::new(), seed }
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The injector's verdict for one call.
#[derive(Debug, Clone, PartialEq)]
pub enum Injected {
    /// Fail the call with this error before it reaches the source.
    Error(XdmError),
    /// Let the call proceed, but charge this many virtual
    /// milliseconds of latency first.
    Delay(u64),
}

/// A record of one injected fault, for assertions and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The source the faulted call targeted.
    pub source: String,
    /// The operation that was intercepted.
    pub op: Op,
    /// What was injected.
    pub injected: Injected,
    /// Number of coalesced requests in flight when a *batched* call
    /// was intercepted; `None` for single calls.
    pub batch_size: Option<usize>,
}

/// Deterministic fault injector: consult [`FaultInjector::on_call`]
/// before performing a source operation.
#[derive(Debug, Default)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    rng: u64,
    log: Vec<FaultEvent>,
}

/// splitmix64 step — tiny, seedable, good enough for fault dice.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rules: plan.rules,
            rng: plan.seed ^ 0xA5A5_5A5A_0F0F_F0F0,
            log: Vec::new(),
        }
    }

    /// Decide the fate of one call against `source`/`op`.
    ///
    /// Scans rules in plan order; the first match with remaining
    /// budget (and a winning probability roll) fires and has its
    /// budget decremented. Returns `None` when the call should proceed
    /// unmolested.
    pub fn on_call(&mut self, source: &str, op: Op) -> Option<Injected> {
        for rule in self.rules.iter_mut() {
            if !rule.matches(source, op) {
                continue;
            }
            if rule.probability < 1.0 {
                let roll = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
                if roll >= rule.probability {
                    continue;
                }
            }
            rule.budget = rule.budget.saturating_sub(1);
            let injected = match rule.kind {
                FaultKind::Transient | FaultKind::FailNTimes(_) => Injected::Error(
                    AldspCode::SrcTransient
                        .error(format!("injected transient fault on {source}/{op}")),
                ),
                FaultKind::Permanent => Injected::Error(
                    AldspCode::SrcUnavailable
                        .error(format!("injected permanent fault on {source}/{op}")),
                ),
                FaultKind::Timeout => Injected::Error(
                    AldspCode::SrcTimeout.error(format!("injected timeout on {source}/{op}")),
                ),
                FaultKind::SlowResponse(ms) => Injected::Delay(ms),
            };
            self.log.push(FaultEvent {
                source: source.to_string(),
                op,
                injected: injected.clone(),
                batch_size: None,
            });
            return Some(injected);
        }
        None
    }

    /// Decide the fate of one *batched* call.
    ///
    /// A coalesced batch of `size` requests consults the plan once —
    /// a firing rule fails (or delays) the whole flight, exactly like
    /// a real bulk endpoint. The logged [`FaultEvent`] records the
    /// batch size so chaos tests can assert coalescing happened.
    pub fn on_batch(&mut self, source: &str, op: Op, size: usize) -> Option<Injected> {
        let verdict = self.on_call(source, op);
        if verdict.is_some() {
            if let Some(ev) = self.log.last_mut() {
                ev.batch_size = Some(size);
            }
        }
        verdict
    }

    /// Every fault injected so far, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.log
    }

    /// How many faults have been injected so far.
    pub fn injected_count(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
#[allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
mod fault_tests {
    use super::*;

    #[test]
    fn fail_n_times_exhausts_its_budget() {
        let plan = FaultPlan::new().rule(FaultRule::new(
            "DB1",
            Op::Prepare,
            FaultKind::FailNTimes(2),
        ));
        let mut inj = FaultInjector::new(plan);
        assert!(matches!(inj.on_call("DB1", Op::Prepare), Some(Injected::Error(_))));
        assert!(matches!(inj.on_call("DB1", Op::Prepare), Some(Injected::Error(_))));
        assert_eq!(inj.on_call("DB1", Op::Prepare), None);
        // Other sources/ops never matched.
        assert_eq!(inj.on_call("DB2", Op::Prepare), None);
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn wildcard_and_any_op_rules_match_broadly() {
        let plan = FaultPlan::new().rule(FaultRule::any_op("*", FaultKind::Permanent).times(3));
        let mut inj = FaultInjector::new(plan);
        for (s, op) in [("A", Op::Scan), ("B", Op::Call), ("C", Op::Submit)] {
            match inj.on_call(s, op) {
                Some(Injected::Error(e)) => {
                    assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcUnavailable))
                }
                other => panic!("expected permanent fault, got {other:?}"),
            }
        }
        assert_eq!(inj.on_call("D", Op::Get), None);
    }

    #[test]
    fn slow_response_is_a_delay_not_an_error() {
        let plan =
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::SlowResponse(250)));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_call("WS", Op::Call), Some(Injected::Delay(250)));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let mk = |seed| {
            let plan = FaultPlan::seeded(seed).rule(
                FaultRule::new("DB", Op::Scan, FaultKind::Transient).with_probability(0.5),
            );
            let mut inj = FaultInjector::new(plan);
            (0..32).map(|_| inj.on_call("DB", Op::Scan).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7), "same seed, same fault sequence");
        assert_ne!(mk(7), mk(8), "different seeds diverge");
        assert!(mk(7).iter().any(|&b| b) && mk(7).iter().any(|&b| !b));
    }

    #[test]
    fn timeout_kind_carries_the_timeout_code() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new("WS", Op::Call, FaultKind::Timeout).times(1));
        let mut inj = FaultInjector::new(plan);
        match inj.on_call("WS", Op::Call) {
            Some(Injected::Error(e)) => {
                assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcTimeout))
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(inj.on_call("WS", Op::Call), None, "budget of 1 respected");
    }
}
