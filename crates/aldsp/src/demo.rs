//! The paper's running example as a reusable fixture: the
//! `CustomerProfile` logical data service integrating two relational
//! databases and a credit-rating web service (Figures 1–3).

use xdm::error::XdmResult;
use xdm::qname::QName;

use crate::rel::{Column, ColumnType, Database, ForeignKey, SqlValue, TableSchema};
use crate::service::DataSpace;
use crate::ws::WebService;

/// Namespace of the credit-rating request/response types.
pub const CREDIT_TYPES_NS: &str = "urn:creditrating/types";

/// The Figure-3 primary read function (plus `getProfileById`), adapted
/// only in the mechanical ways the paper's IDE would have handled:
/// namespace declarations spelled out and the figure's OCR-mangled
/// closing tags repaired.
pub const GET_PROFILE_SRC: &str = r#"
declare namespace ns1 = "ld:CustomerProfile";
declare namespace cus = "ld:db1/CUSTOMER";
declare namespace cre = "ld:db2/CREDIT_CARD";
declare namespace cre2 = "urn:creditrating/types";
declare namespace cre3 = "ld:ws/CreditRating";

declare function ns1:getProfile() as element(CustomerProfile)* {
  for $CUSTOMER in cus:CUSTOMER()
  return <CustomerProfile>
             <CID>{fn:data($CUSTOMER/CID)}</CID>
             <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
             <FIRST_NAME>{fn:data($CUSTOMER/FIRST_NAME)}</FIRST_NAME>
             <Orders>{
               for $ORDER in cus:getORDER($CUSTOMER)
               return <ORDER>
                         <OID>{fn:data($ORDER/OID)}</OID>
                         <CID>{fn:data($ORDER/CID)}</CID>
                         <ORDER_DATE>{fn:data($ORDER/ORDER_DATE)}</ORDER_DATE>
                         <TOTAL>{fn:data($ORDER/TOTAL_ORDER_AMOUNT)}</TOTAL>
                         <STATUS>{fn:data($ORDER/STATUS)}</STATUS>
                      </ORDER>
             }</Orders>
             <CreditCards>{
               for $CREDIT_CARD in cre:CREDIT_CARD()
               where $CUSTOMER/CID eq $CREDIT_CARD/CID
               return <CREDIT_CARD>
                         <CCID>{fn:data($CREDIT_CARD/CCID)}</CCID>
                         <CID>{fn:data($CREDIT_CARD/CID)}</CID>
                         <TYPE>{fn:data($CREDIT_CARD/CC_TYPE)}</TYPE>
                         <BRAND>{fn:data($CREDIT_CARD/CC_BRAND)}</BRAND>
                         <NUMBER>{fn:data($CREDIT_CARD/CC_NUMBER)}</NUMBER>
                         <EXP_DATE>{fn:data($CREDIT_CARD/EXP_DATE)}</EXP_DATE>
                      </CREDIT_CARD>
             }</CreditCards>
             {
               for $getCreditRatingResponse in cre3:getCreditRating(<cre2:getCreditRating>
                     <cre2:lastName>{fn:data($CUSTOMER/LAST_NAME)}</cre2:lastName>
                     <cre2:ssn>{fn:data($CUSTOMER/SSN)}</cre2:ssn>
                   </cre2:getCreditRating>)
               return <CreditRating>{fn:data($getCreditRatingResponse/cre2:value)}</CreditRating>
             }
        </CustomerProfile>
};

declare function ns1:getProfileById($cid as xs:string) as element(CustomerProfile)* {
  for $CustomerProfile in ns1:getProfile()
  where $cid eq $CustomerProfile/CID
  return $CustomerProfile
};
"#;

/// A built demo dataspace.
pub struct Demo {
    /// The dataspace with all sources and the logical service
    /// registered.
    pub space: DataSpace,
    /// Database holding CUSTOMER and ORDER.
    pub db1: Database,
    /// Database holding CREDIT_CARD.
    pub db2: Database,
    /// Number of customers loaded.
    pub customers: usize,
}

/// CUSTOMER schema (db1).
pub fn customer_schema() -> TableSchema {
    TableSchema {
        name: "CUSTOMER".into(),
        columns: vec![
            Column::required("CID", ColumnType::Integer),
            Column::required("FIRST_NAME", ColumnType::Varchar),
            Column::required("LAST_NAME", ColumnType::Varchar),
            Column::nullable("SSN", ColumnType::Varchar),
        ],
        primary_key: vec!["CID".into()],
        foreign_keys: vec![],
    }
}

/// ORDER schema (db1) with FK to CUSTOMER.
pub fn order_schema() -> TableSchema {
    TableSchema {
        name: "ORDER".into(),
        columns: vec![
            Column::required("OID", ColumnType::Integer),
            Column::required("CID", ColumnType::Integer),
            Column::nullable("ORDER_DATE", ColumnType::Date),
            Column::nullable("TOTAL_ORDER_AMOUNT", ColumnType::Decimal),
            Column::nullable("STATUS", ColumnType::Varchar),
        ],
        primary_key: vec!["OID".into()],
        foreign_keys: vec![ForeignKey {
            name: "FK_ORDER_CUSTOMER".into(),
            columns: vec!["CID".into()],
            ref_table: "CUSTOMER".into(),
            ref_columns: vec!["CID".into()],
        }],
    }
}

/// CREDIT_CARD schema (db2).
pub fn credit_card_schema() -> TableSchema {
    TableSchema {
        name: "CREDIT_CARD".into(),
        columns: vec![
            Column::required("CCID", ColumnType::Integer),
            Column::required("CID", ColumnType::Integer),
            Column::nullable("CC_TYPE", ColumnType::Varchar),
            Column::nullable("CC_BRAND", ColumnType::Varchar),
            Column::nullable("CC_NUMBER", ColumnType::Varchar),
            Column::nullable("EXP_DATE", ColumnType::Date),
        ],
        primary_key: vec!["CCID".into()],
        foreign_keys: vec![],
    }
}

/// Deterministic last names (stable across runs so the credit-rating
/// hash and tests are reproducible).
const LAST_NAMES: &[&str] = &[
    "Carey", "Borkar", "Engovatov", "Lychagin", "Westmann", "Wong", "Smith", "Jones",
];

/// Build the demo dataspace with `n` customers, `orders_per` orders
/// and `cards_per` credit cards per customer.
pub fn build(n: usize, orders_per: usize, cards_per: usize) -> XdmResult<Demo> {
    let db1 = Database::new("db1");
    db1.create_table(customer_schema())?;
    db1.create_table(order_schema())?;
    let db2 = Database::new("db2");
    db2.create_table(credit_card_schema())?;

    let mut oid = 1i64;
    let mut ccid = 1i64;
    for cid in 1..=(n as i64) {
        let last = LAST_NAMES[(cid as usize - 1) % LAST_NAMES.len()];
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::Int(cid),
                SqlValue::Str(format!("First{cid}")),
                SqlValue::Str(last.to_string()),
                SqlValue::Str(format!("{:03}-55-{:04}", cid % 900, cid % 10_000)),
            ],
        )?;
        for k in 0..orders_per {
            db1.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::Int(cid),
                    SqlValue::Date(xdm::datetime::Date::new(
                        2007,
                        (k % 12) as u8 + 1,
                        (oid % 27) as u8 + 1,
                    )?),
                    SqlValue::Dec(xdm::decimal::Decimal::from_parts(
                        999 + 37 * oid as i128,
                        2,
                    )),
                    SqlValue::Str(if oid % 3 == 0 { "SHIPPED" } else { "OPEN" }.into()),
                ],
            )?;
            oid += 1;
        }
        for _ in 0..cards_per {
            db2.insert(
                "CREDIT_CARD",
                vec![
                    SqlValue::Int(ccid),
                    SqlValue::Int(cid),
                    SqlValue::Str("CREDIT".into()),
                    SqlValue::Str(if ccid % 2 == 0 { "VISTA" } else { "MASTERCHARGE" }.into()),
                    SqlValue::Str(format!("4000-{ccid:012}")),
                    SqlValue::Date(xdm::datetime::Date::new(2010, 12, 1)?),
                ],
            )?;
            ccid += 1;
        }
    }

    let space = assemble(&db1, &db2, WebService::credit_rating(CREDIT_TYPES_NS))?;
    Ok(Demo { space, db1, db2, customers: n })
}

/// Register the demo's sources and the `CustomerProfile` logical
/// service into a fresh dataspace.
///
/// This is the canonical serving-pool worker builder body: databases
/// clone-share their state (`Arc` innards), so every worker that
/// assembles over the same `db1`/`db2` handles sees one copy of the
/// data, while the web service — whose handlers are `Rc` closures —
/// is rebuilt per worker from its factory.
pub fn assemble(db1: &Database, db2: &Database, ws: WebService) -> XdmResult<DataSpace> {
    let space = DataSpace::new();
    space.register_relational_source(db1)?;
    space.register_relational_source(db2)?;
    space.register_web_service(ws)?;
    space.register_logical_service(
        "CustomerProfile",
        GET_PROFILE_SRC,
        &QName::with_ns("ld:CustomerProfile", "getProfile"),
    )?;
    Ok(space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_builds_and_reads() {
        let demo = build(3, 2, 2).unwrap();
        assert_eq!(demo.db1.row_count("CUSTOMER").unwrap(), 3);
        assert_eq!(demo.db1.row_count("ORDER").unwrap(), 6);
        assert_eq!(demo.db2.row_count("CREDIT_CARD").unwrap(), 6);
        let g = demo.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        assert_eq!(g.len(), 3);
        // Shape checks.
        assert_eq!(g.get_value(0, &["CID"]).unwrap(), "1");
        assert_eq!(g.get_value(0, &["LAST_NAME"]).unwrap(), "Carey");
        assert_eq!(g.get_value(0, &["Orders", "ORDER#1", "OID"]).unwrap(), "2");
        assert_eq!(g.get_value(0, &["CreditCards", "CREDIT_CARD", "CCID"]).unwrap(), "1");
        let rating: u32 = g.get_value(0, &["CreditRating"]).unwrap().parse().unwrap();
        assert!((300..=850).contains(&rating));
    }

    #[test]
    fn get_profile_by_id() {
        let demo = build(4, 1, 1).unwrap();
        let g = demo
            .space
            .get(
                "CustomerProfile",
                "getProfileById",
                vec![xdm::sequence::Sequence::one(xdm::sequence::Item::string("3"))],
            )
            .unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.get_value(0, &["CID"]).unwrap(), "3");
    }

    #[test]
    fn lineage_spans_both_sources() {
        let demo = build(1, 1, 1).unwrap();
        let lin = demo.space.lineage("CustomerProfile").unwrap();
        assert_eq!(lin.sources(), vec!["db1", "db2"]);
        assert_eq!(lin.root.table, "CUSTOMER");
        assert_eq!(lin.root.unmapped, vec!["CreditRating"]);
    }
}
