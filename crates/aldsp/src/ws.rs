//! The web-service source simulator.
//!
//! ALDSP introspects a WSDL and produces a library data service with
//! one method per operation (§II.A). Here a [`WebService`] carries
//! WSDL-like operation metadata (name, input/output element names) and
//! an in-process implementation closure — enough to exercise the same
//! introspection → library-data-service → XQuery-call path as the
//! paper's document-style credit-rating service.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use crate::errors::AldspCode;
use crate::fault::Op;
use crate::resilience::Access;

/// An operation implementation: request sequence in, response
/// sequence out.
pub type WsHandler = Rc<dyn Fn(&Sequence) -> XdmResult<Sequence>>;

/// WSDL-like metadata plus implementation for one operation.
#[derive(Clone)]
pub struct WsOperation {
    /// Operation name (becomes the library-function name).
    pub name: String,
    /// Input element local name (from the "WSDL types").
    pub input_element: String,
    /// Output element local name.
    pub output_element: String,
    /// The implementation.
    pub handler: WsHandler,
}

/// A web-service source: a named set of operations.
///
/// Calls are routed through the service's [`Access`] handle (fault
/// injection + retry/timeout/circuit breaker). Responses of
/// successful calls are remembered per request, so when the service
/// is unavailable a read may be served from that marked-stale cache
/// (graceful degradation; the credit-rating use case tolerates a
/// slightly old score better than a failed profile read).
#[derive(Clone)]
pub struct WebService {
    /// Service name (e.g. `CreditRating`).
    pub name: String,
    /// The service's namespace (used for request/response elements).
    pub namespace: String,
    operations: HashMap<String, WsOperation>,
    order: Vec<String>,
    access: Rc<RefCell<Access>>,
    response_cache: Rc<RefCell<HashMap<String, Sequence>>>,
}

impl WebService {
    /// An empty service.
    pub fn new(name: &str, namespace: &str) -> WebService {
        WebService {
            name: name.to_string(),
            namespace: namespace.to_string(),
            operations: HashMap::new(),
            order: Vec::new(),
            access: Rc::new(RefCell::new(Access::none())),
            response_cache: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Install (or replace) the fault-injection / resilience handle
    /// for this source. Shared across clones.
    pub fn set_access(&self, access: Access) {
        *self.access.borrow_mut() = access;
    }

    /// A snapshot of this source's access handle.
    pub fn access(&self) -> Access {
        self.access.borrow().clone()
    }

    /// Register an operation.
    pub fn add_operation(
        &mut self,
        name: &str,
        input_element: &str,
        output_element: &str,
        handler: WsHandler,
    ) {
        self.order.push(name.to_string());
        self.operations.insert(
            name.to_string(),
            WsOperation {
                name: name.to_string(),
                input_element: input_element.to_string(),
                output_element: output_element.to_string(),
                handler,
            },
        );
    }

    /// Operation names in registration order (the "WSDL port type").
    pub fn operation_names(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Look up an operation.
    pub fn operation(&self, name: &str) -> Option<&WsOperation> {
        self.operations.get(name)
    }

    /// Invoke an operation.
    ///
    /// Routed through the [`Access`] handle as a degradable read: when
    /// the service is unavailable (injected outage or open breaker), a
    /// previously cached response for the *same request* is served
    /// instead and counted in
    /// [`crate::ResilienceStats::stale_reads`].
    pub fn call(&self, name: &str, request: &Sequence) -> XdmResult<Sequence> {
        let op = self.operations.get(name).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0005,
                format!("web service {} has no operation {name}", self.name),
            )
        })?;
        let key = request_fingerprint(name, request);
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Call,
            || {
                let resp = (op.handler)(request)?;
                self.response_cache.borrow_mut().insert(key.clone(), resp.clone());
                Ok(resp)
            },
            || self.response_cache.borrow().get(&key).cloned(),
        )
    }

    /// The paper's credit-rating service (Figures 2/3): takes a
    /// `getCreditRating` request with `lastName` and `ssn` children and
    /// returns a `getCreditRatingResponse` with a numeric `value`.
    /// Deterministic: the rating is a stable hash of the SSN into
    /// 300–850 (the paper's testbed service is unavailable; this
    /// preserves the call shape and a realistic output domain).
    pub fn credit_rating(namespace: &str) -> WebService {
        let ns = namespace.to_string();
        let mut svc = WebService::new("CreditRating", namespace);
        let ns2 = ns.clone();
        svc.add_operation(
            "getCreditRating",
            "getCreditRating",
            "getCreditRatingResponse",
            Rc::new(move |request: &Sequence| {
                let req = request.exactly_one()?;
                let Item::Node(node) = req else {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "getCreditRating expects an element request",
                    ));
                };
                // A malformed request (missing message part) must be
                // rejected loudly — silently scoring an empty SSN
                // would hand every malformed caller the same bogus
                // rating. `aldsp:SRC_BAD_REQUEST` is never retried.
                let child = |local: &str| -> XdmResult<String> {
                    node.children()
                        .iter()
                        .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(local))
                        .map(|c| c.string_value())
                        .filter(|v| !v.is_empty())
                        .ok_or_else(|| {
                            AldspCode::SrcBadRequest.error(format!(
                                "getCreditRating request is missing required \
                                 message part '{local}'"
                            ))
                        })
                };
                let ssn = child("ssn")?;
                let last = child("lastName")?;
                let rating = credit_score(&ssn, &last);
                let resp = NodeHandle::root_element(QName::with_prefix_ns(
                    "cre2",
                    ns2.clone(),
                    "getCreditRatingResponse",
                ));
                let v = NodeHandle::new_element(
                    resp.arena(),
                    QName::with_prefix_ns("cre2", ns2.clone(), "value"),
                );
                v.append_child(&NodeHandle::new_text(resp.arena(), rating.to_string()))?;
                resp.append_child(&v)?;
                Ok(Sequence::one(Item::Node(resp)))
            }),
        );
        svc
    }
}

/// A stable key for one (operation, request) pair, used by the stale
/// response cache. String values are enough for the simulator's
/// document-style requests.
fn request_fingerprint(op: &str, request: &Sequence) -> String {
    let mut key = String::from(op);
    for item in request.items() {
        key.push('\u{1}');
        key.push_str(&item.string_value());
    }
    key
}

/// Deterministic FICO-range score from SSN + last name.
pub fn credit_score(ssn: &str, last_name: &str) -> u32 {
    let mut h: u32 = 2166136261;
    for b in ssn.bytes().chain(last_name.bytes()) {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    300 + (h % 551)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlparse::parse;

    fn request(ssn: &str, last: &str) -> Sequence {
        let xml = format!(
            "<getCreditRating xmlns=\"urn:cr\">\
             <lastName>{last}</lastName><ssn>{ssn}</ssn></getCreditRating>"
        );
        let doc = parse(&xml).unwrap();
        Sequence::one(Item::Node(doc.children()[0].clone()))
    }

    #[test]
    fn credit_rating_is_deterministic_and_in_range() {
        let svc = WebService::credit_rating("urn:cr");
        let r1 = svc.call("getCreditRating", &request("123-45-6789", "Carey")).unwrap();
        let r2 = svc.call("getCreditRating", &request("123-45-6789", "Carey")).unwrap();
        let v1 = r1.items()[0].string_value();
        assert_eq!(v1, r2.items()[0].string_value());
        let n: u32 = v1.parse().unwrap();
        assert!((300..=850).contains(&n), "rating {n} out of FICO range");
    }

    #[test]
    fn different_inputs_vary() {
        let a = credit_score("111-11-1111", "Smith");
        let b = credit_score("222-22-2222", "Jones");
        assert_ne!(a, b);
    }

    #[test]
    fn response_shape_matches_figure3() {
        // Figure 3 reads $getCreditRatingResponse/cre2:value.
        let svc = WebService::credit_rating("urn:cr");
        let resp = svc.call("getCreditRating", &request("1", "X")).unwrap();
        let Item::Node(n) = &resp.items()[0] else { panic!() };
        assert_eq!(n.name().unwrap().local, "getCreditRatingResponse");
        assert_eq!(n.name().unwrap().ns.as_deref(), Some("urn:cr"));
        let v = &n.children()[0];
        assert_eq!(v.name().unwrap().local, "value");
    }

    #[test]
    fn unknown_operation_is_dsp0005() {
        let svc = WebService::credit_rating("urn:cr");
        let err = svc.call("nosuch", &Sequence::empty()).unwrap_err();
        assert!(err.is(xdm::error::ErrorCode::DSP0005));
    }

    #[test]
    fn malformed_request_raises_bad_request_not_empty() {
        let svc = WebService::credit_rating("urn:cr");
        // Missing <ssn> part entirely.
        let xml = "<getCreditRating xmlns=\"urn:cr\">\
                   <lastName>Carey</lastName></getCreditRating>";
        let doc = parse(xml).unwrap();
        let req = Sequence::one(Item::Node(doc.children()[0].clone()));
        let err = svc.call("getCreditRating", &req).unwrap_err();
        assert_eq!(
            crate::errors::AldspCode::of(&err),
            Some(crate::errors::AldspCode::SrcBadRequest)
        );
        assert!(err.message.contains("ssn"));
        // Empty <ssn> is just as malformed.
        let err = svc.call("getCreditRating", &request("", "Carey")).unwrap_err();
        assert_eq!(
            crate::errors::AldspCode::of(&err),
            Some(crate::errors::AldspCode::SrcBadRequest)
        );
    }

    #[test]
    fn operation_metadata_for_introspection() {
        let svc = WebService::credit_rating("urn:cr");
        assert_eq!(svc.operation_names(), vec!["getCreditRating"]);
        let op = svc.operation("getCreditRating").unwrap();
        assert_eq!(op.input_element, "getCreditRating");
        assert_eq!(op.output_element, "getCreditRatingResponse");
    }
}
