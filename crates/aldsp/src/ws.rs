//! The web-service source simulator.
//!
//! ALDSP introspects a WSDL and produces a library data service with
//! one method per operation (§II.A). Here a [`WebService`] carries
//! WSDL-like operation metadata (name, input/output element names) and
//! an in-process implementation closure — enough to exercise the same
//! introspection → library-data-service → XQuery-call path as the
//! paper's document-style credit-rating service.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xqeval::Lru;

use crate::errors::AldspCode;
use crate::fault::Op;
use crate::resilience::Access;

/// Default bound on the per-service response cache. Must comfortably
/// exceed the benchmark's largest working set (5 000 distinct
/// customers in E1) or the read-through path would thrash.
const RESPONSE_CACHE_CAPACITY: usize = 8_192;

/// An operation implementation: request sequence in, response
/// sequence out.
pub type WsHandler = Rc<dyn Fn(&Sequence) -> XdmResult<Sequence>>;

/// WSDL-like metadata plus implementation for one operation.
#[derive(Clone)]
pub struct WsOperation {
    /// Operation name (becomes the library-function name).
    pub name: String,
    /// Input element local name (from the "WSDL types").
    pub input_element: String,
    /// Output element local name.
    pub output_element: String,
    /// The implementation.
    pub handler: WsHandler,
}

/// A web-service source: a named set of operations.
///
/// Calls are routed through the service's [`Access`] handle (fault
/// injection + retry/timeout/circuit breaker). Responses of
/// successful calls are remembered per request, so when the service
/// is unavailable a read may be served from that marked-stale cache
/// (graceful degradation; the credit-rating use case tolerates a
/// slightly old score better than a failed profile read).
#[derive(Clone)]
pub struct WebService {
    /// Service name (e.g. `CreditRating`).
    pub name: String,
    /// The service's namespace (used for request/response elements).
    pub namespace: String,
    operations: HashMap<String, WsOperation>,
    order: Vec<String>,
    access: Rc<RefCell<Access>>,
    /// Bounded (LRU) response store keyed by request fingerprint,
    /// each entry stamped with the [`WebService::write_epoch`] it was
    /// inserted under. Serves two roles: the stale-read fallback when
    /// the service is down (any epoch — staleness is explicit and
    /// counted there), and the read-through cache for repeated
    /// identical requests when the engine's batch layer is on
    /// (current epoch only — see [`WebService::cached`]).
    response_cache: Rc<RefCell<Lru<String, (u64, Sequence)>>>,
    /// Bumped by [`WebService::invalidate_read_through`] whenever a
    /// statement may have written a source: handlers are arbitrary
    /// closures, so a procedure call or submission may change what
    /// the service would answer, and the *fresh* read path must not
    /// keep serving pre-write responses.
    write_epoch: Rc<Cell<u64>>,
}

impl WebService {
    /// An empty service.
    pub fn new(name: &str, namespace: &str) -> WebService {
        WebService {
            name: name.to_string(),
            namespace: namespace.to_string(),
            operations: HashMap::new(),
            order: Vec::new(),
            access: Rc::new(RefCell::new(Access::none())),
            response_cache: Rc::new(RefCell::new(Lru::new(RESPONSE_CACHE_CAPACITY))),
            write_epoch: Rc::new(Cell::new(0)),
        }
    }

    /// Rebound the response cache; evictions this forces are counted
    /// against the source's resilience stats like any other.
    pub fn set_response_cache_capacity(&self, cap: usize) {
        let evicted = self.response_cache.borrow_mut().set_capacity(cap);
        for _ in 0..evicted {
            self.note_eviction();
        }
    }

    /// Number of responses currently cached.
    pub fn response_cache_len(&self) -> usize {
        self.response_cache.borrow().len()
    }

    /// Insert a response stamped with the current write epoch,
    /// counting any forced LRU eviction in
    /// [`crate::ResilienceStats::cache_evictions`].
    fn cache_insert(&self, key: String, resp: Sequence) {
        // The cached trees are served by reference to many
        // evaluations: seal them so the zero-copy constructor path can
        // graft them instead of deep-copying (mutation through a graft
        // copies on write; the cache copy stays pristine).
        for item in resp.iter() {
            if let Item::Node(n) = item {
                n.seal();
            }
        }
        let entry = (self.write_epoch.get(), resp);
        if self.response_cache.borrow_mut().insert(key, entry).is_some() {
            self.note_eviction();
        }
    }

    fn note_eviction(&self) {
        if let Some(res) = &self.access.borrow().resilience {
            res.lock().note_cache_eviction();
        }
    }

    /// A cached response for this exact (operation, request) pair, if
    /// one is still resident *and* no source write has happened since
    /// it was stored — the batch layer's normal-path read-through must
    /// never serve a pre-write response as if it were fresh (entries
    /// from older epochs remain available to the explicit, counted
    /// stale-read degradation path only). Refreshes the entry's LRU
    /// recency on a hit: the read-through path is the reason an entry
    /// is worth keeping.
    pub fn cached(&self, name: &str, request: &Sequence) -> Option<Sequence> {
        let key = request_fingerprint(name, request);
        let epoch = self.write_epoch.get();
        match self.response_cache.borrow_mut().get(&key) {
            Some((e, resp)) if *e == epoch => Some(resp.clone()),
            _ => None,
        }
    }

    /// Invalidate the fresh read-through path: responses cached before
    /// this call stop being served by [`WebService::cached`], though
    /// they stay resident for stale-read degradation. Wired to
    /// [`xqeval::Engine::note_source_write`] at introspection time, so
    /// every statement that may have written a source (procedure call,
    /// update statement, datagraph submission) bumps the epoch — the
    /// cross-call companion of the per-evaluation `ws_memo` clear in
    /// `Env::note_write`.
    pub fn invalidate_read_through(&self) {
        self.write_epoch.set(self.write_epoch.get() + 1);
    }

    /// Install (or replace) the fault-injection / resilience handle
    /// for this source. Shared across clones.
    pub fn set_access(&self, access: Access) {
        *self.access.borrow_mut() = access;
    }

    /// A snapshot of this source's access handle.
    pub fn access(&self) -> Access {
        self.access.borrow().clone()
    }

    /// Register an operation.
    pub fn add_operation(
        &mut self,
        name: &str,
        input_element: &str,
        output_element: &str,
        handler: WsHandler,
    ) {
        self.order.push(name.to_string());
        self.operations.insert(
            name.to_string(),
            WsOperation {
                name: name.to_string(),
                input_element: input_element.to_string(),
                output_element: output_element.to_string(),
                handler,
            },
        );
    }

    /// Operation names in registration order (the "WSDL port type").
    pub fn operation_names(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Look up an operation.
    pub fn operation(&self, name: &str) -> Option<&WsOperation> {
        self.operations.get(name)
    }

    /// Invoke an operation.
    ///
    /// Routed through the [`Access`] handle as a degradable read: when
    /// the service is unavailable (injected outage or open breaker), a
    /// previously cached response for the *same request* is served
    /// instead and counted in
    /// [`crate::ResilienceStats::stale_reads`].
    pub fn call(&self, name: &str, request: &Sequence) -> XdmResult<Sequence> {
        let op = self.operations.get(name).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0005,
                format!("web service {} has no operation {name}", self.name),
            )
        })?;
        let key = request_fingerprint(name, request);
        let access = self.access();
        access.run_read(
            &self.name,
            Op::Call,
            || {
                let resp = (op.handler)(request)?;
                self.cache_insert(key.clone(), resp.clone());
                Ok(resp)
            },
            // Stale-read fallback: any resident response qualifies,
            // whatever its epoch — this path is the explicit, counted
            // degraded read.
            || self.response_cache.borrow().peek(&key).map(|(_, r)| r.clone()),
        )
    }

    /// Invoke an operation once for each request in one coalesced
    /// round trip.
    ///
    /// Duplicate requests (same [`request_fingerprint`]) are issued
    /// only once, in first-occurrence order, and every caller position
    /// receives the shared response. The whole flight runs as a single
    /// resilience transaction ([`Access::run_read_batch`]): one
    /// breaker admission, one fault-injection consult, one
    /// retry/backoff budget — with per-request stale-cache degradation
    /// when the service is ultimately unavailable.
    ///
    /// Returns one response per input request, positionally.
    pub fn call_many(&self, name: &str, requests: &[Sequence]) -> XdmResult<Vec<Sequence>> {
        let op = self.operations.get(name).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0005,
                format!("web service {} has no operation {name}", self.name),
            )
        })?;
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // Coalesce duplicates: unique requests keep first-occurrence
        // order; every input position remembers its unique slot.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of_key: HashMap<String, usize> = HashMap::new();
        let mut slots = Vec::with_capacity(requests.len());
        let mut keys = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let key = request_fingerprint(name, req);
            let slot = *slot_of_key.entry(key.clone()).or_insert_with(|| {
                unique.push(i);
                keys.push(key);
                unique.len() - 1
            });
            slots.push(slot);
        }
        let access = self.access();
        let responses = access.run_read_batch(
            &self.name,
            Op::Call,
            unique.len(),
            |u| {
                let resp = (op.handler)(&requests[unique[u]])?;
                self.cache_insert(keys[u].clone(), resp.clone());
                Ok(resp)
            },
            |u| self.response_cache.borrow().peek(&keys[u]).map(|(_, r)| r.clone()),
        )?;
        Ok(slots.into_iter().map(|s| responses[s].clone()).collect())
    }

    /// How many *unique* handler invocations a batch of requests
    /// would need (used by callers to account for coalescing).
    pub fn unique_requests(name: &str, requests: &[Sequence]) -> usize {
        let mut seen = std::collections::HashSet::new();
        requests.iter().filter(|r| seen.insert(request_fingerprint(name, r))).count()
    }

    /// The paper's credit-rating service (Figures 2/3): takes a
    /// `getCreditRating` request with `lastName` and `ssn` children and
    /// returns a `getCreditRatingResponse` with a numeric `value`.
    /// Deterministic: the rating is a stable hash of the SSN into
    /// 300–850 (the paper's testbed service is unavailable; this
    /// preserves the call shape and a realistic output domain).
    pub fn credit_rating(namespace: &str) -> WebService {
        let mut svc = WebService::new("CreditRating", namespace);
        svc.add_operation(
            "getCreditRating",
            "getCreditRating",
            "getCreditRatingResponse",
            credit_rating_handler(namespace.to_string()),
        );
        svc
    }

    /// [`WebService::credit_rating`] with `delay_us` microseconds of
    /// real per-call latency in the handler — a stand-in for the wire
    /// round trip to the paper's remote rating service. The E14
    /// serving-pool experiment uses this: on a single-core host,
    /// throughput scaling comes from workers *overlapping* these
    /// waits, exactly the middle-tier regime ALDSP served.
    pub fn credit_rating_delayed(namespace: &str, delay_us: u64) -> WebService {
        let inner = credit_rating_handler(namespace.to_string());
        let mut svc = WebService::new("CreditRating", namespace);
        // A throughput benchmark over a cached source measures the
        // cache, not the source: disable the read-through response
        // cache so every request honestly pays the simulated wire
        // latency.
        svc.set_response_cache_capacity(0);
        svc.add_operation(
            "getCreditRating",
            "getCreditRating",
            "getCreditRatingResponse",
            Rc::new(move |request: &Sequence| {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                inner(request)
            }),
        );
        svc
    }
}

/// The shared `getCreditRating` handler body (see
/// [`WebService::credit_rating`] for the semantics).
fn credit_rating_handler(ns2: String) -> WsHandler {
    Rc::new(move |request: &Sequence| {
                let req = request.exactly_one()?;
                let Item::Node(node) = req else {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "getCreditRating expects an element request",
                    ));
                };
                // A malformed request (missing message part) must be
                // rejected loudly — silently scoring an empty SSN
                // would hand every malformed caller the same bogus
                // rating. `aldsp:SRC_BAD_REQUEST` is never retried.
                let child = |local: &str| -> XdmResult<String> {
                    node.children()
                        .iter()
                        .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(local))
                        .map(|c| c.string_value())
                        .filter(|v| !v.is_empty())
                        .ok_or_else(|| {
                            AldspCode::SrcBadRequest.error(format!(
                                "getCreditRating request is missing required \
                                 message part '{local}'"
                            ))
                        })
                };
                let ssn = child("ssn")?;
                let last = child("lastName")?;
                let rating = credit_score(&ssn, &last);
                let resp = NodeHandle::root_element(QName::with_prefix_ns(
                    "cre2",
                    ns2.clone(),
                    "getCreditRatingResponse",
                ));
                let v = NodeHandle::new_element(
                    resp.arena(),
                    QName::with_prefix_ns("cre2", ns2.clone(), "value"),
                );
                v.append_child(&NodeHandle::new_text(resp.arena(), rating.to_string()))?;
                resp.append_child(&v)?;
                Ok(Sequence::one(Item::Node(resp)))
    })
}

/// A stable key for one (operation, request) pair, used by the
/// response cache and for request coalescing in [`WebService::call_many`].
/// String values are enough for the simulator's document-style
/// requests.
pub fn request_fingerprint(op: &str, request: &Sequence) -> String {
    let mut key = String::from(op);
    for item in request.items() {
        key.push('\u{1}');
        key.push_str(&item.string_value());
    }
    key
}

/// Deterministic FICO-range score from SSN + last name.
pub fn credit_score(ssn: &str, last_name: &str) -> u32 {
    let mut h: u32 = 2166136261;
    for b in ssn.bytes().chain(last_name.bytes()) {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    300 + (h % 551)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlparse::parse;

    fn request(ssn: &str, last: &str) -> Sequence {
        let xml = format!(
            "<getCreditRating xmlns=\"urn:cr\">\
             <lastName>{last}</lastName><ssn>{ssn}</ssn></getCreditRating>"
        );
        let doc = parse(&xml).unwrap();
        Sequence::one(Item::Node(doc.children()[0].clone()))
    }

    #[test]
    fn credit_rating_is_deterministic_and_in_range() {
        let svc = WebService::credit_rating("urn:cr");
        let r1 = svc.call("getCreditRating", &request("123-45-6789", "Carey")).unwrap();
        let r2 = svc.call("getCreditRating", &request("123-45-6789", "Carey")).unwrap();
        let v1 = r1.items()[0].string_value();
        assert_eq!(v1, r2.items()[0].string_value());
        let n: u32 = v1.parse().unwrap();
        assert!((300..=850).contains(&n), "rating {n} out of FICO range");
    }

    #[test]
    fn different_inputs_vary() {
        let a = credit_score("111-11-1111", "Smith");
        let b = credit_score("222-22-2222", "Jones");
        assert_ne!(a, b);
    }

    #[test]
    fn response_shape_matches_figure3() {
        // Figure 3 reads $getCreditRatingResponse/cre2:value.
        let svc = WebService::credit_rating("urn:cr");
        let resp = svc.call("getCreditRating", &request("1", "X")).unwrap();
        let Item::Node(n) = &resp.items()[0] else { panic!() };
        assert_eq!(n.name().unwrap().local, "getCreditRatingResponse");
        assert_eq!(n.name().unwrap().ns.as_deref(), Some("urn:cr"));
        let v = &n.children()[0];
        assert_eq!(v.name().unwrap().local, "value");
    }

    #[test]
    fn unknown_operation_is_dsp0005() {
        let svc = WebService::credit_rating("urn:cr");
        let err = svc.call("nosuch", &Sequence::empty()).unwrap_err();
        assert!(err.is(xdm::error::ErrorCode::DSP0005));
    }

    #[test]
    fn malformed_request_raises_bad_request_not_empty() {
        let svc = WebService::credit_rating("urn:cr");
        // Missing <ssn> part entirely.
        let xml = "<getCreditRating xmlns=\"urn:cr\">\
                   <lastName>Carey</lastName></getCreditRating>";
        let doc = parse(xml).unwrap();
        let req = Sequence::one(Item::Node(doc.children()[0].clone()));
        let err = svc.call("getCreditRating", &req).unwrap_err();
        assert_eq!(
            crate::errors::AldspCode::of(&err),
            Some(crate::errors::AldspCode::SrcBadRequest)
        );
        assert!(err.message.contains("ssn"));
        // Empty <ssn> is just as malformed.
        let err = svc.call("getCreditRating", &request("", "Carey")).unwrap_err();
        assert_eq!(
            crate::errors::AldspCode::of(&err),
            Some(crate::errors::AldspCode::SrcBadRequest)
        );
    }

    #[test]
    fn call_many_coalesces_duplicates_positionally() {
        let svc = WebService::credit_rating("urn:cr");
        let handler_calls = Rc::new(std::cell::Cell::new(0u32));
        // Wrap the real handler to count invocations.
        let real = svc.operation("getCreditRating").unwrap().handler.clone();
        let calls = Rc::clone(&handler_calls);
        let mut svc = svc;
        svc.add_operation(
            "getCreditRating",
            "getCreditRating",
            "getCreditRatingResponse",
            Rc::new(move |req| {
                calls.set(calls.get() + 1);
                real(req)
            }),
        );
        let a = request("111-11-1111", "Smith");
        let b = request("222-22-2222", "Jones");
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone()];
        let out = svc.call_many("getCreditRating", &batch).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(handler_calls.get(), 2, "2 unique of 4");
        assert_eq!(out[0].items()[0].string_value(), out[2].items()[0].string_value());
        assert_eq!(out[0].items()[0].string_value(), out[3].items()[0].string_value());
        assert_ne!(out[0].items()[0].string_value(), out[1].items()[0].string_value());
        assert_eq!(WebService::unique_requests("getCreditRating", &batch), 2);
    }

    #[test]
    fn call_many_agrees_with_sequential_calls() {
        let svc = WebService::credit_rating("urn:cr");
        let reqs = vec![request("1", "A"), request("2", "B"), request("1", "A")];
        let batched = svc.call_many("getCreditRating", &reqs).unwrap();
        let sequential: Vec<_> =
            reqs.iter().map(|r| svc.call("getCreditRating", r).unwrap()).collect();
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.items()[0].string_value(), s.items()[0].string_value());
        }
    }

    #[test]
    fn cached_serves_read_through_hits() {
        let svc = WebService::credit_rating("urn:cr");
        let req = request("3", "C");
        assert!(svc.cached("getCreditRating", &req).is_none());
        let fresh = svc.call("getCreditRating", &req).unwrap();
        let hit = svc.cached("getCreditRating", &req).unwrap();
        assert_eq!(fresh.items()[0].string_value(), hit.items()[0].string_value());
    }

    #[test]
    fn response_cache_is_bounded_and_counts_evictions() {
        use crate::fault::FaultPlan;
        use crate::resilience::{Policy, Resilience};
        use parking_lot::Mutex;
        use std::sync::Arc;

        let svc = WebService::credit_rating("urn:cr");
        let res = Arc::new(Mutex::new(Resilience::new(Policy::default())));
        svc.set_access(Access {
            injector: Some(Arc::new(Mutex::new(crate::fault::FaultInjector::new(
                FaultPlan::new(),
            )))),
            resilience: Some(Arc::clone(&res)),
        });
        svc.set_response_cache_capacity(2);
        for (ssn, last) in [("1", "A"), ("2", "B"), ("3", "C"), ("4", "D")] {
            svc.call("getCreditRating", &request(ssn, last)).unwrap();
        }
        assert_eq!(svc.response_cache_len(), 2, "cache stays at capacity");
        assert_eq!(res.lock().stats().cache_evictions, 2, "two forced evictions");
    }

    #[test]
    fn write_invalidates_read_through_but_not_stale_fallback() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultRule};
        use crate::resilience::{Policy, Resilience};
        use parking_lot::Mutex;
        use std::sync::Arc;

        // A handler backed by mutable state: its answer changes after
        // a "write".
        let state = Rc::new(std::cell::Cell::new(1i64));
        let mut svc = WebService::new("Mut", "urn:mut");
        let st = Rc::clone(&state);
        svc.add_operation(
            "val",
            "req",
            "resp",
            Rc::new(move |_req| Ok(Sequence::one(Item::string(st.get().to_string())))),
        );
        let req = Sequence::one(Item::string("k"));
        assert_eq!(svc.call("val", &req).unwrap().items()[0].string_value(), "1");
        assert!(svc.cached("val", &req).is_some(), "read-through warm");

        // The write (reported by the engine's write listeners).
        state.set(2);
        svc.invalidate_read_through();
        assert!(
            svc.cached("val", &req).is_none(),
            "fresh path must not serve the pre-write response"
        );
        assert_eq!(
            svc.call("val", &req).unwrap().items()[0].string_value(),
            "2",
            "the re-issued call observes the post-write answer"
        );
        assert!(svc.cached("val", &req).is_some(), "re-stamped at the new epoch");

        // Old-epoch entries still serve the *explicit* degraded path:
        // bump again, then take the service down — the read answers
        // from the resident (pre-write) entry and is counted stale.
        let res = Arc::new(Mutex::new(Resilience::new(Policy::default())));
        svc.set_access(Access {
            injector: Some(Arc::new(Mutex::new(FaultInjector::new(
                FaultPlan::new()
                    .rule(FaultRule::any_op("Mut", FaultKind::Permanent)),
            )))),
            resilience: Some(Arc::clone(&res)),
        });
        state.set(3);
        svc.invalidate_read_through();
        let r = svc.call("val", &req).unwrap();
        assert_eq!(r.items()[0].string_value(), "2", "outage serves the stale entry");
        assert_eq!(res.lock().stats().stale_reads, 1, "counted as a stale read");
    }

    #[test]
    fn operation_metadata_for_introspection() {
        let svc = WebService::credit_rating("urn:cr");
        assert_eq!(svc.operation_names(), vec!["getCreditRating"]);
        let op = svc.operation("getCreditRating").unwrap();
        assert_eq!(op.input_element, "getCreditRating");
        assert_eq!(op.output_element, "getCreditRatingResponse");
    }
}
