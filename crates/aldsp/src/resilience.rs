//! Resilient source access: retry, timeout, circuit breaking, and
//! graceful degradation — all on a **virtual clock**.
//!
//! ALDSP's published architecture puts a mediation layer between data
//! services and their physical sources; this module reproduces the
//! reliability half of that layer.  Every source call is routed
//! through an [`Access`] handle that composes, in order:
//!
//! 1. **Circuit breaker** (per source): after
//!    [`Policy::breaker_threshold`] consecutive infrastructure
//!    failures the breaker opens and calls fail fast with
//!    `aldsp:SRC_UNAVAILABLE` — no hammering a dead source.  After
//!    [`Policy::breaker_cooldown_ms`] virtual milliseconds the breaker
//!    half-opens and probes; [`Policy::half_open_successes`]
//!    consecutive successes close it again.
//! 2. **Fault injection**: the [`FaultInjector`][crate::fault::FaultInjector]
//!    (if installed) gets first refusal on the call.
//! 3. **Timeout**: injected `SlowResponse` latency exceeding
//!    [`Policy::timeout_ms`] surfaces as `aldsp:SRC_TIMEOUT`.
//! 4. **Retry with exponential backoff**: retryable failures
//!    (`SRC_TRANSIENT`, `SRC_TIMEOUT`) are retried up to
//!    [`Policy::max_retries`] times, advancing the virtual clock by
//!    `base_backoff_ms << attempt` between attempts.  Logical errors
//!    (`err:DSP000x`, `SRC_BAD_REQUEST`) are **never** retried.
//! 5. **Graceful degradation** (reads only): when the call ultimately
//!    fails with `SRC_UNAVAILABLE`, a read may serve a marked-stale
//!    cached result instead of erroring (see [`Access::run_read`]).
//!
//! There are **no real sleeps anywhere**: time is a [`VirtualClock`]
//! (an atomic millisecond counter) so tests of backoff, timeouts and
//! breaker cooldowns are instant and fully deterministic.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use xdm::error::XdmResult;

use crate::errors::{is_retryable, AldspCode};
use crate::fault::{FaultInjector, Injected, Op};

/// Diagnostic prefix stamped on breaker fast-fail errors (the source
/// name follows). [`Access::attempt`] uses it to keep a propagated
/// fast-fail from counting against a *wrapping* source's breaker.
const BREAKER_FAST_FAIL: &str = "breaker-fast-fail: ";

/// A shared, monotonically advancing millisecond counter.
///
/// All "waiting" in the resilience layer — backoff, slow responses,
/// breaker cooldowns — advances this counter instead of sleeping.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }

    /// View this clock as a [`BudgetClock`](xqeval::BudgetClock), so a
    /// request deadline can be expressed on the same timeline the
    /// resilience layer advances — backoff and injected latency then
    /// consume the deadline deterministically, with no real sleeps.
    pub fn budget_clock(&self) -> xqeval::BudgetClock {
        let inner = self.0.clone();
        Arc::new(move || inner.load(Ordering::SeqCst))
    }
}

/// Retry-loop guard: refuse to start a backoff wait the request's
/// remaining deadline cannot cover, and surface cancellation before
/// burning another attempt. With no thread-local budget installed
/// this is a no-op.
fn budget_allows_backoff(backoff_ms: u64) -> XdmResult<()> {
    if let Some(b) = xqeval::budget::current_budget() {
        b.check()?;
        if let Some(rem) = b.remaining_ms() {
            if backoff_ms >= rem {
                return Err(xqeval::BudgetExceeded::Deadline.error(format!(
                    "retry abandoned: {backoff_ms}ms backoff exceeds the \
                     {rem}ms left before the request deadline"
                )));
            }
        }
    }
    Ok(())
}

/// Tunable knobs for retry, timeout, and circuit breaking.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Maximum retries *after* the first attempt (so a call makes at
    /// most `max_retries + 1` attempts).
    pub max_retries: u32,
    /// First backoff in virtual ms; attempt `n` waits `base << n`.
    pub base_backoff_ms: u64,
    /// Per-call latency budget; injected delays beyond this raise
    /// `aldsp:SRC_TIMEOUT`.
    pub timeout_ms: u64,
    /// Consecutive infrastructure failures that open the breaker.
    pub breaker_threshold: u32,
    /// Virtual ms an open breaker waits before half-opening.
    pub breaker_cooldown_ms: u64,
    /// Consecutive half-open successes required to close.
    pub half_open_successes: u32,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            max_retries: 3,
            base_backoff_ms: 10,
            timeout_ms: 1_000,
            breaker_threshold: 5,
            breaker_cooldown_ms: 30_000,
            half_open_successes: 2,
        }
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Failing fast; no calls reach the source until the cooldown
    /// elapses.
    Open,
    /// Probing: calls pass through, successes close the breaker, any
    /// failure re-opens it.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    half_open_successes: u32,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
            half_open_successes: 0,
        }
    }
}

/// One breaker state change, for reporting and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The source whose breaker moved.
    pub source: String,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Virtual time of the transition.
    pub at_ms: u64,
}

impl fmt::Display for BreakerTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={}ms] breaker({}) {} -> {}", self.at_ms, self.source, self.from, self.to)
    }
}

/// Counters the resilience layer keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retries performed (attempts beyond each call's first).
    pub retries: u64,
    /// Calls that failed on `aldsp:SRC_TIMEOUT`.
    pub timeouts: u64,
    /// Reads served from the stale cache while a source was down.
    pub stale_reads: u64,
    /// Calls rejected fast because a breaker was open.
    pub fast_failures: u64,
    /// Entries evicted from a source's bounded response cache (the
    /// stale-read fallback store) to make room for newer responses.
    pub cache_evictions: u64,
}

/// Per-source resilience state: policy + breakers + counters.
#[derive(Debug)]
pub struct Resilience {
    policy: Policy,
    clock: VirtualClock,
    breakers: HashMap<String, Breaker>,
    transitions: Vec<BreakerTransition>,
    stats: ResilienceStats,
}

impl Resilience {
    /// Build with the given policy and a fresh virtual clock.
    pub fn new(policy: Policy) -> Resilience {
        Resilience::with_clock(policy, VirtualClock::new())
    }

    /// Build with an externally shared clock.
    pub fn with_clock(policy: Policy, clock: VirtualClock) -> Resilience {
        Resilience {
            policy,
            clock,
            breakers: HashMap::new(),
            transitions: Vec::new(),
            stats: ResilienceStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The clock this layer advances.
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// Current breaker state for a source (Closed if never touched).
    pub fn breaker_state(&self, source: &str) -> BreakerState {
        self.breakers.get(source).map_or(BreakerState::Closed, |b| b.state)
    }

    /// Every breaker transition so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Activity counters.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Record that a source evicted an entry from its bounded
    /// response cache (called by sources, not by this layer — the
    /// cache lives with the source, the counter lives here so one
    /// stats snapshot covers the whole degradation story).
    pub fn note_cache_eviction(&mut self) {
        self.stats.cache_evictions += 1;
    }

    fn transition(&mut self, source: &str, to: BreakerState) {
        let at_ms = self.clock.now_ms();
        let b = self.breakers.entry(source.to_string()).or_default();
        if b.state == to {
            return;
        }
        let from = b.state;
        b.state = to;
        match to {
            BreakerState::Open => {
                b.opened_at_ms = at_ms;
                b.half_open_successes = 0;
            }
            BreakerState::HalfOpen => b.half_open_successes = 0,
            BreakerState::Closed => b.consecutive_failures = 0,
        }
        self.transitions.push(BreakerTransition { source: source.to_string(), from, to, at_ms });
    }

    /// Gate a call: `Err` means fail fast (breaker open), `Ok` means
    /// the call may proceed (possibly as a half-open probe).
    fn admit(&mut self, source: &str) -> XdmResult<()> {
        let now = self.clock.now_ms();
        let (state, opened_at) = {
            let b = self.breakers.entry(source.to_string()).or_default();
            (b.state, b.opened_at_ms)
        };
        match state {
            BreakerState::Open if now >= opened_at + self.policy.breaker_cooldown_ms => {
                self.transition(source, BreakerState::HalfOpen);
                Ok(())
            }
            BreakerState::Open => {
                self.stats.fast_failures += 1;
                // The diagnostic marks this as a breaker-generated
                // fast-fail (see BREAKER_FAST_FAIL): when the error
                // propagates out through a *wrapping* source call, the
                // outer breaker must not count it — an open breaker on
                // a dependency says nothing about the wrapper's own
                // health, and counting it cascades one trip into
                // fail-fast storms across every layered source.
                Err(AldspCode::SrcUnavailable
                    .error(format!(
                        "circuit breaker open for source '{source}' \
                         (cooling down until t={}ms)",
                        opened_at + self.policy.breaker_cooldown_ms
                    ))
                    .diagnostics(vec![format!("{BREAKER_FAST_FAIL}{source}")]))
            }
            _ => Ok(()),
        }
    }

    /// Record a successful call against a source's breaker.
    fn on_success(&mut self, source: &str) {
        let (state, enough) = {
            let b = self.breakers.entry(source.to_string()).or_default();
            b.consecutive_failures = 0;
            if b.state == BreakerState::HalfOpen {
                b.half_open_successes += 1;
            }
            (b.state, b.half_open_successes >= self.policy.half_open_successes)
        };
        if state == BreakerState::HalfOpen && enough {
            self.transition(source, BreakerState::Closed);
        }
    }

    /// Record an infrastructure failure against a source's breaker.
    fn on_failure(&mut self, source: &str) {
        let (state, tripped) = {
            let b = self.breakers.entry(source.to_string()).or_default();
            b.consecutive_failures += 1;
            (b.state, b.consecutive_failures >= self.policy.breaker_threshold)
        };
        match state {
            BreakerState::HalfOpen => self.transition(source, BreakerState::Open),
            BreakerState::Closed if tripped => self.transition(source, BreakerState::Open),
            _ => {}
        }
    }
}

/// Shared handles threaded into every source: an optional fault
/// injector and an optional resilience policy.
///
/// With neither installed, [`Access::run`] is a direct call — the
/// no-fault hot path adds only an `Option` check (see
/// `bench_resilience`).
#[derive(Debug, Clone, Default)]
pub struct Access {
    /// Fault injector consulted before each source call.
    pub injector: Option<Arc<Mutex<FaultInjector>>>,
    /// Retry/timeout/breaker layer wrapped around each source call.
    pub resilience: Option<Arc<Mutex<Resilience>>>,
}

impl Access {
    /// An `Access` with neither faults nor resilience (pass-through).
    pub fn none() -> Access {
        Access::default()
    }

    /// True when neither layer is installed.
    pub fn is_passthrough(&self) -> bool {
        self.injector.is_none() && self.resilience.is_none()
    }

    /// One *attempt*: breaker admission, fault injection, timeout
    /// accounting, then the real call. Success/failure is recorded on
    /// the breaker.
    fn attempt<T>(
        &self,
        source: &str,
        op: Op,
        batch: Option<usize>,
        call: &mut dyn FnMut() -> XdmResult<T>,
    ) -> XdmResult<T> {
        // A request whose budget is already spent (deadline passed,
        // cancelled) never touches a source: fail before admission so
        // the breaker sees nothing.
        if let Some(b) = xqeval::budget::current_budget() {
            b.check()?;
        }
        if let Some(res) = &self.resilience {
            res.lock().admit(source)?;
        }
        let injected = self.injector.as_ref().and_then(|i| match batch {
            Some(n) => i.lock().on_batch(source, op, n),
            None => i.lock().on_call(source, op),
        });
        let outcome = match injected {
            Some(Injected::Error(e)) => Err(e),
            // A crash verdict reaching an ordinary source call (a rule
            // targeting e.g. Op::Scan instead of a coordinator
            // protocol point) degrades to a hard, non-retryable error:
            // only the 2PC driver's own crash checks unwind without
            // cleanup.
            Some(Injected::Crash) => Err(AldspCode::XaCoordCrash
                .error(format!("injected coordinator crash on {source}/{op}"))),
            Some(Injected::Delay(ms)) => {
                if let Some(res) = &self.resilience {
                    // The effective timeout is the *lesser* of the
                    // policy's and the request's remaining deadline:
                    // there is no point waiting 1000ms for a source
                    // when the client hangs up in 200ms. Remaining
                    // time is read before the latency is charged —
                    // the clamp models the timeout armed at call
                    // start.
                    let budget_remaining = xqeval::budget::current_budget()
                        .and_then(|b| b.remaining_ms());
                    let mut r = res.lock();
                    let effective = match budget_remaining {
                        Some(rem) => r.policy.timeout_ms.min(rem),
                        None => r.policy.timeout_ms,
                    };
                    r.clock.advance(ms);
                    if ms > effective {
                        r.stats.timeouts += 1;
                        let clamped = if effective < r.policy.timeout_ms {
                            " (clamped to the request's remaining deadline)"
                        } else {
                            ""
                        };
                        Err(AldspCode::SrcTimeout.error(format!(
                            "call to '{source}' ({op}) took {ms}ms, \
                             over the {effective}ms budget{clamped}"
                        )))
                    } else {
                        drop(r);
                        call()
                    }
                } else {
                    call()
                }
            }
            Some(Injected::Stall(ms)) => {
                // A stall burns virtual time — and therefore the
                // request's deadline — without tripping the policy
                // timeout. The post-stall budget check is where an
                // expired deadline surfaces.
                if let Some(res) = &self.resilience {
                    res.lock().clock.advance(ms);
                }
                if let Some(b) = xqeval::budget::current_budget() {
                    b.check()?;
                }
                call()
            }
            None => call(),
        };
        if let Some(res) = &self.resilience {
            let mut r = res.lock();
            match &outcome {
                Ok(_) => r.on_success(source),
                // Only infrastructure faults count against the
                // breaker; logical errors (constraint violations, OCC
                // conflicts, bad requests) say nothing about source
                // health. A fast-fail generated by some *other*
                // source's open breaker (nested call, e.g. a service
                // read wrapping a web-service call) is neutral: it
                // carries no information about this source, and
                // counting it would cascade one open breaker into a
                // pool-wide fail-fast storm.
                Err(e) if e.diagnostics.iter().any(|d| d.starts_with(BREAKER_FAST_FAIL)) => {}
                Err(e) => match AldspCode::of(e) {
                    Some(AldspCode::SrcTransient)
                    | Some(AldspCode::SrcTimeout)
                    | Some(AldspCode::SrcUnavailable) => r.on_failure(source),
                    _ => r.on_success(source),
                },
            }
        }
        outcome
    }

    /// Run a source call under fault injection + resilience.
    ///
    /// Retryable failures (`SRC_TRANSIENT`/`SRC_TIMEOUT`) are retried
    /// with exponential virtual-clock backoff up to the policy's
    /// `max_retries`; everything else propagates immediately.
    pub fn run<T>(
        &self,
        source: &str,
        op: Op,
        mut call: impl FnMut() -> XdmResult<T>,
    ) -> XdmResult<T> {
        // Fast path: nothing installed, no bookkeeping.
        if self.is_passthrough() {
            return call();
        }
        let max_retries = self
            .resilience
            .as_ref()
            .map_or(0, |r| r.lock().policy.max_retries);
        let mut attempt_no = 0u32;
        loop {
            match self.attempt(source, op, None, &mut call) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let can_retry = attempt_no < max_retries && is_retryable(&e);
                    if !can_retry {
                        return Err(e);
                    }
                    if let Some(res) = &self.resilience {
                        let mut r = res.lock();
                        let backoff = r.policy.base_backoff_ms << attempt_no;
                        budget_allows_backoff(backoff)?;
                        r.clock.advance(backoff);
                        r.stats.retries += 1;
                    }
                    attempt_no += 1;
                }
            }
        }
    }

    /// Run a *read* with graceful degradation: if the call ultimately
    /// fails with `aldsp:SRC_UNAVAILABLE` (source down or breaker
    /// open) and `stale` yields a cached value, serve that value
    /// instead of failing. The result is "marked stale" by counting it
    /// in [`ResilienceStats::stale_reads`]; writers never degrade.
    pub fn run_read<T>(
        &self,
        source: &str,
        op: Op,
        call: impl FnMut() -> XdmResult<T>,
        stale: impl FnOnce() -> Option<T>,
    ) -> XdmResult<T> {
        match self.run(source, op, call) {
            Ok(v) => Ok(v),
            Err(e) if AldspCode::of(&e) == Some(AldspCode::SrcUnavailable) => {
                if let (Some(res), Some(v)) = (&self.resilience, stale()) {
                    res.lock().stats.stale_reads += 1;
                    Ok(v)
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Run a coalesced *batch* of reads as **one** resilience
    /// transaction: one breaker admission, one injector consult, and
    /// one timeout/backoff budget cover the whole flight instead of
    /// `n` separate ones — this is what makes batched source access
    /// cheaper than `n` calls to [`Access::run_read`].
    ///
    /// `call(i)` performs the `i`-th request of the batch;
    /// infrastructure failures retry the *entire* batch, while
    /// logical errors from an individual item (a malformed request,
    /// say) propagate immediately — the same error the sequential
    /// path would have surfaced first. When the batch ultimately
    /// fails with `aldsp:SRC_UNAVAILABLE`, each item independently
    /// degrades to its stale cached value via `stale(i)` (counted
    /// per item in [`ResilienceStats::stale_reads`]); if any item
    /// has no cached value, the whole batch fails. Items that
    /// succeeded on an earlier attempt of a partially-failed batch
    /// will have populated the source's cache, so their fresh values
    /// are served as "stale" alongside older entries.
    pub fn run_read_batch<T>(
        &self,
        source: &str,
        op: Op,
        n: usize,
        mut call: impl FnMut(usize) -> XdmResult<T>,
        stale: impl Fn(usize) -> Option<T>,
    ) -> XdmResult<Vec<T>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.is_passthrough() {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(call(i)?);
            }
            return Ok(out);
        }
        let max_retries = self
            .resilience
            .as_ref()
            .map_or(0, |r| r.lock().policy.max_retries);
        let mut run_all = || {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(call(i)?);
            }
            Ok(out)
        };
        let mut attempt_no = 0u32;
        loop {
            match self.attempt(source, op, Some(n), &mut run_all) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt_no < max_retries && is_retryable(&e) {
                        if let Some(res) = &self.resilience {
                            let mut r = res.lock();
                            let backoff = r.policy.base_backoff_ms << attempt_no;
                            budget_allows_backoff(backoff)?;
                            r.clock.advance(backoff);
                            r.stats.retries += 1;
                        }
                        attempt_no += 1;
                        continue;
                    }
                    // Final failure: per-item stale degradation.
                    if AldspCode::of(&e) == Some(AldspCode::SrcUnavailable) {
                        if let Some(res) = &self.resilience {
                            let mut out = Vec::with_capacity(n);
                            for i in 0..n {
                                match stale(i) {
                                    Some(v) => out.push(v),
                                    None => return Err(e),
                                }
                            }
                            res.lock().stats.stale_reads += out.len() as u64;
                            return Ok(out);
                        }
                    }
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
mod resilience_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultRule};

    fn access(plan: FaultPlan, policy: Policy) -> Access {
        Access {
            injector: Some(Arc::new(Mutex::new(FaultInjector::new(plan)))),
            resilience: Some(Arc::new(Mutex::new(Resilience::new(policy)))),
        }
    }

    #[test]
    fn transient_faults_below_retry_budget_are_invisible() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::FailNTimes(2))),
            Policy { max_retries: 3, ..Policy::default() },
        );
        let mut real_calls = 0;
        let out = acc.run("DB", Op::Scan, || {
            real_calls += 1;
            Ok(42)
        });
        assert_eq!(out, Ok(42));
        assert_eq!(real_calls, 1, "only the final attempt reached the source");
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().retries, 2);
        // Backoff advanced the virtual clock: 10 + 20.
        assert_eq!(res.clock().now_ms(), 30);
    }

    #[test]
    fn permanent_faults_propagate_without_retry() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Permanent)),
            Policy::default(),
        );
        let err = acc.run("DB", Op::Scan, || Ok(0)).unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
        assert_eq!(acc.resilience.as_ref().unwrap().lock().stats().retries, 0);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_transient() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Transient)),
            Policy { max_retries: 2, ..Policy::default() },
        );
        let err = acc.run("DB", Op::Scan, || Ok(0)).unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcTransient));
        assert_eq!(acc.resilience.as_ref().unwrap().lock().stats().retries, 2);
    }

    #[test]
    fn slow_response_over_budget_times_out_then_retries() {
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("WS", Op::Call, FaultKind::SlowResponse(5_000)).times(1)),
            Policy { timeout_ms: 1_000, ..Policy::default() },
        );
        let out = acc.run("WS", Op::Call, || Ok("pong"));
        assert_eq!(out, Ok("pong"), "timeout is retryable; second attempt is fast");
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().timeouts, 1);
        assert_eq!(res.stats().retries, 1);
    }

    #[test]
    fn slow_response_within_budget_just_adds_latency() {
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("WS", Op::Call, FaultKind::SlowResponse(300)).times(1)),
            Policy { timeout_ms: 1_000, ..Policy::default() },
        );
        assert_eq!(acc.run("WS", Op::Call, || Ok(1)), Ok(1));
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().timeouts, 0);
        assert_eq!(res.clock().now_ms(), 300);
    }

    #[test]
    fn breaker_opens_fails_fast_half_opens_and_closes() {
        let policy = Policy {
            max_retries: 0,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_000,
            half_open_successes: 2,
            ..Policy::default()
        };
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("DB", Op::Scan, FaultKind::Permanent).times(3)),
            policy,
        );
        // Three permanent failures trip the breaker.
        for _ in 0..3 {
            assert!(acc.run("DB", Op::Scan, || Ok(0)).is_err());
        }
        let res = acc.resilience.as_ref().unwrap();
        assert_eq!(res.lock().breaker_state("DB"), BreakerState::Open);

        // While open: fail fast, the source is never called.
        let mut reached = false;
        let err = acc
            .run("DB", Op::Scan, || {
                reached = true;
                Ok(0)
            })
            .unwrap_err();
        assert!(!reached, "open breaker must not call the source");
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
        assert_eq!(res.lock().stats().fast_failures, 1);

        // After the cooldown the breaker half-opens and probes.
        res.lock().clock().advance(1_000);
        assert_eq!(acc.run("DB", Op::Scan, || Ok(7)), Ok(7));
        assert_eq!(res.lock().breaker_state("DB"), BreakerState::HalfOpen);
        assert_eq!(acc.run("DB", Op::Scan, || Ok(8)), Ok(8));
        assert_eq!(res.lock().breaker_state("DB"), BreakerState::Closed);

        let states: Vec<(BreakerState, BreakerState)> =
            res.lock().transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            states,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn half_open_failure_reopens() {
        let policy = Policy {
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown_ms: 100,
            ..Policy::default()
        };
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Permanent)),
            policy,
        );
        assert!(acc.run("DB", Op::Scan, || Ok(0)).is_err());
        let res = acc.resilience.as_ref().unwrap();
        assert_eq!(res.lock().breaker_state("DB"), BreakerState::Open);
        res.lock().clock().advance(100);
        assert!(acc.run("DB", Op::Scan, || Ok(0)).is_err(), "probe also fails");
        assert_eq!(res.lock().breaker_state("DB"), BreakerState::Open, "re-opened");
    }

    #[test]
    fn reads_degrade_to_stale_cache_when_source_down() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Permanent)),
            Policy::default(),
        );
        let out = acc.run_read("DB", Op::Scan, || Ok(vec![0]), || Some(vec![1, 2, 3]));
        assert_eq!(out, Ok(vec![1, 2, 3]));
        assert_eq!(acc.resilience.as_ref().unwrap().lock().stats().stale_reads, 1);

        // Without a cached value the error propagates.
        let err = acc.run_read("DB", Op::Scan, || Ok(vec![0]), || None).unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
    }

    #[test]
    fn logical_errors_bypass_retry_and_breaker() {
        let acc = access(
            FaultPlan::new(),
            Policy { breaker_threshold: 1, ..Policy::default() },
        );
        let mut calls = 0;
        let err = acc
            .run("DB", Op::Execute, || {
                calls += 1;
                Err::<(), _>(xdm::error::XdmError::new(
                    xdm::error::ErrorCode::DSP0003,
                    "pk violation",
                ))
            })
            .unwrap_err();
        assert!(err.is(xdm::error::ErrorCode::DSP0003));
        assert_eq!(calls, 1, "logical errors are not retried");
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.breaker_state("DB"), BreakerState::Closed, "breaker untouched");
    }

    #[test]
    fn passthrough_access_is_direct() {
        let acc = Access::none();
        assert!(acc.is_passthrough());
        assert_eq!(acc.run("X", Op::Get, || Ok(5)), Ok(5));
    }

    #[test]
    fn batch_pays_one_fault_consult_for_the_whole_flight() {
        // A FailNTimes(1) blip fails the first *batch attempt*, not
        // the first item — the retry re-runs all three items and the
        // injector's budget is spent once for the whole flight.
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::FailNTimes(1))),
            Policy::default(),
        );
        let mut item_calls = 0;
        let out = acc.run_read_batch(
            "WS",
            Op::Call,
            3,
            |i| {
                item_calls += 1;
                Ok(i * 10)
            },
            |_| None,
        );
        assert_eq!(out, Ok(vec![0, 10, 20]));
        assert_eq!(item_calls, 3, "items ran only on the successful attempt");
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().retries, 1, "one retry covered all 3 items");
        let mut inj = acc.injector.as_ref().unwrap().lock();
        assert_eq!(inj.events()[0].batch_size, Some(3));
    }

    #[test]
    fn batch_degrades_per_item_to_stale_values() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::Permanent)),
            Policy::default(),
        );
        let out = acc.run_read_batch("WS", Op::Call, 3, |_| Ok(0), |i| Some(100 + i));
        assert_eq!(out, Ok(vec![100, 101, 102]));
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().stale_reads, 3, "counted per item served");
    }

    #[test]
    fn batch_fails_whole_when_any_item_lacks_a_stale_value() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::Permanent)),
            Policy::default(),
        );
        let err = acc
            .run_read_batch("WS", Op::Call, 2, |_| Ok(0), |i| (i == 0).then_some(9))
            .unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
        assert_eq!(acc.resilience.as_ref().unwrap().lock().stats().stale_reads, 0);
    }

    #[test]
    fn batch_propagates_logical_item_errors_without_breaker_penalty() {
        let acc = access(FaultPlan::new(), Policy { breaker_threshold: 1, ..Policy::default() });
        let err = acc
            .run_read_batch(
                "WS",
                Op::Call,
                2,
                |i| {
                    if i == 1 {
                        Err(AldspCode::SrcBadRequest.error("malformed request"))
                    } else {
                        Ok(0)
                    }
                },
                |_| None,
            )
            .unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcBadRequest));
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.breaker_state("WS"), BreakerState::Closed, "breaker untouched");
        assert_eq!(res.stats().retries, 0, "logical errors are not retried");
    }

    #[test]
    fn empty_batch_is_free() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("WS", Op::Call, FaultKind::Permanent)),
            Policy::default(),
        );
        let out = acc.run_read_batch("WS", Op::Call, 0, |_| Ok(0), |_| None);
        assert_eq!(out, Ok(vec![]));
        assert_eq!(acc.injector.as_ref().unwrap().lock().injected_count(), 0);
    }

    fn install_deadline(acc: &Access, ms: u64) -> Arc<xqeval::Budget> {
        let clock = acc.resilience.as_ref().unwrap().lock().clock();
        let budget =
            Arc::new(xqeval::Budget::with_clock(clock.budget_clock()).deadline_in(ms));
        xqeval::budget::set_current_budget(Some(budget.clone()));
        budget
    }

    #[test]
    fn delay_timeout_clamps_to_the_remaining_deadline() {
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("WS", Op::Call, FaultKind::SlowResponse(500)).times(1)),
            Policy { timeout_ms: 1_000, max_retries: 0, ..Policy::default() },
        );
        // 500ms of injected latency is inside the 1000ms policy
        // timeout, but the request only has 200ms of deadline left —
        // the effective timeout clamps down and the call times out.
        install_deadline(&acc, 200);
        let err = acc.run("WS", Op::Call, || Ok(0)).unwrap_err();
        xqeval::budget::set_current_budget(None);
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcTimeout));
        assert!(err.message.contains("clamped"), "message explains the clamp: {err}");
    }

    #[test]
    fn budget_deadline_stops_the_retry_loop_early() {
        let acc = access(
            FaultPlan::new().rule(FaultRule::new("DB", Op::Scan, FaultKind::Transient)),
            Policy { max_retries: 5, base_backoff_ms: 100, ..Policy::default() },
        );
        // First backoff (100ms) fits the 150ms deadline; the second
        // (200ms) does not — the loop gives up with the budget error
        // instead of sleeping past the client's hang-up.
        install_deadline(&acc, 150);
        let err = acc.run("DB", Op::Scan, || Ok(0)).unwrap_err();
        xqeval::budget::set_current_budget(None);
        assert_eq!(AldspCode::of(&err), Some(AldspCode::DeadlineExceeded));
        assert_eq!(acc.resilience.as_ref().unwrap().lock().stats().retries, 1);
    }

    #[test]
    fn stall_burns_the_clock_without_a_timeout() {
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("DB", Op::Scan, FaultKind::Stall(5_000)).times(1)),
            Policy { timeout_ms: 1_000, ..Policy::default() },
        );
        // Without a budget a stall is invisible — even one far past
        // the policy timeout (contrast SlowResponse).
        assert_eq!(acc.run("DB", Op::Scan, || Ok(1)), Ok(1));
        let res = acc.resilience.as_ref().unwrap().lock();
        assert_eq!(res.stats().timeouts, 0);
        assert_eq!(res.clock().now_ms(), 5_000);
    }

    #[test]
    fn stall_past_the_deadline_surfaces_deadline_exceeded() {
        let acc = access(
            FaultPlan::new()
                .rule(FaultRule::new("DB", Op::Scan, FaultKind::Stall(300)).times(1)),
            Policy::default(),
        );
        install_deadline(&acc, 200);
        let mut reached = false;
        let err = acc
            .run("DB", Op::Scan, || {
                reached = true;
                Ok(0)
            })
            .unwrap_err();
        xqeval::budget::set_current_budget(None);
        assert!(!reached, "the stalled call is abandoned at the deadline");
        assert_eq!(AldspCode::of(&err), Some(AldspCode::DeadlineExceeded));
        assert_eq!(
            acc.resilience.as_ref().unwrap().lock().stats().timeouts,
            0,
            "a stall is not a timeout"
        );
    }

    #[test]
    fn cancelled_request_never_reaches_the_source() {
        let acc = access(FaultPlan::new(), Policy::default());
        let budget = Arc::new(xqeval::Budget::unlimited());
        budget.cancel();
        xqeval::budget::set_current_budget(Some(budget));
        let mut reached = false;
        let err = acc
            .run("DB", Op::Scan, || {
                reached = true;
                Ok(0)
            })
            .unwrap_err();
        xqeval::budget::set_current_budget(None);
        assert!(!reached, "cancelled requests must not touch sources");
        assert_eq!(AldspCode::of(&err), Some(AldspCode::Cancelled));
    }

    #[test]
    fn cache_evictions_are_counted() {
        let res = Arc::new(Mutex::new(Resilience::new(Policy::default())));
        res.lock().note_cache_eviction();
        res.lock().note_cache_eviction();
        assert_eq!(res.lock().stats().cache_evictions, 2);
    }
}
