//! Row ↔ XML mapping: "The data service shapes in this case correspond
//! to the natural 'XML view' of a row of each table or view" (§II.A).
//!
//! A row of table `T` becomes `<T><COL1>…</COL1>…</T>` in the
//! service's namespace; NULL columns are omitted. The reverse mapping
//! reads such an element back into typed [`SqlValue`]s for the
//! generated create/update/delete procedures.

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use crate::rel::{Row, SqlValue, TableSchema};

/// The namespace a physical data service for `source`/`table` uses:
/// `ld:<source>/<table>` — the `ld:` dataspace-path convention visible
/// in Figure 4 (`ld:CustomerProfile`).
pub fn service_namespace(source: &str, table: &str) -> String {
    format!("ld:{source}/{table}")
}

/// Render a row as its XML view. Elements are unqualified — Figure 3's
/// paths (`$CUSTOMER/CID`) and shape tests (`element(CUSTOMER)`) use
/// unprefixed names; the service namespace scopes *function* names,
/// not data. The `ns` parameter is retained for API stability and is
/// recorded as metadata only.
pub fn row_to_xml(schema: &TableSchema, ns: &str, row: &Row) -> NodeHandle {
    let _ = ns;
    let row_name = QName::new(schema.name.clone());
    let col_names: Vec<QName> =
        schema.columns.iter().map(|c| QName::new(c.name.clone())).collect();
    row_to_xml_named(&row_name, &col_names, row)
}

/// Row→XML with the QNames already built. The names are identical for
/// every row of a table, so the bulk materializer constructs them once
/// per batch instead of once per row (interned `Symbol`s make each
/// remaining clone a refcount bump).
fn row_to_xml_named(row_name: &QName, col_names: &[QName], row: &Row) -> NodeHandle {
    let elem = NodeHandle::root_element(row_name.clone());
    let arena = elem.arena().clone();
    for (name, val) in col_names.iter().zip(row) {
        if val.is_null() {
            continue;
        }
        let c = NodeHandle::new_element(&arena, name.clone());
        c.append_child(&NodeHandle::new_text(&arena, val.lexical()))
            .expect("text under element");
        elem.append_child(&c).expect("element under element");
    }
    elem
}

/// Render many rows. Per-column QNames are hoisted out of the row loop.
pub fn rows_to_sequence(schema: &TableSchema, ns: &str, rows: &[Row]) -> Sequence {
    let _ = ns;
    let row_name = QName::new(schema.name.clone());
    let col_names: Vec<QName> =
        schema.columns.iter().map(|c| QName::new(c.name.clone())).collect();
    rows.iter()
        .map(|r| Item::Node(row_to_xml_named(&row_name, &col_names, r)))
        .collect()
}

/// Read an XML row view back into typed values. Missing elements map
/// to NULL; namespaces are ignored on children (sources see local
/// names).
pub fn xml_to_row(schema: &TableSchema, node: &NodeHandle) -> XdmResult<Row> {
    if node.name().is_none_or(|q| q.local != schema.name) {
        return Err(XdmError::new(
            ErrorCode::DSP0003,
            format!(
                "expected element {} for table {}, found {:?}",
                schema.name,
                schema.name,
                node.name().map(|q| q.lexical())
            ),
        ));
    }
    let mut row = Vec::with_capacity(schema.columns.len());
    for col in &schema.columns {
        let child = node
            .children()
            .iter()
            .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(&col.name))
            .cloned();
        match child {
            Some(c) => row.push(SqlValue::parse(col.ty, &c.string_value())?),
            None => row.push(SqlValue::Null),
        }
    }
    Ok(row)
}

/// Extract one column's typed value from an XML row view.
pub fn xml_field(
    schema: &TableSchema,
    node: &NodeHandle,
    column: &str,
) -> XdmResult<SqlValue> {
    let col = schema.column(column).ok_or_else(|| {
        XdmError::new(
            ErrorCode::DSP0003,
            format!("no column {column} in {}", schema.name),
        )
    })?;
    let child = node
        .children()
        .iter()
        .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(column))
        .cloned();
    match child {
        Some(c) => SqlValue::parse(col.ty, &c.string_value()),
        None => Ok(SqlValue::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{Column, ColumnType};
    use xmlparse::serialize;

    fn schema() -> TableSchema {
        TableSchema {
            name: "CUSTOMER".into(),
            columns: vec![
                Column::required("CID", ColumnType::Integer),
                Column::required("LAST_NAME", ColumnType::Varchar),
                Column::nullable("SSN", ColumnType::Varchar),
            ],
            primary_key: vec!["CID".into()],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn row_to_xml_shape() {
        let row = vec![
            SqlValue::Int(7),
            SqlValue::Str("Carey".into()),
            SqlValue::Null,
        ];
        let xml = row_to_xml(&schema(), "ld:db1/CUSTOMER", &row);
        let s = serialize(&xml);
        assert!(s.contains("<CUSTOMER>"), "unqualified row element: {s}");
        assert!(s.contains("<CID>7</CID>"));
        assert!(s.contains("<LAST_NAME>Carey</LAST_NAME>"));
        assert!(!s.contains("SSN"), "NULL column must be omitted");
    }

    #[test]
    fn round_trip() {
        let row = vec![
            SqlValue::Int(7),
            SqlValue::Str("Carey".into()),
            SqlValue::Str("123".into()),
        ];
        let xml = row_to_xml(&schema(), "ld:x", &row);
        let back = xml_to_row(&schema(), &xml).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn null_round_trip() {
        let row = vec![SqlValue::Int(7), SqlValue::Str("C".into()), SqlValue::Null];
        let xml = row_to_xml(&schema(), "ld:x", &row);
        let back = xml_to_row(&schema(), &xml).unwrap();
        assert_eq!(back[2], SqlValue::Null);
    }

    #[test]
    fn xml_field_extraction() {
        let row = vec![SqlValue::Int(7), SqlValue::Str("C".into()), SqlValue::Null];
        let xml = row_to_xml(&schema(), "ld:x", &row);
        assert_eq!(xml_field(&schema(), &xml, "CID").unwrap(), SqlValue::Int(7));
        assert_eq!(xml_field(&schema(), &xml, "SSN").unwrap(), SqlValue::Null);
        assert!(xml_field(&schema(), &xml, "NOPE").is_err());
    }

    #[test]
    fn wrong_element_name_rejected() {
        let other = NodeHandle::root_element(QName::new("ORDER"));
        assert!(xml_to_row(&schema(), &other).is_err());
    }

    #[test]
    fn type_errors_surface() {
        let bad = NodeHandle::root_element(QName::new("CUSTOMER"));
        let arena = bad.arena().clone();
        let cid = NodeHandle::new_element(&arena, QName::new("CID"));
        cid.append_child(&NodeHandle::new_text(&arena, "not-a-number")).unwrap();
        bad.append_child(&cid).unwrap();
        assert!(xml_to_row(&schema(), &bad).is_err());
    }
}
