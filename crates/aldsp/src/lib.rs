//! # aldsp — the AquaLogic Data Services Platform substrate
//!
//! Everything the XQSE paper's host platform provides around the
//! language (paper §II), rebuilt in Rust:
//!
//! - [`rel`] — an in-memory relational source simulator: tables with
//!   primary/foreign-key metadata, constraint checking, conditioned
//!   updates, and **XA-style two-phase commit** with prepared-state row
//!   locking (§II.C: "the entire update operation will run as one
//!   atomic transaction across the affected sources");
//! - [`ws`] — a web-service source simulator with WSDL-like operation
//!   metadata (the credit-rating service of Figure 2/3);
//! - [`xmlmap`] — the "natural XML view of a row" used by physical
//!   data services;
//! - [`introspect`] — source introspection: one entity data service
//!   (read + create/update/delete + navigation functions from foreign
//!   keys) per table; one library data service per web service;
//! - [`service`] — the data-service model and the [`service::DataSpace`]
//!   that binds everything into an XQSE engine;
//! - [`sdo`] — Service Data Objects: disconnected data graphs with
//!   change summaries (Figure 4);
//! - [`lineage`] — analysis of a primary read function's XQuery AST to
//!   recover data lineage (which element came from which
//!   table/column);
//! - [`decompose`] — update decomposition: change summary + lineage →
//!   per-source conditioned SQL updates executed under 2PC, with the
//!   three optimistic-concurrency policies and update overrides;
//! - [`journal`] — the crash-consistent half of 2PC: an append-only,
//!   checksummed coordinator log written at every protocol point, and
//!   the [`journal::RecoveryManager`] that resolves in-doubt
//!   transactions (presumed abort) and finishes decided ones after a
//!   coordinator crash;
//! - [`demo`] — the paper's running example (customer profiles across
//!   two relational databases and a credit-rating web service) as a
//!   reusable fixture for tests, examples, and benchmarks.

pub mod ddl;
pub mod decompose;
pub mod demo;
pub mod errors;
pub mod fault;
pub mod introspect;
pub mod journal;
pub mod lineage;
pub mod pool;
pub mod rel;
pub mod resilience;
pub mod sdo;
pub mod service;
pub mod ws;
pub mod wsdl;
pub mod xmlmap;

pub use decompose::{OccPolicy, UpdateOverride};
pub use errors::{AldspCode, ALDSP_ERR_NS};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRule, Injected, Op};
pub use journal::{
    CoordinatorJournal, JournalStats, RecoveryManager, RecoveryStats, XaRecord,
};
pub use rel::{Column, ColumnType, Database, ForeignKey, SqlValue, TableSchema};
pub use resilience::{
    Access, BreakerState, BreakerTransition, Policy, Resilience, ResilienceStats, VirtualClock,
};
pub use sdo::DataGraph;
pub use service::{DataService, DataSpace, MethodKind, ServiceKind};
pub use ws::WebService;

#[cfg(test)]
mod tests;
