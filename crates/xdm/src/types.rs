//! Sequence types and SequenceType matching (XQuery 1.0 §2.5.4).
//!
//! XQSE leans on SequenceType matching in several normative places:
//! block-variable declarations ("the type of the assigned value must
//! match the declared type of the variable according to the Sequence
//! Type matching rules"), assignment statements, procedure return
//! types, and function signatures. This module implements the subset
//! of the type language the paper's programs use:
//!
//! ```text
//! empty-sequence()
//! item()* | ItemType OccurrenceIndicator?
//! ItemType ::= AtomicType | item() | node() | text() | comment()
//!            | processing-instruction() | document-node()
//!            | element() | element(Name) | attribute() | attribute(Name)
//! ```

use std::fmt;

use crate::atomic::AtomicType;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::node::NodeKind;
use crate::qname::QName;
use crate::sequence::{Item, Sequence};

/// Occurrence indicator on a sequence type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly one (no indicator).
    One,
    /// `?` — zero or one.
    ZeroOrOne,
    /// `*` — zero or more.
    ZeroOrMore,
    /// `+` — one or more.
    OneOrMore,
}

impl Occurrence {
    /// Whether a sequence of length `n` satisfies the indicator.
    pub fn admits(&self, n: usize) -> bool {
        match self {
            Occurrence::One => n == 1,
            Occurrence::ZeroOrOne => n <= 1,
            Occurrence::ZeroOrMore => true,
            Occurrence::OneOrMore => n >= 1,
        }
    }

    /// The lexical suffix.
    pub fn suffix(&self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::ZeroOrOne => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        }
    }
}

/// An item type test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ItemType {
    /// `item()` — anything.
    AnyItem,
    /// A named atomic type, e.g. `xs:integer`.
    Atomic(AtomicType),
    /// `node()` — any node.
    AnyNode,
    /// `document-node()`.
    Document,
    /// `element()` or `element(Name)`.
    Element(Option<QName>),
    /// `attribute()` or `attribute(Name)`.
    Attribute(Option<QName>),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()`.
    Pi,
}

impl ItemType {
    /// Does a single item match this item type?
    pub fn matches(&self, item: &Item) -> bool {
        match (self, item) {
            (ItemType::AnyItem, _) => true,
            (ItemType::Atomic(t), Item::Atomic(a)) => a.type_of().derives_from(*t),
            (ItemType::Atomic(_), Item::Node(_)) => false,
            (_, Item::Atomic(_)) => false,
            (ItemType::AnyNode, Item::Node(_)) => true,
            (ItemType::Document, Item::Node(n)) => n.kind() == NodeKind::Document,
            (ItemType::Element(name), Item::Node(n)) => {
                n.kind() == NodeKind::Element
                    && name.as_ref().is_none_or(|q| n.name().as_ref() == Some(q))
            }
            (ItemType::Attribute(name), Item::Node(n)) => {
                n.kind() == NodeKind::Attribute
                    && name.as_ref().is_none_or(|q| n.name().as_ref() == Some(q))
            }
            (ItemType::Text, Item::Node(n)) => n.kind() == NodeKind::Text,
            (ItemType::Comment, Item::Node(n)) => n.kind() == NodeKind::Comment,
            (ItemType::Pi, Item::Node(n)) => n.kind() == NodeKind::Pi,
        }
    }
}

impl fmt::Display for ItemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemType::AnyItem => write!(f, "item()"),
            ItemType::Atomic(t) => write!(f, "{t}"),
            ItemType::AnyNode => write!(f, "node()"),
            ItemType::Document => write!(f, "document-node()"),
            ItemType::Element(None) => write!(f, "element()"),
            ItemType::Element(Some(q)) => write!(f, "element({q})"),
            ItemType::Attribute(None) => write!(f, "attribute()"),
            ItemType::Attribute(Some(q)) => write!(f, "attribute({q})"),
            ItemType::Text => write!(f, "text()"),
            ItemType::Comment => write!(f, "comment()"),
            ItemType::Pi => write!(f, "processing-instruction()"),
        }
    }
}

/// A sequence type: `empty-sequence()` or item type + occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SequenceType {
    /// `empty-sequence()`.
    Empty,
    /// `ItemType OccurrenceIndicator?`.
    Of(ItemType, Occurrence),
}

impl SequenceType {
    /// `item()*` — the implicit type of untyped declarations
    /// (the paper: "the variable's implicit type is item()*").
    pub fn any() -> SequenceType {
        SequenceType::Of(ItemType::AnyItem, Occurrence::ZeroOrMore)
    }

    /// A single atomic value of the given type.
    pub fn one_atomic(t: AtomicType) -> SequenceType {
        SequenceType::Of(ItemType::Atomic(t), Occurrence::One)
    }

    /// Whether the sequence matches this type.
    pub fn matches(&self, seq: &Sequence) -> bool {
        match self {
            SequenceType::Empty => seq.is_empty(),
            SequenceType::Of(item_ty, occ) => {
                occ.admits(seq.len()) && seq.iter().all(|i| item_ty.matches(i))
            }
        }
    }

    /// Check a value against this type, raising `XPTY0004` on
    /// mismatch (the dynamic half of SequenceType matching).
    pub fn check(&self, seq: &Sequence, what: &str) -> XdmResult<()> {
        if self.matches(seq) {
            Ok(())
        } else {
            Err(XdmError::new(
                ErrorCode::XPTY0004,
                format!(
                    "{what}: value of {} item(s) does not match required type {self}",
                    seq.len()
                ),
            ))
        }
    }

    /// The XQuery *function conversion rules* (§3.1.5): when the
    /// expected type is atomic, atomize node items and cast
    /// `xs:untypedAtomic` items to the expected type; then check. Used
    /// at function/procedure argument and return boundaries.
    pub fn convert(&self, seq: Sequence, what: &str) -> XdmResult<Sequence> {
        let target = match self {
            SequenceType::Of(ItemType::Atomic(t), _) => Some(*t),
            _ => None,
        };
        let converted = match target {
            None => seq,
            Some(t) => {
                let mut out = Vec::with_capacity(seq.len());
                for item in seq.into_iter() {
                    let atom = item.atomize();
                    let atom = match atom {
                        crate::atomic::AtomicValue::Untyped(_) => atom.cast_to(t)?,
                        other => other,
                    };
                    out.push(Item::Atomic(atom));
                }
                Sequence::from_items(out)
            }
        };
        self.check(&converted, what)?;
        Ok(converted)
    }
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceType::Empty => write!(f, "empty-sequence()"),
            SequenceType::Of(t, o) => write!(f, "{}{}", t, o.suffix()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicValue;
    use crate::node::NodeHandle;

    fn elem(name: &str) -> Item {
        Item::Node(NodeHandle::root_element(QName::new(name)))
    }

    #[test]
    fn occurrence_admission() {
        assert!(Occurrence::One.admits(1));
        assert!(!Occurrence::One.admits(0));
        assert!(Occurrence::ZeroOrOne.admits(0));
        assert!(!Occurrence::ZeroOrOne.admits(2));
        assert!(Occurrence::ZeroOrMore.admits(100));
        assert!(!Occurrence::OneOrMore.admits(0));
    }

    #[test]
    fn atomic_matching_with_derivation() {
        let t = ItemType::Atomic(AtomicType::Decimal);
        assert!(t.matches(&Item::integer(1))); // integer derives from decimal
        assert!(!ItemType::Atomic(AtomicType::Integer)
            .matches(&Item::Atomic(AtomicValue::Decimal(crate::Decimal::ONE))));
        assert!(!t.matches(&Item::string("x")));
    }

    #[test]
    fn element_name_tests() {
        let any = ItemType::Element(None);
        let named = ItemType::Element(Some(QName::new("Employee")));
        assert!(any.matches(&elem("Employee")));
        assert!(named.matches(&elem("Employee")));
        assert!(!named.matches(&elem("EMP2")));
        assert!(!named.matches(&Item::integer(1)));
    }

    #[test]
    fn namespaced_element_tests() {
        let n = Item::Node(NodeHandle::root_element(QName::with_ns("urn:e", "Employee")));
        let wrong = ItemType::Element(Some(QName::new("Employee")));
        let right = ItemType::Element(Some(QName::with_ns("urn:e", "Employee")));
        assert!(!wrong.matches(&n));
        assert!(right.matches(&n));
    }

    #[test]
    fn sequence_type_matching() {
        let t = SequenceType::Of(ItemType::Atomic(AtomicType::Integer), Occurrence::ZeroOrMore);
        assert!(t.matches(&Sequence::empty()));
        assert!(t.matches(&Sequence::from_items(vec![Item::integer(1), Item::integer(2)])));
        assert!(!t.matches(&Sequence::one(Item::string("x"))));
        assert!(SequenceType::Empty.matches(&Sequence::empty()));
        assert!(!SequenceType::Empty.matches(&Sequence::one(Item::integer(1))));
    }

    #[test]
    fn check_raises_xpty0004() {
        let t = SequenceType::one_atomic(AtomicType::Integer);
        let err = t.check(&Sequence::empty(), "set $x").unwrap_err();
        assert!(err.is(ErrorCode::XPTY0004));
        assert!(err.message.contains("set $x"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SequenceType::any().to_string(), "item()*");
        assert_eq!(
            SequenceType::Of(
                ItemType::Element(Some(QName::new("EMP2"))),
                Occurrence::ZeroOrOne
            )
            .to_string(),
            "element(EMP2)?"
        );
        assert_eq!(SequenceType::Empty.to_string(), "empty-sequence()");
    }
}
