//! Name/string interning and XDM construction counters.
//!
//! [`Symbol`] is an interned string: an `Arc<str>` deduplicated through
//! a process-wide table, so every occurrence of the same name shares
//! one allocation. Cloning a `Symbol` is a refcount bump and equality
//! is (almost always) a pointer comparison — exactly the properties the
//! construction-bound read path needs, where the same element/column
//! names recur thousands of times per query.
//!
//! The table is sharded behind plain `std::sync::Mutex`es and the
//! symbols are `Arc`-backed, so the interner is `Send + Sync`: the
//! serving pool's engine-per-worker threads share one table (names are
//! global facts), while the XDM node store itself stays single-threaded
//! per worker as before.
//!
//! This module also hosts the **thread-local construction counters**
//! (`nodes_built`, `subtrees_grafted`, `deep_copy_nodes_avoided`,
//! `interned_hits`, `graft_cow_materializations`). They are thread-local
//! on purpose: one engine evaluates on one thread (the pool gives each
//! worker a private engine), so per-thread deltas are exactly per-engine
//! deltas, with no atomics on the node-allocation hot path.

use std::borrow::Borrow;
use std::cell::Cell;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned, immutable string. Cheap to clone, cheap to compare.
#[derive(Clone)]
pub struct Symbol(Arc<str>);

const SHARDS: usize = 8;

fn table() -> &'static [Mutex<HashSet<Arc<str>>>; SHARDS] {
    static TABLE: OnceLock<[Mutex<HashSet<Arc<str>>>; SHARDS]> = OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashSet::new())))
}

fn shard_of(s: &str) -> usize {
    // FNV-1a, matching the journal's checksum idiom: cheap and stable.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

impl Symbol {
    /// Intern a string, returning the canonical shared handle.
    pub fn intern(s: &str) -> Symbol {
        let shard = &table()[shard_of(s)];
        let mut set = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = set.get(s) {
            bump(|c| &c.interned_hits);
            return Symbol(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        set.insert(arc.clone());
        Symbol(arc)
    }

    /// The interned string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Interned symbols with equal content share one Arc, so the
        // pointer test settles the common case without touching bytes.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, consistent with Borrow<str>.
        self.0.hash(state)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.as_ref().cmp(other.0.as_ref())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}
impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Default for Symbol {
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}
impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        s.clone()
    }
}
impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.to_string()
    }
}
impl From<&Symbol> for String {
    fn from(s: &Symbol) -> String {
        s.0.to_string()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0.as_ref() == other
    }
}
impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0.as_ref() == *other
    }
}
impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0.as_ref() == other.as_str()
    }
}
impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0.as_ref()
    }
}
impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.0.as_ref()
    }
}
impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.0.as_ref()
    }
}

// ---------------------------------------------------------------------
// Construction counters.
// ---------------------------------------------------------------------

/// A snapshot of this thread's XDM construction counters. Monotonic;
/// consumers diff two snapshots to attribute work to a span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XdmStats {
    /// Node records allocated in any arena (construction + copies).
    pub nodes_built: u64,
    /// Immutable subtrees adopted by reference instead of deep copy.
    pub subtrees_grafted: u64,
    /// Node records a graft saved us from allocating (the deep size of
    /// every grafted subtree).
    pub deep_copy_nodes_avoided: u64,
    /// Intern-table lookups that found an existing symbol.
    pub interned_hits: u64,
    /// Grafts that were later materialized by copy-on-write.
    pub graft_cow_materializations: u64,
}

#[derive(Default)]
struct Counters {
    nodes_built: Cell<u64>,
    subtrees_grafted: Cell<u64>,
    deep_copy_nodes_avoided: Cell<u64>,
    interned_hits: Cell<u64>,
    graft_cow_materializations: Cell<u64>,
}

thread_local! {
    static COUNTERS: Counters = Counters::default();
}

fn bump(f: impl Fn(&Counters) -> &Cell<u64>) {
    COUNTERS.with(|c| {
        let cell = f(c);
        cell.set(cell.get().wrapping_add(1));
    });
}

fn add(f: impl Fn(&Counters) -> &Cell<u64>, n: u64) {
    COUNTERS.with(|c| {
        let cell = f(c);
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Snapshot this thread's construction counters.
pub fn xdm_stats() -> XdmStats {
    COUNTERS.with(|c| XdmStats {
        nodes_built: c.nodes_built.get(),
        subtrees_grafted: c.subtrees_grafted.get(),
        deep_copy_nodes_avoided: c.deep_copy_nodes_avoided.get(),
        interned_hits: c.interned_hits.get(),
        graft_cow_materializations: c.graft_cow_materializations.get(),
    })
}

impl XdmStats {
    /// Counter-wise difference since `base` (wrapping-safe).
    pub fn since(&self, base: &XdmStats) -> XdmStats {
        XdmStats {
            nodes_built: self.nodes_built.wrapping_sub(base.nodes_built),
            subtrees_grafted: self.subtrees_grafted.wrapping_sub(base.subtrees_grafted),
            deep_copy_nodes_avoided: self
                .deep_copy_nodes_avoided
                .wrapping_sub(base.deep_copy_nodes_avoided),
            interned_hits: self.interned_hits.wrapping_sub(base.interned_hits),
            graft_cow_materializations: self
                .graft_cow_materializations
                .wrapping_sub(base.graft_cow_materializations),
        }
    }
}

pub(crate) fn count_node_built() {
    bump(|c| &c.nodes_built);
}

pub(crate) fn count_graft(nodes_avoided: u64) {
    bump(|c| &c.subtrees_grafted);
    add(|c| &c.deep_copy_nodes_avoided, nodes_avoided);
}

pub(crate) fn count_graft_cow() {
    bump(|c| &c.graft_cow_materializations);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_counts_hits() {
        let a = Symbol::intern("intern-test-unique-aaa");
        let before = xdm_stats().interned_hits;
        let b = Symbol::intern("intern-test-unique-aaa");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(xdm_stats().interned_hits > before);
    }

    #[test]
    fn symbol_compares_against_str_types() {
        let s = Symbol::from("hello");
        assert_eq!(s, "hello");
        assert_eq!("hello", s);
        assert_eq!(s, "hello".to_string());
        assert_eq!(s.as_str(), "hello");
        assert_ne!(s, "world");
        let t: String = s.clone().into();
        assert_eq!(t, "hello");
    }

    #[test]
    fn symbol_orders_by_content() {
        let a = Symbol::from("aaa");
        let b = Symbol::from("bbb");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn symbols_work_across_threads() {
        let a = Symbol::from("cross-thread-sym");
        let h = std::thread::spawn(move || {
            let b = Symbol::from("cross-thread-sym");
            assert_eq!(a, b);
            b
        });
        let b = h.join().unwrap();
        assert_eq!(b, "cross-thread-sym");
    }
}
