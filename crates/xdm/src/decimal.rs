//! `xs:decimal` — exact fixed-point decimal arithmetic.
//!
//! XQuery arithmetic on `xs:decimal` (and `xs:integer`, which is derived
//! from it) must be exact, so `f64` is not an option. [`Decimal`] stores
//! an `i128` mantissa and a decimal scale (number of fractional digits),
//! normalizing trailing zeros away so that equality and hashing agree
//! with numeric equality.
//!
//! Division is carried out to [`DIV_SCALE`] fractional digits and then
//! normalized, matching the "implementation-defined precision" latitude
//! of the F&O spec.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{ErrorCode, XdmError, XdmResult};

/// Number of fractional digits carried by division before normalizing.
pub const DIV_SCALE: u32 = 18;

/// An exact decimal number: `mantissa * 10^-scale`.
///
/// ```
/// use xdm::decimal::Decimal;
/// let a = Decimal::parse("0.1").unwrap();
/// let b = Decimal::parse("0.2").unwrap();
/// assert_eq!(a.checked_add(b).unwrap(), Decimal::parse("0.3").unwrap());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Decimal {
    mantissa: i128,
    scale: u32,
}

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal { mantissa: 0, scale: 0 };
    /// One.
    pub const ONE: Decimal = Decimal { mantissa: 1, scale: 0 };

    /// Build from a raw mantissa and scale, normalizing.
    pub fn from_parts(mantissa: i128, scale: u32) -> Decimal {
        Decimal { mantissa, scale }.normalize()
    }

    /// The integer `n` as a decimal.
    pub fn from_i64(n: i64) -> Decimal {
        Decimal { mantissa: n as i128, scale: 0 }
    }

    /// Mantissa accessor (after normalization).
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// Scale accessor (after normalization).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    fn normalize(mut self) -> Decimal {
        if self.mantissa == 0 {
            self.scale = 0;
            return self;
        }
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
        self
    }

    /// Parse the lexical form of `xs:decimal`: optional sign, digits,
    /// optional fraction (`[+-]?\d*\.?\d*` with at least one digit).
    pub fn parse(s: &str) -> XdmResult<Decimal> {
        let s = s.trim();
        let err = || {
            XdmError::new(
                ErrorCode::FORG0001,
                format!("invalid xs:decimal literal: {s:?}"),
            )
        };
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(err());
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(err());
        }
        let mut mantissa: i128 = 0;
        for b in int_part.bytes().chain(frac_part.bytes()) {
            mantissa = mantissa
                .checked_mul(10)
                .and_then(|m| m.checked_add((b - b'0') as i128))
                .ok_or_else(|| {
                    XdmError::new(ErrorCode::FOAR0002, "xs:decimal overflow")
                })?;
        }
        if neg {
            mantissa = -mantissa;
        }
        Ok(Decimal { mantissa, scale: frac_part.len() as u32 }.normalize())
    }

    fn overflow() -> XdmError {
        XdmError::new(ErrorCode::FOAR0002, "xs:decimal overflow")
    }

    /// Rescale both operands to a common scale.
    fn align(a: Decimal, b: Decimal) -> XdmResult<(i128, i128, u32)> {
        let scale = a.scale.max(b.scale);
        let am = a
            .mantissa
            .checked_mul(pow10(scale - a.scale)?)
            .ok_or_else(Self::overflow)?;
        let bm = b
            .mantissa
            .checked_mul(pow10(scale - b.scale)?)
            .ok_or_else(Self::overflow)?;
        Ok((am, bm, scale))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Decimal) -> XdmResult<Decimal> {
        let (a, b, s) = Self::align(self, rhs)?;
        let m = a.checked_add(b).ok_or_else(Self::overflow)?;
        Ok(Decimal { mantissa: m, scale: s }.normalize())
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Decimal) -> XdmResult<Decimal> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Checked negation.
    pub fn checked_neg(self) -> XdmResult<Decimal> {
        let m = self.mantissa.checked_neg().ok_or_else(Self::overflow)?;
        Ok(Decimal { mantissa: m, scale: self.scale })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Decimal) -> XdmResult<Decimal> {
        let m = self
            .mantissa
            .checked_mul(rhs.mantissa)
            .ok_or_else(Self::overflow)?;
        Ok(Decimal { mantissa: m, scale: self.scale + rhs.scale }.normalize())
    }

    /// Checked division, carried to [`DIV_SCALE`] fractional digits.
    pub fn checked_div(self, rhs: Decimal) -> XdmResult<Decimal> {
        if rhs.mantissa == 0 {
            return Err(XdmError::new(ErrorCode::FOAR0001, "division by zero"));
        }
        // (a*10^-as) / (b*10^-bs) = (a/b) * 10^(bs-as); compute a*10^k/b
        // with k chosen so the result has DIV_SCALE fractional digits.
        let target = DIV_SCALE;
        let k = target + rhs.scale;
        let scaled = self
            .mantissa
            .checked_mul(pow10(k)?)
            .ok_or_else(Self::overflow)?;
        let q = scaled / rhs.mantissa;
        Ok(Decimal { mantissa: q, scale: target + self.scale }.normalize())
    }

    /// Integer division (`idiv`): truncation toward zero.
    pub fn checked_idiv(self, rhs: Decimal) -> XdmResult<i64> {
        if rhs.mantissa == 0 {
            return Err(XdmError::new(ErrorCode::FOAR0001, "division by zero"));
        }
        let (a, b, _) = Self::align(self, rhs)?;
        let q = a / b;
        i64::try_from(q).map_err(|_| Self::overflow())
    }

    /// Modulus with the sign of the dividend, per F&O `mod`.
    pub fn checked_mod(self, rhs: Decimal) -> XdmResult<Decimal> {
        if rhs.mantissa == 0 {
            return Err(XdmError::new(ErrorCode::FOAR0001, "division by zero"));
        }
        let (a, b, s) = Self::align(self, rhs)?;
        Ok(Decimal { mantissa: a % b, scale: s }.normalize())
    }

    /// Truncate to an `i64` (toward zero).
    pub fn trunc_i64(self) -> XdmResult<i64> {
        let div = pow10(self.scale)?;
        i64::try_from(self.mantissa / div).map_err(|_| Self::overflow())
    }

    /// Round half-up ("round half to even away from zero" per fn:round)
    /// to an integer-valued decimal.
    pub fn round(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let div = pow10(self.scale).expect("scale bounded by parse");
        let (q, r) = (self.mantissa / div, self.mantissa % div);
        let half = div / 2;
        let m = if r >= half {
            q + 1
        } else if -r > half {
            // fn:round(-2.5) is -2: negative halves round toward +inf.
            q - 1
        } else {
            q
        };
        Decimal { mantissa: m, scale: 0 }
    }

    /// Largest integer not greater than the value.
    pub fn floor(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let div = pow10(self.scale).expect("scale bounded by parse");
        let q = self.mantissa.div_euclid(div);
        Decimal { mantissa: q, scale: 0 }
    }

    /// Smallest integer not less than the value.
    pub fn ceiling(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let div = pow10(self.scale).expect("scale bounded by parse");
        let q = -((-self.mantissa).div_euclid(div));
        Decimal { mantissa: q, scale: 0 }
    }

    /// Absolute value.
    pub fn abs(self) -> Decimal {
        Decimal { mantissa: self.mantissa.abs(), scale: self.scale }
    }

    /// Whether the value is negative.
    pub fn is_negative(&self) -> bool {
        self.mantissa < 0
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// Lossy conversion to `f64` (for promotion to `xs:double`).
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }
}

fn pow10(n: u32) -> XdmResult<i128> {
    10i128
        .checked_pow(n)
        .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "xs:decimal overflow"))
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        match Decimal::align(*self, *other) {
            Ok((a, b, _)) => a.cmp(&b),
            // Alignment can only overflow for astronomically scaled
            // values; fall back to float comparison rather than panic.
            Err(_) => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl Hash for Decimal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Normalized representation is canonical, so field hashing is
        // consistent with Eq.
        self.mantissa.hash(state);
        self.scale.hash(state);
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let neg = self.mantissa < 0;
        let abs = self.mantissa.unsigned_abs();
        let div = 10u128.pow(self.scale);
        let (int, frac) = (abs / div, abs % div);
        let frac_str = format!("{:0width$}", frac, width = self.scale as usize);
        let frac_str = frac_str.trim_end_matches('0');
        if frac_str.is_empty() {
            write!(f, "{}{}", if neg { "-" } else { "" }, int)
        } else {
            write!(f, "{}{}.{}", if neg { "-" } else { "" }, int, frac_str)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "3.14", "-2.50", "007", "0.001", "+5"] {
            let v = d(s);
            let back = d(&v.to_string());
            assert_eq!(v, back, "round trip failed for {s}");
        }
        assert_eq!(d("-2.50").to_string(), "-2.5");
        assert_eq!(d("007").to_string(), "7");
        assert_eq!(d("0.001").to_string(), "0.001");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", ".", "-", "1.2.3", "1e5", "abc", "1,5"] {
            assert!(Decimal::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn parse_accepts_dot_edge_forms() {
        assert_eq!(d(".5"), d("0.5"));
        assert_eq!(d("5."), d("5"));
    }

    #[test]
    fn arithmetic_is_exact() {
        assert_eq!(d("0.1").checked_add(d("0.2")).unwrap(), d("0.3"));
        assert_eq!(d("1").checked_sub(d("0.9")).unwrap(), d("0.1"));
        assert_eq!(d("1.5").checked_mul(d("2")).unwrap(), d("3"));
        assert_eq!(d("1").checked_div(d("8")).unwrap(), d("0.125"));
    }

    #[test]
    fn division_by_zero_raises_foar0001() {
        let e = d("1").checked_div(Decimal::ZERO).unwrap_err();
        assert!(e.is(ErrorCode::FOAR0001));
        let e = d("1").checked_mod(Decimal::ZERO).unwrap_err();
        assert!(e.is(ErrorCode::FOAR0001));
    }

    #[test]
    fn idiv_truncates_toward_zero() {
        assert_eq!(d("7").checked_idiv(d("2")).unwrap(), 3);
        assert_eq!(d("-7").checked_idiv(d("2")).unwrap(), -3);
        assert_eq!(d("7.5").checked_idiv(d("2.5")).unwrap(), 3);
    }

    #[test]
    fn mod_takes_dividend_sign() {
        assert_eq!(d("7").checked_mod(d("3")).unwrap(), d("1"));
        assert_eq!(d("-7").checked_mod(d("3")).unwrap(), d("-1"));
        assert_eq!(d("7.5").checked_mod(d("2")).unwrap(), d("1.5"));
    }

    #[test]
    fn rounding_family() {
        assert_eq!(d("2.5").round(), d("3"));
        assert_eq!(d("-2.5").round(), d("-2"));
        assert_eq!(d("2.4").round(), d("2"));
        assert_eq!(d("-2.6").round(), d("-3"));
        assert_eq!(d("2.5").floor(), d("2"));
        assert_eq!(d("-2.5").floor(), d("-3"));
        assert_eq!(d("2.5").ceiling(), d("3"));
        assert_eq!(d("-2.5").ceiling(), d("-2"));
    }

    #[test]
    fn comparison_is_scale_independent() {
        assert_eq!(d("1.0"), d("1"));
        assert!(d("1.01") > d("1.001"));
        assert!(d("-3") < d("2.5"));
    }

    #[test]
    fn trunc_i64_works() {
        assert_eq!(d("3.99").trunc_i64().unwrap(), 3);
        assert_eq!(d("-3.99").trunc_i64().unwrap(), -3);
    }
}
