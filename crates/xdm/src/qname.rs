//! Qualified names.
//!
//! A [`QName`] is a (namespace URI, local name) pair with an optional
//! lexical prefix. Equality and hashing consider only the *expanded*
//! name — namespace URI and local part — as required by XQuery; the
//! prefix is retained purely for serialization fidelity.
//!
//! All three parts are interned [`Symbol`]s: cloning a QName is three
//! refcount bumps and comparing two QNames is (in the interned common
//! case) two pointer comparisons. The constructors accept anything
//! `Into<Symbol>` — `&str`, `String`, or an existing `Symbol` — so call
//! sites read as before.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::intern::Symbol;

/// Well-known namespace URIs.
pub const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// The `fn:` builtin-function namespace.
pub const FN_NS: &str = "http://www.w3.org/2005/xpath-functions";
/// The `xml:` namespace.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// An expanded qualified name.
#[derive(Debug, Clone)]
pub struct QName {
    /// Lexical prefix, if any (not part of identity).
    pub prefix: Option<Symbol>,
    /// Namespace URI, if any.
    pub ns: Option<Symbol>,
    /// Local part.
    pub local: Symbol,
}

impl QName {
    /// A QName with no namespace.
    pub fn new(local: impl Into<Symbol>) -> Self {
        QName { prefix: None, ns: None, local: local.into() }
    }

    /// A QName in a namespace, without a prefix.
    pub fn with_ns(ns: impl Into<Symbol>, local: impl Into<Symbol>) -> Self {
        QName { prefix: None, ns: Some(ns.into()), local: local.into() }
    }

    /// A QName with both a prefix and a namespace.
    pub fn with_prefix_ns(
        prefix: impl Into<Symbol>,
        ns: impl Into<Symbol>,
        local: impl Into<Symbol>,
    ) -> Self {
        QName {
            prefix: Some(prefix.into()),
            ns: Some(ns.into()),
            local: local.into(),
        }
    }

    /// Parse a lexical QName (`prefix:local` or `local`). The prefix is
    /// recorded but not resolved; resolution against in-scope
    /// namespaces is the parser's/evaluator's job.
    pub fn parse_lexical(s: &str) -> Option<QName> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        match s.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    None
                } else {
                    Some(QName {
                        prefix: Some(Symbol::intern(p)),
                        ns: None,
                        local: Symbol::intern(l),
                    })
                }
            }
            None => Some(QName::new(s)),
        }
    }

    /// The `xs:`-namespace QName with the given local name.
    pub fn xs(local: impl Into<Symbol>) -> Self {
        QName::with_prefix_ns("xs", XS_NS, local)
    }

    /// The `fn:`-namespace QName with the given local name.
    pub fn fn_(local: impl Into<Symbol>) -> Self {
        QName::with_prefix_ns("fn", FN_NS, local)
    }

    /// Expanded-name equality against namespace/local parts. Never
    /// allocates.
    pub fn matches(&self, ns: Option<&str>, local: &str) -> bool {
        self.ns.as_deref() == ns && &*self.local == local
    }

    /// Non-allocating test against a lexical form (`prefix:local` or
    /// bare `local`) — what `lexical() == s` used to spell with a
    /// fresh `String` per call.
    pub fn lexical_is(&self, s: &str) -> bool {
        match (&self.prefix, s.split_once(':')) {
            (Some(p), Some((sp, sl))) => &**p == sp && &*self.local == sl,
            (None, None) => &*self.local == s,
            _ => false,
        }
    }

    /// Non-allocating expanded-name ordering: by namespace URI, then
    /// local part. Equivalent as a sort key to comparing `clark()`
    /// strings (what the old allocating comparison sites built).
    pub fn cmp_expanded(&self, other: &QName) -> std::cmp::Ordering {
        match (&self.ns, &other.ns) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(a), Some(b)) => a.as_str().cmp(b.as_str()),
        }
        .then_with(|| self.local.as_str().cmp(other.local.as_str()))
    }

    /// The lexical form: `prefix:local` if a prefix is present, else
    /// `local`. Allocates — for display paths; comparisons should use
    /// [`QName::lexical_is`] / [`QName::matches`].
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.as_str().to_string(),
        }
    }

    /// Clark notation: `{ns}local`, used in error messages. Allocates —
    /// for display paths; comparisons should use [`QName::cmp_expanded`].
    pub fn clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{}}}{}", ns, self.local),
            None => self.local.as_str().to_string(),
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.ns == other.ns && self.local == other.local
    }
}
impl Eq for QName {}

impl Hash for QName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.ns.hash(state);
        self.local.hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.ns, &self.local).cmp(&(&other.ns, &other.local))
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{}:{}", p, self.local),
            None => f.write_str(&self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(q: &QName) -> u64 {
        let mut h = DefaultHasher::new();
        q.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::with_prefix_ns("a", "urn:x", "name");
        let b = QName::with_prefix_ns("b", "urn:x", "name");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn equality_respects_namespace() {
        let a = QName::with_ns("urn:x", "name");
        let b = QName::with_ns("urn:y", "name");
        let c = QName::new("name");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parse_lexical_forms() {
        let q = QName::parse_lexical("ns1:getProfile").unwrap();
        assert_eq!(q.prefix.as_deref(), Some("ns1"));
        assert_eq!(q.local, "getProfile");
        let q = QName::parse_lexical("CUSTOMER").unwrap();
        assert_eq!(q.prefix, None);
        assert_eq!(q.local, "CUSTOMER");
        assert!(QName::parse_lexical("").is_none());
        assert!(QName::parse_lexical(":x").is_none());
        assert!(QName::parse_lexical("a:").is_none());
        assert!(QName::parse_lexical("a:b:c").is_none());
    }

    #[test]
    fn lexical_and_clark_forms() {
        let q = QName::with_prefix_ns("xs", XS_NS, "integer");
        assert_eq!(q.lexical(), "xs:integer");
        assert_eq!(q.clark(), format!("{{{}}}integer", XS_NS));
        assert_eq!(QName::new("x").clark(), "x");
    }

    #[test]
    fn lexical_is_matches_lexical() {
        let q = QName::with_prefix_ns("xs", XS_NS, "integer");
        assert!(q.lexical_is("xs:integer"));
        assert!(!q.lexical_is("integer"));
        assert!(!q.lexical_is("fn:integer"));
        let b = QName::new("CUSTOMER");
        assert!(b.lexical_is("CUSTOMER"));
        assert!(!b.lexical_is("x:CUSTOMER"));
    }

    #[test]
    fn cmp_expanded_agrees_with_clark_sort() {
        let names = [
            QName::new("b"),
            QName::with_ns("urn:a", "z"),
            QName::new("a"),
            QName::with_ns("urn:b", "a"),
            QName::with_ns("urn:a", "a"),
        ];
        let mut by_fast = names.to_vec();
        by_fast.sort_by(|a, b| a.cmp_expanded(b));
        let mut by_clark = names.to_vec();
        by_clark.sort_by_key(|q| q.clark());
        // Same grouping by expanded name; clark's "{" byte sorts
        // namespaced names after no-namespace names, as does
        // cmp_expanded's None-first rule for ASCII names.
        assert_eq!(by_fast, by_clark);
    }
}
