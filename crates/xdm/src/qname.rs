//! Qualified names.
//!
//! A [`QName`] is a (namespace URI, local name) pair with an optional
//! lexical prefix. Equality and hashing consider only the *expanded*
//! name — namespace URI and local part — as required by XQuery; the
//! prefix is retained purely for serialization fidelity.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Well-known namespace URIs.
pub const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// The `fn:` builtin-function namespace.
pub const FN_NS: &str = "http://www.w3.org/2005/xpath-functions";
/// The `xml:` namespace.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// An expanded qualified name.
#[derive(Debug, Clone)]
pub struct QName {
    /// Lexical prefix, if any (not part of identity).
    pub prefix: Option<String>,
    /// Namespace URI, if any.
    pub ns: Option<String>,
    /// Local part.
    pub local: String,
}

impl QName {
    /// A QName with no namespace.
    pub fn new(local: impl Into<String>) -> Self {
        QName { prefix: None, ns: None, local: local.into() }
    }

    /// A QName in a namespace, without a prefix.
    pub fn with_ns(ns: impl Into<String>, local: impl Into<String>) -> Self {
        QName { prefix: None, ns: Some(ns.into()), local: local.into() }
    }

    /// A QName with both a prefix and a namespace.
    pub fn with_prefix_ns(
        prefix: impl Into<String>,
        ns: impl Into<String>,
        local: impl Into<String>,
    ) -> Self {
        QName {
            prefix: Some(prefix.into()),
            ns: Some(ns.into()),
            local: local.into(),
        }
    }

    /// Parse a lexical QName (`prefix:local` or `local`). The prefix is
    /// recorded but not resolved; resolution against in-scope
    /// namespaces is the parser's/evaluator's job.
    pub fn parse_lexical(s: &str) -> Option<QName> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        match s.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    None
                } else {
                    Some(QName {
                        prefix: Some(p.to_string()),
                        ns: None,
                        local: l.to_string(),
                    })
                }
            }
            None => Some(QName::new(s)),
        }
    }

    /// The `xs:`-namespace QName with the given local name.
    pub fn xs(local: impl Into<String>) -> Self {
        QName::with_prefix_ns("xs", XS_NS, local)
    }

    /// The `fn:`-namespace QName with the given local name.
    pub fn fn_(local: impl Into<String>) -> Self {
        QName::with_prefix_ns("fn", FN_NS, local)
    }

    /// Expanded-name equality against namespace/local parts.
    pub fn matches(&self, ns: Option<&str>, local: &str) -> bool {
        self.ns.as_deref() == ns && self.local == local
    }

    /// The lexical form: `prefix:local` if a prefix is present, else
    /// `local`.
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.clone(),
        }
    }

    /// Clark notation: `{ns}local`, used in error messages.
    pub fn clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{}}}{}", ns, self.local),
            None => self.local.clone(),
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.ns == other.ns && self.local == other.local
    }
}
impl Eq for QName {}

impl Hash for QName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.ns.hash(state);
        self.local.hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.ns, &self.local).cmp(&(&other.ns, &other.local))
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(q: &QName) -> u64 {
        let mut h = DefaultHasher::new();
        q.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::with_prefix_ns("a", "urn:x", "name");
        let b = QName::with_prefix_ns("b", "urn:x", "name");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn equality_respects_namespace() {
        let a = QName::with_ns("urn:x", "name");
        let b = QName::with_ns("urn:y", "name");
        let c = QName::new("name");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parse_lexical_forms() {
        let q = QName::parse_lexical("ns1:getProfile").unwrap();
        assert_eq!(q.prefix.as_deref(), Some("ns1"));
        assert_eq!(q.local, "getProfile");
        let q = QName::parse_lexical("CUSTOMER").unwrap();
        assert_eq!(q.prefix, None);
        assert_eq!(q.local, "CUSTOMER");
        assert!(QName::parse_lexical("").is_none());
        assert!(QName::parse_lexical(":x").is_none());
        assert!(QName::parse_lexical("a:").is_none());
        assert!(QName::parse_lexical("a:b:c").is_none());
    }

    #[test]
    fn lexical_and_clark_forms() {
        let q = QName::with_prefix_ns("xs", XS_NS, "integer");
        assert_eq!(q.lexical(), "xs:integer");
        assert_eq!(q.clark(), format!("{{{}}}integer", XS_NS));
        assert_eq!(QName::new("x").clark(), "x");
    }
}
