//! Minimal `xs:date` / `xs:dateTime` support.
//!
//! ALDSP data services routinely carry `ORDER_DATE`-style columns
//! (Figure 3 of the paper), so the stack needs date values that parse,
//! compare, and serialize. We implement the UTC-or-naive subset: an
//! optional timezone offset is parsed and normalized into the stored
//! instant, which is sufficient for the value comparisons the platform
//! performs (optimistic-concurrency "sameness" checks and query
//! predicates).

use std::fmt;

use crate::error::{ErrorCode, XdmError, XdmResult};

/// An `xs:date` value (year, month, day), timezone-normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year (may be negative for BCE, though unused in practice).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
}

/// An `xs:dateTime` value with second precision, timezone-normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// The calendar date.
    pub date: Date,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn bad(kind: &str, s: &str) -> XdmError {
    XdmError::new(ErrorCode::FORG0001, format!("invalid {kind} literal: {s:?}"))
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> XdmResult<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(XdmError::new(
                ErrorCode::FORG0001,
                format!("invalid date components {year:04}-{month:02}-{day:02}"),
            ));
        }
        Ok(Date { year, month, day })
    }

    /// Parse `YYYY-MM-DD` with an optional trailing timezone
    /// (`Z` or `±hh:mm`), which is accepted and ignored for dates.
    pub fn parse(s: &str) -> XdmResult<Date> {
        let t = s.trim();
        let body = t
            .strip_suffix('Z')
            .unwrap_or_else(|| strip_tz_offset(t));
        let mut parts = body.splitn(3, '-');
        // A leading '-' (negative year) would produce an empty first
        // chunk; negative years are out of scope for ALDSP data.
        let (y, m, d) = match (parts.next(), parts.next(), parts.next()) {
            (Some(y), Some(m), Some(d)) => (y, m, d),
            _ => return Err(bad("xs:date", s)),
        };
        if y.len() < 4 || m.len() != 2 || d.len() != 2 {
            return Err(bad("xs:date", s));
        }
        let year: i32 = y.parse().map_err(|_| bad("xs:date", s))?;
        let month: u8 = m.parse().map_err(|_| bad("xs:date", s))?;
        let day: u8 = d.parse().map_err(|_| bad("xs:date", s))?;
        Date::new(year, month, day).map_err(|_| bad("xs:date", s))
    }

    /// Days since a fixed epoch, for ordering and arithmetic.
    pub fn to_days(&self) -> i64 {
        // Howard Hinnant's civil-from-days inverse.
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146097 + doe - 719468
    }
}

/// Strip a `±hh:mm` timezone suffix if present.
fn strip_tz_offset(s: &str) -> &str {
    if s.len() > 6 {
        let tail = &s[s.len() - 6..];
        let b = tail.as_bytes();
        if (b[0] == b'+' || b[0] == b'-') && b[3] == b':' {
            return &s[..s.len() - 6];
        }
    }
    s
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl DateTime {
    /// Construct a validated date-time.
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> XdmResult<DateTime> {
        let date = Date::new(year, month, day)?;
        if hour > 23 || minute > 59 || second > 59 {
            return Err(XdmError::new(
                ErrorCode::FORG0001,
                format!("invalid time components {hour:02}:{minute:02}:{second:02}"),
            ));
        }
        Ok(DateTime { date, hour, minute, second })
    }

    /// Parse `YYYY-MM-DDThh:mm:ss` with optional fractional seconds
    /// (truncated) and optional timezone (`Z`/`±hh:mm`, normalized).
    pub fn parse(s: &str) -> XdmResult<DateTime> {
        let t = s.trim();
        let (date_s, time_s) = t.split_once('T').ok_or_else(|| bad("xs:dateTime", s))?;
        let date = Date::parse(date_s)?;
        // Find timezone suffix on the time part.
        let (time_body, offset_min) = if let Some(b) = time_s.strip_suffix('Z') {
            (b, 0i32)
        } else if time_s.len() > 6 {
            let tail = &time_s[time_s.len() - 6..];
            let bytes = tail.as_bytes();
            if (bytes[0] == b'+' || bytes[0] == b'-') && bytes[3] == b':' {
                let h: i32 = tail[1..3].parse().map_err(|_| bad("xs:dateTime", s))?;
                let m: i32 = tail[4..6].parse().map_err(|_| bad("xs:dateTime", s))?;
                let sign = if bytes[0] == b'+' { 1 } else { -1 };
                (&time_s[..time_s.len() - 6], sign * (h * 60 + m))
            } else {
                (time_s, 0)
            }
        } else {
            (time_s, 0)
        };
        // Truncate fractional seconds.
        let time_body = time_body.split('.').next().unwrap_or(time_body);
        let mut it = time_body.splitn(3, ':');
        let (h, m, sec) = match (it.next(), it.next(), it.next()) {
            (Some(h), Some(m), Some(sec)) => (h, m, sec),
            _ => return Err(bad("xs:dateTime", s)),
        };
        let hour: u8 = h.parse().map_err(|_| bad("xs:dateTime", s))?;
        let minute: u8 = m.parse().map_err(|_| bad("xs:dateTime", s))?;
        let second: u8 = sec.parse().map_err(|_| bad("xs:dateTime", s))?;
        let dt = DateTime::new(date.year, date.month, date.day, hour, minute, second)
            .map_err(|_| bad("xs:dateTime", s))?;
        Ok(dt.shift_minutes(-offset_min))
    }

    /// Seconds since the epoch used by [`Date::to_days`].
    pub fn to_seconds(&self) -> i64 {
        self.date.to_days() * 86_400
            + self.hour as i64 * 3_600
            + self.minute as i64 * 60
            + self.second as i64
    }

    /// Shift by a number of minutes (used for timezone normalization).
    fn shift_minutes(self, minutes: i32) -> DateTime {
        if minutes == 0 {
            return self;
        }
        let total = self.to_seconds() + minutes as i64 * 60;
        DateTime::from_seconds(total)
    }

    /// Inverse of [`DateTime::to_seconds`].
    pub fn from_seconds(total: i64) -> DateTime {
        let days = total.div_euclid(86_400);
        let rem = total.rem_euclid(86_400);
        // civil_from_days
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (y + if m <= 2 { 1 } else { 0 }) as i32;
        DateTime {
            date: Date { year, month: m, day: d },
            hour: (rem / 3_600) as u8,
            minute: ((rem % 3_600) / 60) as u8,
            second: (rem % 60) as u8,
        }
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse("2007-12-31").unwrap();
        assert_eq!(d, Date::new(2007, 12, 31).unwrap());
        assert_eq!(d.to_string(), "2007-12-31");
        assert_eq!(Date::parse("2007-12-31Z").unwrap(), d);
        assert_eq!(Date::parse("2007-12-31-08:00").unwrap(), d);
    }

    #[test]
    fn date_rejects_invalid() {
        for s in ["2007-13-01", "2007-02-30", "2007-00-10", "07-01-01", "garbage", "2007-1-1"] {
            assert!(Date::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(Date::parse("2008-02-29").is_ok());
        assert!(Date::parse("2007-02-29").is_err());
        assert!(Date::parse("2000-02-29").is_ok());
        assert!(Date::parse("1900-02-29").is_err());
    }

    #[test]
    fn date_ordering_matches_days() {
        let a = Date::parse("2007-12-31").unwrap();
        let b = Date::parse("2008-01-01").unwrap();
        assert!(a < b);
        assert_eq!(b.to_days() - a.to_days(), 1);
    }

    #[test]
    fn datetime_parse_and_normalize() {
        let dt = DateTime::parse("2007-12-07T10:30:00").unwrap();
        assert_eq!(dt.to_string(), "2007-12-07T10:30:00");
        // +02:00 means the instant is 2 hours earlier in UTC.
        let tz = DateTime::parse("2007-12-07T10:30:00+02:00").unwrap();
        assert_eq!(tz.to_string(), "2007-12-07T08:30:00");
        let z = DateTime::parse("2007-12-07T10:30:00Z").unwrap();
        assert_eq!(z, dt);
        // Fractional seconds are truncated.
        let fr = DateTime::parse("2007-12-07T10:30:00.999").unwrap();
        assert_eq!(fr, dt);
    }

    #[test]
    fn datetime_seconds_round_trip() {
        let dt = DateTime::parse("2026-07-06T23:59:59").unwrap();
        assert_eq!(DateTime::from_seconds(dt.to_seconds()), dt);
        let epoch = DateTime::parse("1970-01-01T00:00:00").unwrap();
        assert_eq!(epoch.to_seconds(), 0);
    }

    #[test]
    fn datetime_tz_crossing_midnight() {
        let dt = DateTime::parse("2008-01-01T00:30:00+01:00").unwrap();
        assert_eq!(dt.to_string(), "2007-12-31T23:30:00");
    }
}
