//! Atomic values of the built-in `xs:*` types.
//!
//! The engine supports the subset of the XML Schema atomic types that
//! XQuery 1.0 arithmetic, comparison, and the ALDSP data-service layer
//! exercise: `xs:string`, `xs:boolean`, `xs:integer`, `xs:decimal`,
//! `xs:double`, `xs:QName`, `xs:anyURI`, `xs:date`, `xs:dateTime`, and
//! `xs:untypedAtomic` (the type of data extracted from schemaless
//! nodes). Casting follows XQuery 1.0 §17; comparison follows the `eq`
//! family of value comparisons with numeric promotion and
//! untypedAtomic-to-string coercion.

use std::cmp::Ordering;
use std::fmt;

use crate::datetime::{Date, DateTime};
use crate::decimal::Decimal;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::qname::QName;

/// The dynamic type tag of an atomic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// `xs:untypedAtomic`
    UntypedAtomic,
    /// `xs:string`
    String,
    /// `xs:boolean`
    Boolean,
    /// `xs:integer`
    Integer,
    /// `xs:decimal`
    Decimal,
    /// `xs:double`
    Double,
    /// `xs:QName`
    QName,
    /// `xs:anyURI`
    AnyUri,
    /// `xs:date`
    Date,
    /// `xs:dateTime`
    DateTime,
}

impl AtomicType {
    /// Resolve an `xs:` local name to a type tag.
    pub fn from_local(local: &str) -> Option<AtomicType> {
        Some(match local {
            "untypedAtomic" => AtomicType::UntypedAtomic,
            "string" => AtomicType::String,
            "boolean" => AtomicType::Boolean,
            "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "negativeInteger" | "nonPositiveInteger"
            | "unsignedInt" | "unsignedLong" | "unsignedShort" | "unsignedByte" => {
                AtomicType::Integer
            }
            "decimal" => AtomicType::Decimal,
            "double" | "float" => AtomicType::Double,
            "QName" => AtomicType::QName,
            "anyURI" => AtomicType::AnyUri,
            "date" => AtomicType::Date,
            "dateTime" => AtomicType::DateTime,
            _ => return None,
        })
    }

    /// The canonical `xs:` local name of the type.
    pub fn local(&self) -> &'static str {
        match self {
            AtomicType::UntypedAtomic => "untypedAtomic",
            AtomicType::String => "string",
            AtomicType::Boolean => "boolean",
            AtomicType::Integer => "integer",
            AtomicType::Decimal => "decimal",
            AtomicType::Double => "double",
            AtomicType::QName => "QName",
            AtomicType::AnyUri => "anyURI",
            AtomicType::Date => "date",
            AtomicType::DateTime => "dateTime",
        }
    }

    /// Whether the type is one of the numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            AtomicType::Integer | AtomicType::Decimal | AtomicType::Double
        )
    }

    /// Type-hierarchy subsumption: is `self` derived from (or equal to)
    /// `base`? `xs:integer` is derived from `xs:decimal`.
    pub fn derives_from(&self, base: AtomicType) -> bool {
        *self == base
            || (*self == AtomicType::Integer && base == AtomicType::Decimal)
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xs:{}", self.local())
    }
}

/// An atomic value: the leaf of the XDM item hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// `xs:untypedAtomic` — raw text from schemaless nodes.
    Untyped(String),
    /// `xs:string`
    String(String),
    /// `xs:boolean`
    Boolean(bool),
    /// `xs:integer`
    Integer(i64),
    /// `xs:decimal`
    Decimal(Decimal),
    /// `xs:double`
    Double(f64),
    /// `xs:QName`
    QName(QName),
    /// `xs:anyURI`
    AnyUri(String),
    /// `xs:date`
    Date(Date),
    /// `xs:dateTime`
    DateTime(DateTime),
}

impl AtomicValue {
    /// The dynamic type of the value.
    pub fn type_of(&self) -> AtomicType {
        match self {
            AtomicValue::Untyped(_) => AtomicType::UntypedAtomic,
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::QName(_) => AtomicType::QName,
            AtomicValue::AnyUri(_) => AtomicType::AnyUri,
            AtomicValue::Date(_) => AtomicType::Date,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
        }
    }

    /// The lexical (string) form of the value, per `fn:string`.
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::Untyped(s)
            | AtomicValue::String(s)
            | AtomicValue::AnyUri(s) => s.clone(),
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::QName(q) => q.lexical(),
            AtomicValue::Date(d) => d.to_string(),
            AtomicValue::DateTime(d) => d.to_string(),
        }
    }

    /// Cast to the target type per XQuery 1.0 §17 (subset).
    pub fn cast_to(&self, target: AtomicType) -> XdmResult<AtomicValue> {
        use AtomicType as T;
        use AtomicValue as V;
        if self.type_of() == target {
            return Ok(self.clone());
        }
        let from_lexical = |s: &str| -> XdmResult<AtomicValue> {
            let s = s.trim();
            Ok(match target {
                T::UntypedAtomic => V::Untyped(s.to_string()),
                T::String => V::String(s.to_string()),
                T::AnyUri => V::AnyUri(s.to_string()),
                T::Boolean => match s {
                    "true" | "1" => V::Boolean(true),
                    "false" | "0" => V::Boolean(false),
                    _ => {
                        return Err(XdmError::new(
                            ErrorCode::FORG0001,
                            format!("cannot cast {s:?} to xs:boolean"),
                        ))
                    }
                },
                T::Integer => V::Integer(parse_integer(s)?),
                T::Decimal => V::Decimal(Decimal::parse(s)?),
                T::Double => V::Double(parse_double(s)?),
                T::Date => V::Date(Date::parse(s)?),
                T::DateTime => V::DateTime(DateTime::parse(s)?),
                T::QName => V::QName(QName::parse_lexical(s).ok_or_else(|| {
                    XdmError::new(
                        ErrorCode::FORG0001,
                        format!("cannot cast {s:?} to xs:QName"),
                    )
                })?),
            })
        };
        match self {
            V::Untyped(s) | V::String(s) | V::AnyUri(s) => from_lexical(s),
            V::Boolean(b) => Ok(match target {
                T::String => V::String(b.to_string()),
                T::UntypedAtomic => V::Untyped(b.to_string()),
                T::Integer => V::Integer(*b as i64),
                T::Decimal => V::Decimal(Decimal::from_i64(*b as i64)),
                T::Double => V::Double(*b as i64 as f64),
                _ => return Err(self.cast_err(target)),
            }),
            V::Integer(i) => Ok(match target {
                T::String => V::String(i.to_string()),
                T::UntypedAtomic => V::Untyped(i.to_string()),
                T::Boolean => V::Boolean(*i != 0),
                T::Decimal => V::Decimal(Decimal::from_i64(*i)),
                T::Double => V::Double(*i as f64),
                _ => return Err(self.cast_err(target)),
            }),
            V::Decimal(d) => Ok(match target {
                T::String => V::String(d.to_string()),
                T::UntypedAtomic => V::Untyped(d.to_string()),
                T::Boolean => V::Boolean(!d.is_zero()),
                T::Integer => V::Integer(d.trunc_i64()?),
                T::Double => V::Double(d.to_f64()),
                _ => return Err(self.cast_err(target)),
            }),
            V::Double(d) => Ok(match target {
                T::String => V::String(format_double(*d)),
                T::UntypedAtomic => V::Untyped(format_double(*d)),
                T::Boolean => V::Boolean(*d != 0.0 && !d.is_nan()),
                T::Integer => {
                    if d.is_nan() || d.is_infinite() {
                        return Err(XdmError::new(
                            ErrorCode::FORG0001,
                            "cannot cast NaN/INF to xs:integer",
                        ));
                    }
                    V::Integer(d.trunc() as i64)
                }
                T::Decimal => {
                    if d.is_nan() || d.is_infinite() {
                        return Err(XdmError::new(
                            ErrorCode::FORG0001,
                            "cannot cast NaN/INF to xs:decimal",
                        ));
                    }
                    V::Decimal(Decimal::parse(&format!("{d:.10}"))?)
                }
                _ => return Err(self.cast_err(target)),
            }),
            V::QName(q) => Ok(match target {
                T::String => V::String(q.lexical()),
                T::UntypedAtomic => V::Untyped(q.lexical()),
                _ => return Err(self.cast_err(target)),
            }),
            V::Date(d) => Ok(match target {
                T::String => V::String(d.to_string()),
                T::UntypedAtomic => V::Untyped(d.to_string()),
                T::DateTime => V::DateTime(DateTime::new(d.year, d.month, d.day, 0, 0, 0)?),
                _ => return Err(self.cast_err(target)),
            }),
            V::DateTime(dt) => Ok(match target {
                T::String => V::String(dt.to_string()),
                T::UntypedAtomic => V::Untyped(dt.to_string()),
                T::Date => V::Date(dt.date),
                _ => return Err(self.cast_err(target)),
            }),
        }
    }

    fn cast_err(&self, target: AtomicType) -> XdmError {
        XdmError::new(
            ErrorCode::XPTY0004,
            format!("cannot cast {} to {}", self.type_of(), target),
        )
    }

    /// Value comparison per the XQuery `eq`/`lt` family.
    ///
    /// Numeric operands are promoted to a common type; untypedAtomic is
    /// compared as string against strings and cast to the other
    /// operand's type otherwise. Returns `None` for incomparable types
    /// (the caller raises `XPTY0004`) and for NaN comparisons.
    pub fn value_compare(&self, other: &AtomicValue) -> XdmResult<Option<Ordering>> {
        use AtomicValue as V;
        // untypedAtomic coercion.
        match (self, other) {
            (V::Untyped(a), V::Untyped(b)) => return Ok(Some(a.cmp(b))),
            (V::Untyped(_), _) => {
                let coerced = self.coerce_untyped_like(other)?;
                return coerced.value_compare(other);
            }
            (_, V::Untyped(_)) => {
                let coerced = other.coerce_untyped_like(self)?;
                return self.value_compare(&coerced);
            }
            _ => {}
        }
        let (a, b) = (self, other);
        Ok(match (a, b) {
            (V::String(x), V::String(y)) => Some(x.cmp(y)),
            (V::AnyUri(x), V::AnyUri(y)) => Some(x.cmp(y)),
            (V::String(x), V::AnyUri(y)) | (V::AnyUri(y), V::String(x)) => {
                Some(x.cmp(y))
            }
            (V::Boolean(x), V::Boolean(y)) => Some(x.cmp(y)),
            (V::QName(x), V::QName(y)) => {
                // QNames support only eq/ne.
                if x == y {
                    Some(Ordering::Equal)
                } else {
                    Some(Ordering::Less).filter(|_| false).or(Some(Ordering::Greater))
                }
            }
            (V::Date(x), V::Date(y)) => Some(x.cmp(y)),
            (V::DateTime(x), V::DateTime(y)) => Some(x.cmp(y)),
            _ if a.type_of().is_numeric() && b.type_of().is_numeric() => {
                numeric_compare(a, b)?
            }
            _ => {
                return Err(XdmError::new(
                    ErrorCode::XPTY0004,
                    format!(
                        "cannot compare {} with {}",
                        a.type_of(),
                        b.type_of()
                    ),
                ))
            }
        })
    }

    /// Coerce an untypedAtomic like the other operand's type (string
    /// for strings, double for numerics, target type otherwise).
    fn coerce_untyped_like(&self, other: &AtomicValue) -> XdmResult<AtomicValue> {
        let s = self.string_value();
        let target = match other.type_of() {
            t if t.is_numeric() => AtomicType::Double,
            AtomicType::UntypedAtomic => AtomicType::String,
            t => t,
        };
        AtomicValue::Untyped(s).cast_to(target)
    }

    /// Effective boolean value of a single atomic item.
    pub fn effective_boolean(&self) -> XdmResult<bool> {
        Ok(match self {
            AtomicValue::Boolean(b) => *b,
            AtomicValue::String(s)
            | AtomicValue::Untyped(s)
            | AtomicValue::AnyUri(s) => !s.is_empty(),
            AtomicValue::Integer(i) => *i != 0,
            AtomicValue::Decimal(d) => !d.is_zero(),
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            _ => {
                return Err(XdmError::new(
                    ErrorCode::FORG0006,
                    format!("no effective boolean value for {}", self.type_of()),
                ))
            }
        })
    }
}

/// Parse an `xs:integer` lexical form.
pub fn parse_integer(s: &str) -> XdmResult<i64> {
    let t = s.trim();
    let t2 = t.strip_prefix('+').unwrap_or(t);
    t2.parse::<i64>().map_err(|_| {
        XdmError::new(
            ErrorCode::FORG0001,
            format!("invalid xs:integer literal: {s:?}"),
        )
    })
}

/// Parse an `xs:double` lexical form (accepts `INF`, `-INF`, `NaN`).
pub fn parse_double(s: &str) -> XdmResult<f64> {
    let t = s.trim();
    match t {
        "INF" | "+INF" => return Ok(f64::INFINITY),
        "-INF" => return Ok(f64::NEG_INFINITY),
        "NaN" => return Ok(f64::NAN),
        _ => {}
    }
    t.parse::<f64>().map_err(|_| {
        XdmError::new(
            ErrorCode::FORG0001,
            format!("invalid xs:double literal: {s:?}"),
        )
    })
}

/// Canonical-ish `xs:double` serialization (integral doubles print
/// without an exponent or trailing `.0`, matching common engine
/// behaviour for readability).
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 { "INF".to_string() } else { "-INF".to_string() }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

fn numeric_compare(a: &AtomicValue, b: &AtomicValue) -> XdmResult<Option<Ordering>> {
    use AtomicValue as V;
    Ok(match (a, b) {
        (V::Integer(x), V::Integer(y)) => Some(x.cmp(y)),
        (V::Decimal(x), V::Decimal(y)) => Some(x.cmp(y)),
        (V::Integer(x), V::Decimal(y)) => Some(Decimal::from_i64(*x).cmp(y)),
        (V::Decimal(x), V::Integer(y)) => Some(x.cmp(&Decimal::from_i64(*y))),
        _ => {
            // At least one side is a double: promote both.
            let xf = to_f64(a)?;
            let yf = to_f64(b)?;
            xf.partial_cmp(&yf)
        }
    })
}

/// Numeric promotion to `f64`.
pub fn to_f64(v: &AtomicValue) -> XdmResult<f64> {
    match v {
        AtomicValue::Integer(i) => Ok(*i as f64),
        AtomicValue::Decimal(d) => Ok(d.to_f64()),
        AtomicValue::Double(d) => Ok(*d),
        AtomicValue::Untyped(s) => parse_double(s),
        _ => Err(XdmError::new(
            ErrorCode::XPTY0004,
            format!("{} is not numeric", v.type_of()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(AtomicValue::Integer(1).type_of(), AtomicType::Integer);
        assert_eq!(AtomicType::from_local("int"), Some(AtomicType::Integer));
        assert_eq!(AtomicType::from_local("nosuch"), None);
        assert!(AtomicType::Integer.derives_from(AtomicType::Decimal));
        assert!(!AtomicType::Decimal.derives_from(AtomicType::Integer));
    }

    #[test]
    fn string_values() {
        assert_eq!(AtomicValue::Integer(-5).string_value(), "-5");
        assert_eq!(AtomicValue::Boolean(true).string_value(), "true");
        assert_eq!(AtomicValue::Double(2.0).string_value(), "2");
        assert_eq!(AtomicValue::Double(2.5).string_value(), "2.5");
        assert_eq!(AtomicValue::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(AtomicValue::Double(f64::INFINITY).string_value(), "INF");
    }

    #[test]
    fn casts_from_string() {
        let s = AtomicValue::String("42".into());
        assert_eq!(
            s.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(42)
        );
        let s = AtomicValue::String("true".into());
        assert_eq!(
            s.cast_to(AtomicType::Boolean).unwrap(),
            AtomicValue::Boolean(true)
        );
        let s = AtomicValue::String("1".into());
        assert_eq!(
            s.cast_to(AtomicType::Boolean).unwrap(),
            AtomicValue::Boolean(true)
        );
        assert!(AtomicValue::String("maybe".into())
            .cast_to(AtomicType::Boolean)
            .is_err());
    }

    #[test]
    fn casts_between_numerics() {
        let i = AtomicValue::Integer(7);
        assert_eq!(
            i.cast_to(AtomicType::Double).unwrap(),
            AtomicValue::Double(7.0)
        );
        let d = AtomicValue::Double(7.9);
        assert_eq!(
            d.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(7)
        );
        assert!(AtomicValue::Double(f64::NAN)
            .cast_to(AtomicType::Integer)
            .is_err());
    }

    #[test]
    fn invalid_casts_are_type_errors() {
        let b = AtomicValue::Boolean(true);
        let e = b.cast_to(AtomicType::Date).unwrap_err();
        assert!(e.is(ErrorCode::XPTY0004));
    }

    #[test]
    fn untyped_comparison_coerces() {
        let u = AtomicValue::Untyped("10".into());
        let i = AtomicValue::Integer(9);
        assert_eq!(u.value_compare(&i).unwrap(), Some(Ordering::Greater));
        // Against a string, untyped compares as string: "10" < "9".
        let s = AtomicValue::String("9".into());
        assert_eq!(u.value_compare(&s).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn numeric_promotion_in_comparison() {
        let i = AtomicValue::Integer(1);
        let d = AtomicValue::Double(1.0);
        assert_eq!(i.value_compare(&d).unwrap(), Some(Ordering::Equal));
        let dec = AtomicValue::Decimal(Decimal::parse("1.5").unwrap());
        assert_eq!(i.value_compare(&dec).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn nan_compares_as_none() {
        let n = AtomicValue::Double(f64::NAN);
        assert_eq!(n.value_compare(&AtomicValue::Integer(1)).unwrap(), None);
    }

    #[test]
    fn incomparable_types_raise() {
        let d = AtomicValue::Date(Date::new(2007, 1, 1).unwrap());
        let i = AtomicValue::Integer(1);
        assert!(d.value_compare(&i).is_err());
    }

    #[test]
    fn effective_boolean_values() {
        assert!(AtomicValue::String("x".into()).effective_boolean().unwrap());
        assert!(!AtomicValue::String(String::new()).effective_boolean().unwrap());
        assert!(!AtomicValue::Integer(0).effective_boolean().unwrap());
        assert!(!AtomicValue::Double(f64::NAN).effective_boolean().unwrap());
        assert!(AtomicValue::Date(Date::new(2007, 1, 1).unwrap())
            .effective_boolean()
            .is_err());
    }

    #[test]
    fn qname_compare_eq_only() {
        let a = AtomicValue::QName(QName::new("x"));
        let b = AtomicValue::QName(QName::new("x"));
        let c = AtomicValue::QName(QName::new("y"));
        assert_eq!(a.value_compare(&b).unwrap(), Some(Ordering::Equal));
        assert_ne!(a.value_compare(&c).unwrap(), Some(Ordering::Equal));
    }
}
