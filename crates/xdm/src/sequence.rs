//! Items and sequences.
//!
//! Every XQuery/XQSE value is a [`Sequence`] — a flat, ordered list of
//! [`Item`]s. Sequences never nest: concatenation flattens. This module
//! also implements the two ubiquitous coercions of the language:
//! **atomization** (`fn:data` semantics) and the **effective boolean
//! value** used by `where`, `if`, `while`, and friends.

use std::fmt;
use std::rc::Rc;

use crate::atomic::AtomicValue;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::node::NodeHandle;

/// A single XDM item: an atomic value or a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// An atomic value.
    Atomic(AtomicValue),
    /// A node reference.
    Node(NodeHandle),
}

impl Item {
    /// Convenience: an `xs:integer` item.
    pub fn integer(i: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(i))
    }

    /// Convenience: an `xs:string` item.
    pub fn string(s: impl Into<String>) -> Item {
        Item::Atomic(AtomicValue::String(s.into()))
    }

    /// Convenience: an `xs:boolean` item.
    pub fn boolean(b: bool) -> Item {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    /// Convenience: an `xs:double` item.
    pub fn double(d: f64) -> Item {
        Item::Atomic(AtomicValue::Double(d))
    }

    /// Atomize this item: nodes yield their typed value, atomics pass
    /// through.
    pub fn atomize(&self) -> AtomicValue {
        match self {
            Item::Atomic(a) => a.clone(),
            Item::Node(n) => n.typed_value(),
        }
    }

    /// The string value (`fn:string` on one item).
    pub fn string_value(&self) -> String {
        match self {
            Item::Atomic(a) => a.string_value(),
            Item::Node(n) => n.string_value(),
        }
    }

    /// True if the item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    /// Borrow the node, if the item is one.
    pub fn as_node(&self) -> Option<&NodeHandle> {
        match self {
            Item::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Borrow the atomic value, if the item is one.
    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.string_value())
    }
}

/// A flat, ordered sequence of items — the universal value type.
///
/// Internally reference-counted with copy-on-write mutation: `clone`
/// is O(1) (an `Rc` bump), and the binding-heavy FLWOR/variable paths
/// of the evaluator — which clone sequences on every tuple — share one
/// buffer until somebody actually mutates. [`Sequence::push`] /
/// [`Sequence::extend`] use [`Rc::make_mut`], so a uniquely-owned
/// sequence mutates in place exactly as the plain-`Vec` representation
/// did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sequence {
    items: Rc<Vec<Item>>,
}

impl Sequence {
    /// The empty sequence.
    pub fn empty() -> Sequence {
        Sequence { items: Rc::new(Vec::new()) }
    }

    /// A singleton sequence.
    pub fn one(item: Item) -> Sequence {
        Sequence { items: Rc::new(vec![item]) }
    }

    /// Build from a vector of items.
    pub fn from_items(items: Vec<Item>) -> Sequence {
        Sequence { items: Rc::new(items) }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Slice of the items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Consume into the underlying vector (no copy when this handle is
    /// the sole owner).
    pub fn into_items(self) -> Vec<Item> {
        Rc::try_unwrap(self.items).unwrap_or_else(|rc| (*rc).clone())
    }

    /// Iterate over items.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.items.iter()
    }

    /// Append another sequence (flattening concatenation).
    pub fn extend(&mut self, other: Sequence) {
        if self.items.is_empty() {
            // Adopt the other buffer wholesale — the common "start
            // from empty, append one result" accumulation pattern
            // stays allocation-free.
            self.items = other.items;
            return;
        }
        if other.items.is_empty() {
            return;
        }
        Rc::make_mut(&mut self.items).extend(other.into_items());
    }

    /// Push a single item.
    pub fn push(&mut self, item: Item) {
        Rc::make_mut(&mut self.items).push(item);
    }

    /// Concatenate two sequences.
    pub fn concat(mut self, other: Sequence) -> Sequence {
        self.extend(other);
        self
    }

    /// Atomize the whole sequence (`fn:data`).
    pub fn atomized(&self) -> Vec<AtomicValue> {
        self.items.iter().map(Item::atomize).collect()
    }

    /// The effective boolean value per XQuery 1.0 §2.4.3:
    /// - empty → false
    /// - first item a node → true
    /// - singleton atomic → type-specific truth
    /// - otherwise → error FORG0006
    pub fn effective_boolean(&self) -> XdmResult<bool> {
        match self.items.as_slice() {
            [] => Ok(false),
            [Item::Node(_), ..] => Ok(true),
            [Item::Atomic(a)] => a.effective_boolean(),
            _ => Err(XdmError::new(
                ErrorCode::FORG0006,
                "effective boolean value of multi-item atomic sequence",
            )),
        }
    }

    /// `fn:string` applied to the sequence: empty → "", singleton →
    /// its string value, otherwise a type error.
    pub fn string_value(&self) -> XdmResult<String> {
        match self.items.as_slice() {
            [] => Ok(String::new()),
            [it] => Ok(it.string_value()),
            _ => Err(XdmError::new(
                ErrorCode::XPTY0004,
                "fn:string on a sequence of more than one item",
            )),
        }
    }

    /// Require zero-or-one items, returning the optional item.
    pub fn zero_or_one(&self) -> XdmResult<Option<&Item>> {
        match self.items.as_slice() {
            [] => Ok(None),
            [it] => Ok(Some(it)),
            _ => Err(XdmError::new(
                ErrorCode::FORG0003,
                "expected at most one item",
            )),
        }
    }

    /// Require exactly one item.
    pub fn exactly_one(&self) -> XdmResult<&Item> {
        match self.items.as_slice() {
            [it] => Ok(it),
            other => Err(XdmError::new(
                ErrorCode::FORG0005,
                format!("expected exactly one item, got {}", other.len()),
            )),
        }
    }

    /// Sort into document order and remove duplicate node identities
    /// (required after `/` steps and `|` unions). Errors if the
    /// sequence contains non-node items.
    pub fn document_order_dedup(self) -> XdmResult<Sequence> {
        let mut nodes: Vec<NodeHandle> = Vec::with_capacity(self.items.len());
        for it in self.into_items() {
            match it {
                Item::Node(n) => nodes.push(n),
                Item::Atomic(a) => {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        format!(
                            "path/union result must be nodes, found {}",
                            a.type_of()
                        ),
                    ))
                }
            }
        }
        nodes.sort_by(|a, b| a.document_order(b));
        nodes.dedup();
        Ok(Sequence::from_items(
            nodes.into_iter().map(Item::Node).collect(),
        ))
    }
}

impl From<Item> for Sequence {
    fn from(item: Item) -> Sequence {
        Sequence::one(item)
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Sequence {
        Sequence::from_items(items)
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Sequence {
        Sequence::from_items(iter.into_iter().collect())
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_items().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::QName;

    #[test]
    fn constructors_and_flattening() {
        let mut s = Sequence::one(Item::integer(1));
        s.extend(Sequence::from_items(vec![Item::integer(2), Item::integer(3)]));
        assert_eq!(s.len(), 3);
        let t = Sequence::one(Item::integer(0)).concat(s.clone());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!Sequence::empty().effective_boolean().unwrap());
        assert!(Sequence::one(Item::boolean(true)).effective_boolean().unwrap());
        assert!(!Sequence::one(Item::boolean(false)).effective_boolean().unwrap());
        assert!(Sequence::one(Item::string("x")).effective_boolean().unwrap());
        assert!(!Sequence::one(Item::integer(0)).effective_boolean().unwrap());
        // A node in first position → true regardless of the rest.
        let n = NodeHandle::root_element(QName::new("e"));
        let s = Sequence::from_items(vec![Item::Node(n), Item::integer(0)]);
        assert!(s.effective_boolean().unwrap());
        // Two atomics → error.
        let s = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(s.effective_boolean().is_err());
    }

    #[test]
    fn cardinality_helpers() {
        let empty = Sequence::empty();
        assert!(empty.zero_or_one().unwrap().is_none());
        assert!(empty.exactly_one().is_err());
        let one = Sequence::one(Item::integer(1));
        assert!(one.zero_or_one().unwrap().is_some());
        assert!(one.exactly_one().is_ok());
        let two = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(two.zero_or_one().is_err());
        assert!(two.exactly_one().is_err());
    }

    #[test]
    fn atomization_of_nodes() {
        let e = NodeHandle::root_element(QName::new("e"));
        e.append_child(&NodeHandle::new_text(e.arena(), "42")).unwrap();
        let s = Sequence::one(Item::Node(e));
        let atoms = s.atomized();
        assert_eq!(atoms, vec![AtomicValue::Untyped("42".into())]);
    }

    #[test]
    fn document_order_dedup_sorts_and_dedups() {
        let root = NodeHandle::root_element(QName::new("r"));
        let arena = root.arena().clone();
        let a = NodeHandle::new_element(&arena, QName::new("a"));
        let b = NodeHandle::new_element(&arena, QName::new("b"));
        root.append_child(&a).unwrap();
        root.append_child(&b).unwrap();
        let s = Sequence::from_items(vec![
            Item::Node(b.clone()),
            Item::Node(a.clone()),
            Item::Node(b.clone()),
        ]);
        let sorted = s.document_order_dedup().unwrap();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted.items()[0], Item::Node(a));
        assert_eq!(sorted.items()[1], Item::Node(b));
    }

    #[test]
    fn document_order_dedup_rejects_atomics() {
        let s = Sequence::one(Item::integer(1));
        assert!(s.document_order_dedup().is_err());
    }

    #[test]
    fn string_value_rules() {
        assert_eq!(Sequence::empty().string_value().unwrap(), "");
        assert_eq!(Sequence::one(Item::integer(5)).string_value().unwrap(), "5");
        let two = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(two.string_value().is_err());
    }
}
