//! Items and sequences.
//!
//! Every XQuery/XQSE value is a [`Sequence`] — a flat, ordered list of
//! [`Item`]s. Sequences never nest: concatenation flattens. This module
//! also implements the two ubiquitous coercions of the language:
//! **atomization** (`fn:data` semantics) and the **effective boolean
//! value** used by `where`, `if`, `while`, and friends.

use std::cell::{OnceCell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::atomic::AtomicValue;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::node::NodeHandle;

/// A single XDM item: an atomic value or a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// An atomic value.
    Atomic(AtomicValue),
    /// A node reference.
    Node(NodeHandle),
}

impl Item {
    /// Convenience: an `xs:integer` item.
    pub fn integer(i: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(i))
    }

    /// Convenience: an `xs:string` item.
    pub fn string(s: impl Into<String>) -> Item {
        Item::Atomic(AtomicValue::String(s.into()))
    }

    /// Convenience: an `xs:boolean` item.
    pub fn boolean(b: bool) -> Item {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    /// Convenience: an `xs:double` item.
    pub fn double(d: f64) -> Item {
        Item::Atomic(AtomicValue::Double(d))
    }

    /// Atomize this item: nodes yield their typed value, atomics pass
    /// through.
    pub fn atomize(&self) -> AtomicValue {
        match self {
            Item::Atomic(a) => a.clone(),
            Item::Node(n) => n.typed_value(),
        }
    }

    /// The string value (`fn:string` on one item).
    pub fn string_value(&self) -> String {
        match self {
            Item::Atomic(a) => a.string_value(),
            Item::Node(n) => n.string_value(),
        }
    }

    /// True if the item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    /// Borrow the node, if the item is one.
    pub fn as_node(&self) -> Option<&NodeHandle> {
        match self {
            Item::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Borrow the atomic value, if the item is one.
    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.string_value())
    }
}

/// A pull source backing a lazy [`Sequence`]: yields the next item,
/// `Ok(None)` once exhausted, or a (terminal) error. Implemented by
/// the evaluator's streaming FLWOR pipeline; the data model only
/// defines the contract.
///
/// A source is pulled at most once per position: the owning
/// [`Sequence`] memoizes every pulled item, so `Rc`-shared clones all
/// observe one consistent prefix regardless of who pulled it.
pub trait ItemSource {
    /// Produce the next item, `None` at end of stream.
    fn next_item(&mut self) -> XdmResult<Option<Item>>;
}

/// Mutable pull state of a lazy sequence.
struct LazyState {
    /// Everything pulled so far (the memoized prefix).
    pulled: Vec<Item>,
    /// The live producer; `None` once fused (exhausted or errored).
    source: Option<Box<dyn ItemSource>>,
    /// Sticky terminal error: once a pull fails, every later pull past
    /// the valid prefix reports the same error.
    error: Option<XdmError>,
}

/// Shared interior of a lazy [`Sequence`].
struct LazySeq {
    state: RefCell<LazyState>,
    /// Set exactly once, when the stream has been fully drained (or
    /// quietly forced): the complete item buffer. Lets the infallible
    /// slice accessors hand out `&[Item]` without re-entering the
    /// `RefCell`.
    forced: OnceCell<Rc<Vec<Item>>>,
}

impl LazySeq {
    fn new(source: Box<dyn ItemSource>) -> LazySeq {
        LazySeq {
            state: RefCell::new(LazyState {
                pulled: Vec::new(),
                source: Some(source),
                error: None,
            }),
            forced: OnceCell::new(),
        }
    }

    /// Pull until at least `n` items are buffered, the stream ends, or
    /// it errors. Returns how many items are actually available.
    fn pull_to(&self, n: usize) -> XdmResult<usize> {
        let mut st = self.state.borrow_mut();
        while st.pulled.len() < n {
            let Some(src) = st.source.as_mut() else {
                // Fused. Asking past the valid prefix re-raises the
                // sticky error, if any.
                return match &st.error {
                    Some(e) => Err(e.clone()),
                    None => Ok(st.pulled.len()),
                };
            };
            match src.next_item() {
                Ok(Some(item)) => st.pulled.push(item),
                Ok(None) => {
                    st.source = None; // fuse: drop the producer
                    return Ok(st.pulled.len());
                }
                Err(e) => {
                    st.source = None;
                    st.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(st.pulled.len())
    }

    /// Drain completely, then return the full buffer (errors
    /// propagate; the valid prefix stays memoized either way).
    fn force(&self) -> XdmResult<Rc<Vec<Item>>> {
        if let Some(v) = self.forced.get() {
            return Ok(v.clone());
        }
        self.pull_to(usize::MAX)?;
        Ok(self.forced_quiet().clone())
    }

    /// The full buffer, swallowing a terminal error (the valid prefix
    /// is returned instead). Only the legacy infallible accessors use
    /// this; the evaluator's choke points guarantee they never see an
    /// un-forced lazy sequence, so the truncation is unobservable in
    /// practice — but it must not panic.
    fn forced_quiet(&self) -> &Rc<Vec<Item>> {
        if self.forced.get().is_none() {
            let _ = self.pull_to(usize::MAX);
            let snapshot = Rc::new(self.state.borrow().pulled.clone());
            let _ = self.forced.set(snapshot);
        }
        self.forced
            .get()
            .unwrap_or_else(|| unreachable!("forced cell was just populated"))
    }

    /// True once the producer is gone (exhausted or errored).
    fn is_fused(&self) -> bool {
        self.state.borrow().source.is_none()
    }
}

impl fmt::Debug for LazySeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("LazySeq")
            .field("pulled", &st.pulled.len())
            .field("fused", &st.source.is_none())
            .field("error", &st.error)
            .finish()
    }
}

/// Internal representation: a materialized buffer, or a shared lazy
/// pull stream.
#[derive(Debug, Clone)]
enum Repr {
    Eager(Rc<Vec<Item>>),
    Lazy(Rc<LazySeq>),
}

/// A flat, ordered sequence of items — the universal value type.
///
/// Internally reference-counted with copy-on-write mutation: `clone`
/// is O(1) (an `Rc` bump), and the binding-heavy FLWOR/variable paths
/// of the evaluator — which clone sequences on every tuple — share one
/// buffer until somebody actually mutates. [`Sequence::push`] /
/// [`Sequence::extend`] use [`Rc::make_mut`], so a uniquely-owned
/// sequence mutates in place exactly as the plain-`Vec` representation
/// did.
///
/// ## Lazy sequences
///
/// A sequence may also be **lazy** ([`Sequence::lazy`]): backed by a
/// pull-based [`ItemSource`] instead of a buffer. Pulled items are
/// memoized, so `Rc`-shared clones observe one consistent stream; the
/// source is *fused* (dropped) once it ends or errors, and a terminal
/// error is sticky. Consumers that understand laziness use the
/// fallible API ([`Sequence::try_item`], [`Sequence::try_is_empty`],
/// [`Sequence::into_forced`]) and can stop pulling early; the legacy
/// infallible accessors quietly force the whole stream (the
/// evaluator's choke points guarantee they never observe an un-forced
/// lazy value, see `xqeval::eval`).
#[derive(Debug, Clone)]
pub struct Sequence {
    repr: Repr,
}

impl Default for Sequence {
    fn default() -> Sequence {
        Sequence::empty()
    }
}

impl PartialEq for Sequence {
    fn eq(&self, other: &Sequence) -> bool {
        self.items() == other.items()
    }
}

impl Sequence {
    /// The empty sequence.
    pub fn empty() -> Sequence {
        Sequence { repr: Repr::Eager(Rc::new(Vec::new())) }
    }

    /// A singleton sequence.
    pub fn one(item: Item) -> Sequence {
        Sequence { repr: Repr::Eager(Rc::new(vec![item])) }
    }

    /// Build from a vector of items.
    pub fn from_items(items: Vec<Item>) -> Sequence {
        Sequence { repr: Repr::Eager(Rc::new(items)) }
    }

    /// A lazy sequence over a pull source. Items are produced on
    /// demand, memoized, and shared by every clone of the handle.
    pub fn lazy(source: Box<dyn ItemSource>) -> Sequence {
        Sequence { repr: Repr::Lazy(Rc::new(LazySeq::new(source))) }
    }

    /// True if this sequence is backed by a pull stream whose producer
    /// has not yet been fused (i.e. pulling may still run user code).
    pub fn is_lazy(&self) -> bool {
        match &self.repr {
            Repr::Eager(_) => false,
            Repr::Lazy(l) => !l.is_fused(),
        }
    }

    /// The number of items known to exist *without* pulling: the
    /// buffer length of an eager or fused sequence, `None` while a
    /// live producer could still yield more. Lets instrumentation
    /// (e.g. the evaluator's `items_never_built` counter) report what
    /// an early exit skipped without defeating the point by forcing.
    pub fn known_len(&self) -> Option<usize> {
        match &self.repr {
            Repr::Eager(v) => Some(v.len()),
            Repr::Lazy(l) => {
                let st = l.state.borrow();
                if st.source.is_none() {
                    Some(st.pulled.len())
                } else {
                    None
                }
            }
        }
    }

    /// Fallible positional access: pulls the stream forward until item
    /// `i` is available. `Ok(None)` when the sequence has fewer than
    /// `i + 1` items. Works on eager sequences too (no pull), so
    /// early-exit consumers can be written uniformly.
    pub fn try_item(&self, i: usize) -> XdmResult<Option<Item>> {
        match &self.repr {
            Repr::Eager(v) => Ok(v.get(i).cloned()),
            Repr::Lazy(l) => {
                let have = l.pull_to(i + 1)?;
                if have > i {
                    Ok(l.state.borrow().pulled.get(i).cloned())
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Fallible emptiness probe: pulls at most one item.
    pub fn try_is_empty(&self) -> XdmResult<bool> {
        Ok(self.try_item(0)?.is_none())
    }

    /// Force the whole stream, propagating any deferred error, and
    /// return the fully materialized (eager) sequence. On an eager
    /// sequence this is free.
    pub fn into_forced(self) -> XdmResult<Sequence> {
        match self.repr {
            Repr::Eager(_) => Ok(self),
            Repr::Lazy(l) => Ok(Sequence { repr: Repr::Eager(l.force()?) }),
        }
    }

    /// Shared eager buffer (quietly forcing a lazy repr).
    fn buf(&self) -> &Rc<Vec<Item>> {
        match &self.repr {
            Repr::Eager(v) => v,
            Repr::Lazy(l) => l.forced_quiet(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.buf().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf().is_empty()
    }

    /// Slice of the items.
    pub fn items(&self) -> &[Item] {
        self.buf()
    }

    /// Consume into the underlying vector (no copy when this handle is
    /// the sole owner).
    pub fn into_items(self) -> Vec<Item> {
        let rc = match self.repr {
            Repr::Eager(v) => v,
            Repr::Lazy(l) => l.forced_quiet().clone(),
        };
        Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone())
    }

    /// Iterate over items.
    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.buf().iter()
    }

    /// Append another sequence (flattening concatenation).
    pub fn extend(&mut self, other: Sequence) {
        if self.is_empty() {
            // Adopt the other buffer wholesale — the common "start
            // from empty, append one result" accumulation pattern
            // stays allocation-free.
            self.repr = Repr::Eager(other.buf().clone());
            return;
        }
        if other.is_empty() {
            return;
        }
        let buf = self.buf().clone();
        let mut buf = match Rc::try_unwrap(buf) {
            Ok(v) => v,
            Err(rc) => (*rc).clone(),
        };
        buf.extend(other.into_items());
        self.repr = Repr::Eager(Rc::new(buf));
    }

    /// Push a single item.
    pub fn push(&mut self, item: Item) {
        if let Repr::Eager(v) = &mut self.repr {
            Rc::make_mut(v).push(item);
            return;
        }
        let mut buf = (**self.buf()).clone();
        buf.push(item);
        self.repr = Repr::Eager(Rc::new(buf));
    }

    /// Concatenate two sequences.
    pub fn concat(mut self, other: Sequence) -> Sequence {
        self.extend(other);
        self
    }

    /// Atomize the whole sequence (`fn:data`).
    pub fn atomized(&self) -> Vec<AtomicValue> {
        self.iter().map(Item::atomize).collect()
    }

    /// The effective boolean value per XQuery 1.0 §2.4.3:
    /// - empty → false
    /// - first item a node → true
    /// - singleton atomic → type-specific truth
    /// - otherwise → error FORG0006
    ///
    /// On a lazy sequence this pulls at most two items (an early
    /// exit: a node in first position decides after one pull).
    pub fn effective_boolean(&self) -> XdmResult<bool> {
        match self.try_item(0)? {
            None => Ok(false),
            Some(Item::Node(_)) => Ok(true),
            Some(Item::Atomic(a)) => match self.try_item(1)? {
                None => a.effective_boolean(),
                Some(_) => Err(XdmError::new(
                    ErrorCode::FORG0006,
                    "effective boolean value of multi-item atomic sequence",
                )),
            },
        }
    }

    /// `fn:string` applied to the sequence: empty → "", singleton →
    /// its string value, otherwise a type error. Pulls at most two
    /// items of a lazy sequence.
    pub fn string_value(&self) -> XdmResult<String> {
        match self.try_item(0)? {
            None => Ok(String::new()),
            Some(it) => match self.try_item(1)? {
                None => Ok(it.string_value()),
                Some(_) => Err(XdmError::new(
                    ErrorCode::XPTY0004,
                    "fn:string on a sequence of more than one item",
                )),
            },
        }
    }

    /// Require zero-or-one items, returning the optional item.
    pub fn zero_or_one(&self) -> XdmResult<Option<&Item>> {
        match self.items() {
            [] => Ok(None),
            [it] => Ok(Some(it)),
            _ => Err(XdmError::new(
                ErrorCode::FORG0003,
                "expected at most one item",
            )),
        }
    }

    /// Require exactly one item.
    pub fn exactly_one(&self) -> XdmResult<&Item> {
        match self.items() {
            [it] => Ok(it),
            other => Err(XdmError::new(
                ErrorCode::FORG0005,
                format!("expected exactly one item, got {}", other.len()),
            )),
        }
    }

    /// Sort into document order and remove duplicate node identities
    /// (required after `/` steps and `|` unions). Errors if the
    /// sequence contains non-node items.
    pub fn document_order_dedup(self) -> XdmResult<Sequence> {
        let mut nodes: Vec<NodeHandle> = Vec::with_capacity(self.len());
        for it in self.into_items() {
            match it {
                Item::Node(n) => nodes.push(n),
                Item::Atomic(a) => {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        format!(
                            "path/union result must be nodes, found {}",
                            a.type_of()
                        ),
                    ))
                }
            }
        }
        nodes.sort_by(|a, b| a.document_order(b));
        nodes.dedup();
        Ok(Sequence::from_items(
            nodes.into_iter().map(Item::Node).collect(),
        ))
    }
}

impl From<Item> for Sequence {
    fn from(item: Item) -> Sequence {
        Sequence::one(item)
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Sequence {
        Sequence::from_items(items)
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Sequence {
        Sequence::from_items(iter.into_iter().collect())
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_items().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::QName;

    #[test]
    fn constructors_and_flattening() {
        let mut s = Sequence::one(Item::integer(1));
        s.extend(Sequence::from_items(vec![Item::integer(2), Item::integer(3)]));
        assert_eq!(s.len(), 3);
        let t = Sequence::one(Item::integer(0)).concat(s.clone());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn effective_boolean_rules() {
        assert!(!Sequence::empty().effective_boolean().unwrap());
        assert!(Sequence::one(Item::boolean(true)).effective_boolean().unwrap());
        assert!(!Sequence::one(Item::boolean(false)).effective_boolean().unwrap());
        assert!(Sequence::one(Item::string("x")).effective_boolean().unwrap());
        assert!(!Sequence::one(Item::integer(0)).effective_boolean().unwrap());
        // A node in first position → true regardless of the rest.
        let n = NodeHandle::root_element(QName::new("e"));
        let s = Sequence::from_items(vec![Item::Node(n), Item::integer(0)]);
        assert!(s.effective_boolean().unwrap());
        // Two atomics → error.
        let s = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(s.effective_boolean().is_err());
    }

    #[test]
    fn cardinality_helpers() {
        let empty = Sequence::empty();
        assert!(empty.zero_or_one().unwrap().is_none());
        assert!(empty.exactly_one().is_err());
        let one = Sequence::one(Item::integer(1));
        assert!(one.zero_or_one().unwrap().is_some());
        assert!(one.exactly_one().is_ok());
        let two = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(two.zero_or_one().is_err());
        assert!(two.exactly_one().is_err());
    }

    #[test]
    fn atomization_of_nodes() {
        let e = NodeHandle::root_element(QName::new("e"));
        e.append_child(&NodeHandle::new_text(e.arena(), "42")).unwrap();
        let s = Sequence::one(Item::Node(e));
        let atoms = s.atomized();
        assert_eq!(atoms, vec![AtomicValue::Untyped("42".into())]);
    }

    #[test]
    fn document_order_dedup_sorts_and_dedups() {
        let root = NodeHandle::root_element(QName::new("r"));
        let arena = root.arena().clone();
        let a = NodeHandle::new_element(&arena, QName::new("a"));
        let b = NodeHandle::new_element(&arena, QName::new("b"));
        root.append_child(&a).unwrap();
        root.append_child(&b).unwrap();
        let s = Sequence::from_items(vec![
            Item::Node(b.clone()),
            Item::Node(a.clone()),
            Item::Node(b.clone()),
        ]);
        let sorted = s.document_order_dedup().unwrap();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted.items()[0], Item::Node(a));
        assert_eq!(sorted.items()[1], Item::Node(b));
    }

    #[test]
    fn document_order_dedup_rejects_atomics() {
        let s = Sequence::one(Item::integer(1));
        assert!(s.document_order_dedup().is_err());
    }

    #[test]
    fn string_value_rules() {
        assert_eq!(Sequence::empty().string_value().unwrap(), "");
        assert_eq!(Sequence::one(Item::integer(5)).string_value().unwrap(), "5");
        let two = Sequence::from_items(vec![Item::integer(1), Item::integer(2)]);
        assert!(two.string_value().is_err());
    }

    /// A counting pull source: integers 1..=n, optionally erroring
    /// after `fail_after` successful pulls.
    struct Counter {
        next: i64,
        n: i64,
        fail_after: Option<i64>,
        pulls: Rc<std::cell::Cell<usize>>,
    }

    impl ItemSource for Counter {
        fn next_item(&mut self) -> XdmResult<Option<Item>> {
            if let Some(k) = self.fail_after {
                if self.next > k {
                    return Err(XdmError::new(ErrorCode::FORG0001, "injected"));
                }
            }
            if self.next > self.n {
                return Ok(None);
            }
            self.pulls.set(self.pulls.get() + 1);
            let v = self.next;
            self.next += 1;
            Ok(Some(Item::integer(v)))
        }
    }

    fn counting(n: i64, fail_after: Option<i64>) -> (Sequence, Rc<std::cell::Cell<usize>>) {
        let pulls = Rc::new(std::cell::Cell::new(0));
        let seq = Sequence::lazy(Box::new(Counter {
            next: 1,
            n,
            fail_after,
            pulls: pulls.clone(),
        }));
        (seq, pulls)
    }

    #[test]
    fn lazy_pulls_on_demand_and_memoizes_across_clones() {
        let (s, pulls) = counting(10, None);
        assert!(s.is_lazy());
        let t = s.clone(); // Rc-shared: same stream
        assert_eq!(s.try_item(2).unwrap(), Some(Item::integer(3)));
        assert_eq!(pulls.get(), 3);
        // The clone sees the memoized prefix without re-pulling.
        assert_eq!(t.try_item(0).unwrap(), Some(Item::integer(1)));
        assert_eq!(pulls.get(), 3);
        // Probing emptiness costs nothing more.
        assert!(!t.try_is_empty().unwrap());
        assert_eq!(pulls.get(), 3);
    }

    #[test]
    fn lazy_fuses_once_exhausted() {
        let (s, pulls) = counting(2, None);
        assert_eq!(s.try_item(5).unwrap(), None);
        assert_eq!(pulls.get(), 2);
        assert!(!s.is_lazy(), "exhausted stream is fused");
        // Infallible accessors now read the memoized buffer.
        assert_eq!(s.len(), 2);
        assert_eq!(s.items()[1], Item::integer(2));
    }

    #[test]
    fn lazy_error_is_sticky_and_prefix_survives() {
        let (s, _) = counting(10, Some(2));
        assert_eq!(s.try_item(1).unwrap(), Some(Item::integer(2)));
        assert!(s.try_item(2).is_err());
        // Sticky: asking again re-raises without re-pulling.
        assert!(s.try_item(2).is_err());
        assert!(s.clone().into_forced().is_err());
        // The valid prefix is still readable.
        assert_eq!(s.try_item(0).unwrap(), Some(Item::integer(1)));
    }

    #[test]
    fn lazy_effective_boolean_pulls_at_most_two() {
        let (s, pulls) = counting(100, None);
        // Two atomics → FORG0006, decided after two pulls.
        assert!(s.effective_boolean().is_err());
        assert_eq!(pulls.get(), 2);
    }

    #[test]
    fn into_forced_materializes_everything() {
        let (s, pulls) = counting(4, None);
        let forced = s.into_forced().unwrap();
        assert!(!forced.is_lazy());
        assert_eq!(forced.len(), 4);
        assert_eq!(pulls.get(), 4);
    }
}
