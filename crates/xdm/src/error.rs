//! Dynamic and type errors for the XDM / XQuery / XQSE stack.
//!
//! Errors carry a `QName` error code in the style of the W3C
//! specifications (`err:XPTY0004`, `err:FORG0001`, …) plus a free-form
//! message and optional diagnostic items. `fn:error()` and the XQSE
//! `try`/`catch` statement (whose catch clauses match on the error code
//! QName) are built on this type.

use std::fmt;

use crate::qname::QName;

/// The W3C `err:` namespace in which standard error codes live.
pub const ERR_NS: &str = "http://www.w3.org/2005/xqt-errors";

/// Well-known error codes used across the stack.
///
/// Codes mirror the W3C XQuery 1.0 / XUF error catalogue where one
/// exists; XQSE- and ALDSP-specific conditions use the `XQSE*` and
/// `DSP*` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Type error: value does not match required sequence type.
    XPTY0004,
    /// A sequence of more than one item where one was required.
    XPTY0005,
    /// Treat-as failure.
    XPDY0050,
    /// Undefined variable reference.
    XPST0008,
    /// Unknown function (or procedure) call.
    XPST0017,
    /// Static syntax error.
    XPST0003,
    /// Invalid value for cast/constructor.
    FORG0001,
    /// fn:zero-or-one called with more than one item.
    FORG0003,
    /// fn:one-or-more called with an empty sequence.
    FORG0004,
    /// fn:exactly-one called with zero or more than one item.
    FORG0005,
    /// Invalid argument type for a function.
    FORG0006,
    /// Division by zero.
    FOAR0001,
    /// Numeric overflow/underflow.
    FOAR0002,
    /// The error raised by a no-argument call of `fn:error()`.
    FOER0000,
    /// Invalid regular expression / tokenize pattern.
    FORX0002,
    /// Context item is absent.
    XPDY0002,
    /// Updating expression used where a non-updating one is required.
    XUST0001,
    /// Non-updating expression used where an updating one is required.
    XUST0002,
    /// Incompatible updates in one pending update list (e.g. two
    /// `replace value` on the same target).
    XUDY0017,
    /// Update target is not a proper node for the operation.
    XUTY0008,
    /// XQSE: assignment to an undeclared or non-block variable.
    XQSE0001,
    /// XQSE: use of an uninitialized block variable.
    XQSE0002,
    /// XQSE: `break`/`continue` outside a loop.
    XQSE0003,
    /// XQSE: calling a side-effecting procedure from an expression.
    XQSE0004,
    /// XQSE: return value does not match the declared type.
    XQSE0005,
    /// XQSE: binding-sequence variable mutated inside `iterate`.
    XQSE0006,
    /// ALDSP: optimistic-concurrency conflict detected at update time.
    DSP0001,
    /// ALDSP: update decomposition failed (ambiguous lineage).
    DSP0002,
    /// ALDSP: source-level constraint violation (PK/FK/not-null).
    DSP0003,
    /// ALDSP: transaction aborted (XA rollback).
    DSP0004,
    /// ALDSP: unknown data service or method.
    DSP0005,
}

impl ErrorCode {
    /// The local part of the error code QName.
    pub fn local(&self) -> &'static str {
        match self {
            ErrorCode::XPTY0004 => "XPTY0004",
            ErrorCode::XPTY0005 => "XPTY0005",
            ErrorCode::XPDY0050 => "XPDY0050",
            ErrorCode::XPST0008 => "XPST0008",
            ErrorCode::XPST0017 => "XPST0017",
            ErrorCode::XPST0003 => "XPST0003",
            ErrorCode::FORG0001 => "FORG0001",
            ErrorCode::FORG0003 => "FORG0003",
            ErrorCode::FORG0004 => "FORG0004",
            ErrorCode::FORG0005 => "FORG0005",
            ErrorCode::FORG0006 => "FORG0006",
            ErrorCode::FOAR0001 => "FOAR0001",
            ErrorCode::FOAR0002 => "FOAR0002",
            ErrorCode::FOER0000 => "FOER0000",
            ErrorCode::FORX0002 => "FORX0002",
            ErrorCode::XPDY0002 => "XPDY0002",
            ErrorCode::XUST0001 => "XUST0001",
            ErrorCode::XUST0002 => "XUST0002",
            ErrorCode::XUDY0017 => "XUDY0017",
            ErrorCode::XUTY0008 => "XUTY0008",
            ErrorCode::XQSE0001 => "XQSE0001",
            ErrorCode::XQSE0002 => "XQSE0002",
            ErrorCode::XQSE0003 => "XQSE0003",
            ErrorCode::XQSE0004 => "XQSE0004",
            ErrorCode::XQSE0005 => "XQSE0005",
            ErrorCode::XQSE0006 => "XQSE0006",
            ErrorCode::DSP0001 => "DSP0001",
            ErrorCode::DSP0002 => "DSP0002",
            ErrorCode::DSP0003 => "DSP0003",
            ErrorCode::DSP0004 => "DSP0004",
            ErrorCode::DSP0005 => "DSP0005",
        }
    }

    /// The error code as a QName in the `err:` namespace.
    pub fn qname(&self) -> QName {
        QName::with_ns(ERR_NS, self.local())
    }
}

/// A dynamic error raised during parsing, evaluation, or statement
/// execution.
///
/// The `code` QName is what XQSE `catch (NameTest ...)` clauses match
/// against; `message` and `diagnostics` are surfaced through the catch
/// clause's `into` variables, mirroring `fn:error()`'s three arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct XdmError {
    /// The error code QName (e.g. `err:XPTY0004` or a user QName).
    pub code: QName,
    /// Human-readable description.
    pub message: String,
    /// Optional diagnostic strings (the serialized `error-object`).
    pub diagnostics: Vec<String>,
}

impl XdmError {
    /// Construct an error with a well-known code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        XdmError {
            code: code.qname(),
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Construct an error with an arbitrary (user-defined) code QName,
    /// as raised by `fn:error(xs:QName(...), ...)`.
    pub fn with_code(code: QName, message: impl Into<String>) -> Self {
        XdmError {
            code,
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Attach diagnostic items.
    pub fn diagnostics(mut self, items: Vec<String>) -> Self {
        self.diagnostics = items;
        self
    }

    /// True if this error's code equals the given well-known code.
    pub fn is(&self, code: ErrorCode) -> bool {
        self.code == code.qname()
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)?;
        if !self.diagnostics.is_empty() {
            write!(f, " ({})", self.diagnostics.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for XdmError {}

/// The ubiquitous result alias.
pub type XdmResult<T> = Result<T, XdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_qname_is_in_err_namespace() {
        let q = ErrorCode::XPTY0004.qname();
        assert_eq!(q.ns.as_deref(), Some(ERR_NS));
        assert_eq!(q.local, "XPTY0004");
    }

    #[test]
    fn is_matches_only_same_code() {
        let e = XdmError::new(ErrorCode::FOAR0001, "div by zero");
        assert!(e.is(ErrorCode::FOAR0001));
        assert!(!e.is(ErrorCode::FOAR0002));
    }

    #[test]
    fn user_code_errors_carry_custom_qname() {
        let code = QName::new("PRIMARY_CREATE_FAILURE");
        let e = XdmError::with_code(code.clone(), "primary create failed");
        assert_eq!(e.code, code);
        assert!(!e.is(ErrorCode::FOER0000));
    }

    #[test]
    fn display_includes_code_and_diagnostics() {
        let e = XdmError::new(ErrorCode::FOER0000, "boom")
            .diagnostics(vec!["a".into(), "b".into()]);
        let s = e.to_string();
        assert!(s.contains("FOER0000"));
        assert!(s.contains("boom"));
        assert!(s.contains("a, b"));
    }
}
