//! # XDM — the XQuery Data Model
//!
//! This crate implements the data model that underpins the whole XQSE
//! reproduction stack: atomic values of the `xs:*` types, an arena-based
//! node store for XML trees (documents, elements, attributes, text,
//! comments, processing instructions), heterogeneous sequences of items,
//! and the SequenceType system used for static and dynamic type matching.
//!
//! The design follows W3C *XQuery 1.0 and XPath 2.0 Data Model (XDM)*:
//!
//! - every value is a **sequence** of zero or more **items**;
//! - an item is either an **atomic value** or a **node**;
//! - nodes have identity, a parent/children structure, and a total
//!   **document order**;
//! - atomic values carry one of the built-in atomic types.
//!
//! Nodes live in an [`node::NodeArena`] and are addressed through cheap,
//! clonable [`node::NodeHandle`]s (an `Rc` to the arena plus an index),
//! which makes XQuery Update Facility in-place mutation straightforward
//! while keeping document-order comparison well defined.

pub mod atomic;
pub mod decimal;
pub mod datetime;
pub mod error;
pub mod intern;
pub mod node;
pub mod qname;
pub mod sequence;
pub mod types;

pub use atomic::AtomicValue;
pub use decimal::Decimal;
pub use datetime::{Date, DateTime};
pub use error::{ErrorCode, XdmError, XdmResult};
pub use intern::{xdm_stats, Symbol, XdmStats};
pub use node::{NodeArena, NodeHandle, NodeId, NodeKind, SharedArena};
pub use qname::QName;
pub use sequence::{Item, Sequence};
pub use types::{ItemType, Occurrence, SequenceType};
