//! The XDM node store.
//!
//! Nodes live in a [`NodeArena`] — a flat `Vec` of node records indexed
//! by [`NodeId`] — and are referenced through [`NodeHandle`]s that pair
//! a shared arena pointer with an id. This gives us:
//!
//! - **node identity** (`is` comparisons) as `(arena, id)` equality;
//! - **document order** as a structural path comparison within an
//!   arena, with a global arena stamp ordering nodes from different
//!   documents (the XDM permits any stable ordering across trees);
//! - cheap **in-place mutation** for the XQuery Update Facility
//!   primitives (insert, delete, replace, rename);
//! - O(1) parent/child navigation for path expressions.
//!
//! The store is deliberately single-threaded (`Rc<RefCell<…>>`): one
//! XQSE program executes on one thread, matching the paper's
//! sequential statement-execution model. Cross-thread concurrency in
//! the reproduction lives in the ALDSP source layer, not in XDM.
//!
//! ## Structural sharing ("grafts")
//!
//! Element constructors used to deep-copy their content into the new
//! arena — the construction-bound hot path. A child slot is now a
//! [`ChildEntry`]: either a local node id, or a **graft** — a shared
//! reference to an immutable subtree in another (sealed) arena. The
//! graft is observably identical to a copy:
//!
//! - a handle reached *through* a graft carries a chain of
//!   [`GraftLink`]s, so the parent axis at the graft root redirects to
//!   the host element, identity distinguishes two grafts of the same
//!   source node, and document order follows the host tree;
//! - any mutation through a graft view first **materializes** the
//!   grafted subtree into the host arena (copy-on-write), recording an
//!   id map so outstanding view handles transparently follow the copy;
//! - source arenas are **sealed** when shared (the table→XDM caches
//!   seal eagerly; constructed parentless trees seal on first share),
//!   which freezes the structure the grafts rely on.
//!
//! The one documented deviation: mutating a *sealed* arena directly
//! (in place, not through a result view) remains possible and is then
//! visible through results that grafted it — the eager-copy model
//! would have isolated them. The sanctioned path (mutating the result)
//! copies-on-write and stays fully isolated. See DESIGN.md §10.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::atomic::AtomicValue;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::intern::{count_graft, count_graft_cow, count_node_built};
use crate::qname::QName;

/// Index of a node within its arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The seven XDM node kinds (we omit namespace nodes; in-scope
/// namespaces are tracked on elements directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Document root node.
    Document,
    /// Element node.
    Element,
    /// Attribute node.
    Attribute,
    /// Text node.
    Text,
    /// Comment node.
    Comment,
    /// Processing instruction node.
    Pi,
}

/// One child slot of a document or element: a node in the same arena,
/// or a grafted subtree shared from a sealed arena.
#[derive(Debug, Clone)]
enum ChildEntry {
    Local(NodeId),
    Graft(Rc<GraftCtx>),
}

/// One graft use: `root` in the sealed `sub` arena, adopted as a child
/// of exactly one host slot. Each `graft_child` call creates a fresh
/// `GraftCtx`, so grafting the same source node twice yields two
/// distinct logical nodes (as two copies would have).
struct GraftCtx {
    sub: SharedArena,
    root: NodeId,
    state: RefCell<GraftState>,
}

impl fmt::Debug for GraftCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GraftCtx(root={:?}@arena{}, {})",
            self.root,
            self.sub.borrow().stamp,
            match &*self.state.borrow() {
                GraftState::Live => "live",
                GraftState::Materialized { .. } => "materialized",
                GraftState::Detached => "detached",
            }
        )
    }
}

enum GraftState {
    /// Reads go straight to the sealed source arena.
    Live,
    /// Copy-on-write fired: the subtree was copied into the host
    /// arena; `(source arena stamp, source id) -> host id` lets
    /// outstanding view handles follow the copy.
    Materialized { map: HashMap<(u64, NodeId), NodeId> },
    /// The grafted child was detached from its host (XUF `delete`).
    Detached,
}

/// Where a graft view came from: the graft use plus the host slot, so
/// a handle inside a grafted region can answer parent/root/identity
/// questions as if it were a private copy. `host_link` chains when the
/// host region is itself reached through a graft.
#[derive(Debug)]
struct GraftLink {
    ctx: Rc<GraftCtx>,
    host_arena: SharedArena,
    host_id: NodeId,
    host_link: Option<Rc<GraftLink>>,
}

#[derive(Debug, Clone)]
enum NodeBody {
    Document {
        children: Vec<ChildEntry>,
    },
    Element {
        name: QName,
        attrs: Vec<NodeId>,
        children: Vec<ChildEntry>,
        /// Namespace declarations written on this element
        /// (prefix → URI; empty prefix = default namespace).
        ns_decls: Vec<(crate::intern::Symbol, crate::intern::Symbol)>,
    },
    Attribute {
        name: QName,
        value: Rc<str>,
    },
    Text {
        content: Rc<str>,
    },
    Comment {
        content: Rc<str>,
    },
    Pi {
        target: String,
        content: Rc<str>,
    },
}

#[derive(Debug, Clone)]
struct NodeData {
    parent: Option<NodeId>,
    body: NodeBody,
}

static ARENA_STAMP: AtomicU64 = AtomicU64::new(1);

/// A flat arena of nodes forming one or more trees.
#[derive(Debug)]
pub struct NodeArena {
    stamp: u64,
    nodes: Vec<NodeData>,
    /// Once sealed, the arena's structure is shared by reference into
    /// other trees and must be treated as immutable.
    sealed: bool,
    /// Lazily memoized subtree sizes (node count incl. attributes),
    /// computed on sealed arenas for graft accounting. 0 = unknown.
    sizes: Vec<u32>,
}

/// Shared, interiorly mutable arena pointer.
pub type SharedArena = Rc<RefCell<NodeArena>>;

impl NodeArena {
    /// Create a fresh arena with a globally unique stamp.
    pub fn new() -> SharedArena {
        Rc::new(RefCell::new(NodeArena::default()))
    }

    /// The arena's globally unique creation stamp.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of node slots allocated (including detached nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the arena has been sealed (shared by reference).
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Seal the arena: its structure is about to be shared by
    /// reference and must no longer be treated as private.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    fn alloc(&mut self, parent: Option<NodeId>, body: NodeBody) -> NodeId {
        count_node_built();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { parent, body });
        id
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.0 as usize]
    }
}

impl Default for NodeArena {
    fn default() -> Self {
        NodeArena {
            stamp: ARENA_STAMP.fetch_add(1, AtomicOrdering::Relaxed),
            nodes: Vec::new(),
            sealed: false,
            sizes: Vec::new(),
        }
    }
}

/// Deep size (node records incl. attributes) of the subtree at `id`,
/// following grafts; memoized per arena. Only meaningful on sealed
/// arenas (the memo assumes a frozen structure).
fn subtree_size(arena: &SharedArena, id: NodeId) -> u64 {
    {
        let a = arena.borrow();
        if let Some(&s) = a.sizes.get(id.0 as usize) {
            if s != 0 {
                return u64::from(s);
            }
        }
    }
    let (attrs, entries) = {
        let a = arena.borrow();
        match &a.data(id).body {
            NodeBody::Document { children } => (0u64, children.clone()),
            NodeBody::Element { attrs, children, .. } => {
                (attrs.len() as u64, children.clone())
            }
            _ => (0, Vec::new()),
        }
    };
    let mut total = 1 + attrs;
    for e in &entries {
        total += match e {
            ChildEntry::Local(c) => subtree_size(arena, *c),
            ChildEntry::Graft(ctx) => subtree_size(&ctx.sub, ctx.root),
        };
    }
    let mut a = arena.borrow_mut();
    let idx = id.0 as usize;
    if a.sizes.len() <= idx {
        a.sizes.resize(idx + 1, 0);
    }
    a.sizes[idx] = u32::try_from(total).unwrap_or(u32::MAX);
    total
}

/// A reference to a node: shared arena + id, plus (for nodes reached
/// through a graft) the chain of graft links that situates the view in
/// its host tree. Cloning is cheap.
#[derive(Clone)]
pub struct NodeHandle {
    arena: SharedArena,
    id: NodeId,
    link: Option<Rc<GraftLink>>,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NodeHandle({:?}@arena{}{})",
            self.id,
            self.arena.borrow().stamp,
            if self.link.is_some() { " via graft" } else { "" }
        )
    }
}

fn chains_eq(a: &Option<Rc<GraftLink>>, b: &Option<Rc<GraftLink>>) -> bool {
    let (mut a, mut b) = (a, b);
    loop {
        match (a, b) {
            (None, None) => return true,
            (Some(x), Some(y)) => {
                if !Rc::ptr_eq(&x.ctx, &y.ctx) {
                    return false;
                }
                a = &x.host_link;
                b = &y.host_link;
            }
            _ => return false,
        }
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        match (self.resolve_if_moved(), other.resolve_if_moved()) {
            (None, None) => {
                Rc::ptr_eq(&self.arena, &other.arena)
                    && self.id == other.id
                    && chains_eq(&self.link, &other.link)
            }
            (a, b) => {
                let a = a.unwrap_or_else(|| self.clone());
                let b = b.unwrap_or_else(|| other.clone());
                a == b
            }
        }
    }
}
impl Eq for NodeHandle {}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        if let Some(h) = self.resolve_if_moved() {
            return h.hash(state);
        }
        (Rc::as_ptr(&self.arena) as usize).hash(state);
        self.id.hash(state);
        let mut l = &self.link;
        while let Some(x) = l {
            (Rc::as_ptr(&x.ctx) as usize).hash(state);
            l = &x.host_link;
        }
    }
}

/// One step on the path from a root to a node; attributes sort before
/// children, matching XDM document order (attributes follow their
/// element but precede its children — we encode "element < its attrs
/// < its children" by path prefix ordering plus this step ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PathStep {
    Attr(usize),
    Child(usize),
}

impl NodeHandle {
    /// Construct a handle (mostly for internal/builder use).
    pub fn new(arena: SharedArena, id: NodeId) -> NodeHandle {
        NodeHandle { arena, id, link: None }
    }

    /// The node's arena.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// The node's id within its arena.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Seal this node's arena: shared by reference from now on.
    pub fn seal(&self) {
        self.arena.borrow_mut().sealed = true;
    }

    /// Whether this node's arena is sealed.
    pub fn is_sealed(&self) -> bool {
        self.arena.borrow().sealed
    }

    /// Whether this handle was reached through a graft (a shared
    /// subtree viewed inside a host tree).
    pub fn is_graft_view(&self) -> bool {
        self.link.is_some()
    }

    /// Create a new document node in a fresh arena.
    pub fn new_document() -> NodeHandle {
        let arena = NodeArena::new();
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Document { children: Vec::new() });
        NodeHandle { arena, id, link: None }
    }

    /// Create a detached element node in the given arena.
    pub fn new_element(arena: &SharedArena, name: QName) -> NodeHandle {
        let id = arena.borrow_mut().alloc(
            None,
            NodeBody::Element {
                name,
                attrs: Vec::new(),
                children: Vec::new(),
                ns_decls: Vec::new(),
            },
        );
        NodeHandle { arena: arena.clone(), id, link: None }
    }

    /// Create a detached element in a fresh arena.
    pub fn root_element(name: QName) -> NodeHandle {
        let arena = NodeArena::new();
        Self::new_element(&arena, name)
    }

    /// Create a detached attribute node.
    pub fn new_attribute(
        arena: &SharedArena,
        name: QName,
        value: impl Into<Rc<str>>,
    ) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Attribute { name, value: value.into() });
        NodeHandle { arena: arena.clone(), id, link: None }
    }

    /// Create a detached text node.
    pub fn new_text(arena: &SharedArena, content: impl Into<Rc<str>>) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Text { content: content.into() });
        NodeHandle { arena: arena.clone(), id, link: None }
    }

    /// Create a detached comment node.
    pub fn new_comment(arena: &SharedArena, content: impl Into<Rc<str>>) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Comment { content: content.into() });
        NodeHandle { arena: arena.clone(), id, link: None }
    }

    /// Create a detached processing-instruction node.
    pub fn new_pi(
        arena: &SharedArena,
        target: impl Into<String>,
        content: impl Into<Rc<str>>,
    ) -> NodeHandle {
        let id = arena.borrow_mut().alloc(
            None,
            NodeBody::Pi { target: target.into(), content: content.into() },
        );
        NodeHandle { arena: arena.clone(), id, link: None }
    }

    /// If the outermost graft this view goes through has been
    /// materialized (copy-on-write fired), return the handle of the
    /// materialized copy in the host arena; `None` when the view is
    /// still direct.
    fn resolve_if_moved(&self) -> Option<NodeHandle> {
        let link = self.link.as_ref()?;
        let mut outer = link;
        while let Some(next) = &outer.host_link {
            outer = next;
        }
        let mapped = match &*outer.ctx.state.borrow() {
            GraftState::Materialized { map } => {
                let stamp = self.arena.borrow().stamp;
                map.get(&(stamp, self.id)).copied()
            }
            _ => None,
        }?;
        let h = NodeHandle {
            arena: outer.host_arena.clone(),
            id: mapped,
            link: outer.host_link.clone(),
        };
        // The host region could itself have moved since; chase it.
        Some(h.resolve_if_moved().unwrap_or(h))
    }

    fn with<R>(&self, f: impl FnOnce(&NodeData) -> R) -> R {
        let arena = self.arena.borrow();
        f(arena.data(self.id))
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        if let Some(h) = self.resolve_if_moved() {
            return h.kind();
        }
        self.with(|d| match d.body {
            NodeBody::Document { .. } => NodeKind::Document,
            NodeBody::Element { .. } => NodeKind::Element,
            NodeBody::Attribute { .. } => NodeKind::Attribute,
            NodeBody::Text { .. } => NodeKind::Text,
            NodeBody::Comment { .. } => NodeKind::Comment,
            NodeBody::Pi { .. } => NodeKind::Pi,
        })
    }

    /// The node name (elements and attributes; PI target is exposed as
    /// a no-namespace QName).
    pub fn name(&self) -> Option<QName> {
        if let Some(h) = self.resolve_if_moved() {
            return h.name();
        }
        self.with(|d| match &d.body {
            NodeBody::Element { name, .. } | NodeBody::Attribute { name, .. } => {
                Some(name.clone())
            }
            NodeBody::Pi { target, .. } => Some(QName::new(target.as_str())),
            _ => None,
        })
    }

    /// Parent node, if attached. At a graft root the parent is the
    /// host element the subtree was grafted into.
    pub fn parent(&self) -> Option<NodeHandle> {
        if let Some(h) = self.resolve_if_moved() {
            return h.parent();
        }
        if let Some(link) = &self.link {
            if self.id == link.ctx.root && Rc::ptr_eq(&self.arena, &link.ctx.sub) {
                return match &*link.ctx.state.borrow() {
                    GraftState::Live => Some(NodeHandle {
                        arena: link.host_arena.clone(),
                        id: link.host_id,
                        link: link.host_link.clone(),
                    }),
                    // Detached from the host; Materialized is handled
                    // by resolve_if_moved above.
                    _ => None,
                };
            }
        }
        self.with(|d| d.parent).map(|p| NodeHandle {
            arena: self.arena.clone(),
            id: p,
            link: self.link.clone(),
        })
    }

    fn entry_handle(&self, e: &ChildEntry) -> NodeHandle {
        match e {
            ChildEntry::Local(id) => NodeHandle {
                arena: self.arena.clone(),
                id: *id,
                link: self.link.clone(),
            },
            ChildEntry::Graft(ctx) => NodeHandle {
                arena: ctx.sub.clone(),
                id: ctx.root,
                link: Some(Rc::new(GraftLink {
                    ctx: ctx.clone(),
                    host_arena: self.arena.clone(),
                    host_id: self.id,
                    host_link: self.link.clone(),
                })),
            },
        }
    }

    fn entries(&self) -> Vec<ChildEntry> {
        self.with(|d| match &d.body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.clone()
            }
            _ => Vec::new(),
        })
    }

    /// Child nodes in order (document and element nodes).
    pub fn children(&self) -> Vec<NodeHandle> {
        if let Some(h) = self.resolve_if_moved() {
            return h.children();
        }
        self.entries().iter().map(|e| self.entry_handle(e)).collect()
    }

    /// Attribute nodes in order (element nodes).
    pub fn attributes(&self) -> Vec<NodeHandle> {
        if let Some(h) = self.resolve_if_moved() {
            return h.attributes();
        }
        self.with(|d| match &d.body {
            NodeBody::Element { attrs, .. } => attrs.clone(),
            _ => Vec::new(),
        })
        .into_iter()
        .map(|id| NodeHandle {
            arena: self.arena.clone(),
            id,
            link: self.link.clone(),
        })
        .collect()
    }

    /// Look up an attribute by expanded name.
    pub fn attribute(&self, name: &QName) -> Option<NodeHandle> {
        self.attributes()
            .into_iter()
            .find(|a| a.name().as_ref() == Some(name))
    }

    /// The attribute's or text-ish node's own content string.
    pub fn content(&self) -> Option<String> {
        self.content_shared().map(|rc| rc.as_ref().to_string())
    }

    /// Zero-copy access to an attribute's or text-ish node's content.
    pub fn content_shared(&self) -> Option<Rc<str>> {
        if let Some(h) = self.resolve_if_moved() {
            return h.content_shared();
        }
        self.with(|d| match &d.body {
            NodeBody::Attribute { value, .. } => Some(value.clone()),
            NodeBody::Text { content }
            | NodeBody::Comment { content }
            | NodeBody::Pi { content, .. } => Some(content.clone()),
            _ => None,
        })
    }

    /// Namespace declarations written on this element.
    pub fn ns_decls(&self) -> Vec<(crate::intern::Symbol, crate::intern::Symbol)> {
        if let Some(h) = self.resolve_if_moved() {
            return h.ns_decls();
        }
        self.with(|d| match &d.body {
            NodeBody::Element { ns_decls, .. } => ns_decls.clone(),
            _ => Vec::new(),
        })
    }

    /// Add a namespace declaration to an element.
    pub fn add_ns_decl(
        &self,
        prefix: impl Into<crate::intern::Symbol>,
        uri: impl Into<crate::intern::Symbol>,
    ) {
        let me = self.ensure_local();
        let mut arena = me.arena.borrow_mut();
        if let NodeBody::Element { ns_decls, .. } = &mut arena.data_mut(me.id).body {
            ns_decls.push((prefix.into(), uri.into()));
        }
    }

    /// The XDM string value: for elements/documents the concatenation
    /// of descendant text; for attributes/text/comments/PIs the content.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Document | NodeKind::Element => {
                // Fast path: the dominant `<e>text</e>` shape shares
                // the text's Rc<str> straight out, skipping the
                // recursive collector.
                if let Some(t) = self.single_text_content() {
                    return t.as_ref().to_string();
                }
                let mut out = String::new();
                self.collect_text(&mut out);
                out
            }
            _ => self.content().unwrap_or_default(),
        }
    }

    /// The single text child's shared content, if this element's
    /// entire content is exactly one local text node.
    fn single_text_content(&self) -> Option<Rc<str>> {
        if let Some(h) = self.resolve_if_moved() {
            return h.single_text_content();
        }
        let a = self.arena.borrow();
        let children = match &a.data(self.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children
            }
            _ => return None,
        };
        if children.len() != 1 {
            return None;
        }
        let ChildEntry::Local(c) = &children[0] else { return None };
        match &a.data(*c).body {
            NodeBody::Text { content } => Some(content.clone()),
            _ => None,
        }
    }

    fn collect_text(&self, out: &mut String) {
        for c in self.children() {
            match c.kind() {
                NodeKind::Text => {
                    if let Some(t) = c.content_shared() {
                        out.push_str(&t);
                    }
                }
                NodeKind::Element => c.collect_text(out),
                _ => {}
            }
        }
    }

    /// The typed value. Without schema validation every node is
    /// untyped, so this is `xs:untypedAtomic(string-value)`.
    pub fn typed_value(&self) -> AtomicValue {
        AtomicValue::Untyped(self.string_value())
    }

    /// The root of the tree containing this node (following graft
    /// links up into the host tree).
    pub fn root(&self) -> NodeHandle {
        let mut cur = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        while let Some(p) = cur.parent() {
            cur = p;
        }
        cur
    }

    /// All descendant nodes in document order (excluding attributes
    /// and self).
    pub fn descendants(&self) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        fn walk(n: &NodeHandle, out: &mut Vec<NodeHandle>) {
            for c in n.children() {
                out.push(c.clone());
                walk(&c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Ancestors from parent to root.
    pub fn ancestors(&self) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(p) = cur {
            cur = p.parent();
            out.push(p);
        }
        out
    }

    /// Following siblings in document order.
    pub fn following_siblings(&self) -> Vec<NodeHandle> {
        match self.parent() {
            None => Vec::new(),
            Some(p) => {
                let sibs = p.children();
                let pos = sibs.iter().position(|s| s == self);
                match pos {
                    Some(i) => sibs[i + 1..].to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Preceding siblings in reverse document order.
    pub fn preceding_siblings(&self) -> Vec<NodeHandle> {
        match self.parent() {
            None => Vec::new(),
            Some(p) => {
                let sibs = p.children();
                let pos = sibs.iter().position(|s| s == self);
                match pos {
                    Some(i) => {
                        let mut v = sibs[..i].to_vec();
                        v.reverse();
                        v
                    }
                    None => Vec::new(),
                }
            }
        }
    }

    /// Structural path from the root, for document-order comparison.
    fn path(&self) -> Vec<PathStep> {
        let mut steps = Vec::new();
        let mut cur = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        while let Some(p) = cur.parent() {
            let step = if cur.kind() == NodeKind::Attribute {
                let idx = p
                    .attributes()
                    .iter()
                    .position(|a| *a == cur)
                    .expect("attribute listed in parent");
                PathStep::Attr(idx)
            } else {
                let idx = p
                    .children()
                    .iter()
                    .position(|c| *c == cur)
                    .expect("child listed in parent");
                PathStep::Child(idx)
            };
            steps.push(step);
            cur = p;
        }
        steps.reverse();
        steps
    }

    /// Total document order: within one tree, ancestors precede
    /// descendants and siblings compare by position (through grafts);
    /// across trees, roots give a stable arbitrary order by (arena
    /// stamp, root id) — a root's arena is the host arena even when
    /// parts of the tree are grafted from elsewhere.
    pub fn document_order(&self, other: &NodeHandle) -> std::cmp::Ordering {
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        let (ra, rb) = (self.root(), other.root());
        if ra == rb {
            return self.path().cmp(&other.path());
        }
        let (sa, sb) = (ra.arena.borrow().stamp, rb.arena.borrow().stamp);
        if sa != sb {
            sa.cmp(&sb)
        } else {
            ra.id.cmp(&rb.id)
        }
    }

    // ------------------------------------------------------------------
    // Grafting (structural sharing) internals.
    // ------------------------------------------------------------------

    /// Whether this element can be adopted by reference into `target`
    /// without a deep copy: a different arena that is either already
    /// sealed (source caches, previously shared trees) or holds this
    /// node as a detached root (a freshly constructed tree, sealed on
    /// share).
    pub fn graftable_into(&self, target: &SharedArena) -> bool {
        let me = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        if me.kind() != NodeKind::Element || Rc::ptr_eq(&me.arena, target) {
            return false;
        }
        if me.link.is_some() {
            // A view into a grafted (hence sealed) subtree.
            return me.arena.borrow().sealed;
        }
        let a = me.arena.borrow();
        a.sealed || a.data(me.id).parent.is_none()
    }

    /// Adopt `sub_root`'s subtree as this node's last child **by
    /// reference**: no copy, the source arena is sealed and shared.
    /// Returns the graft view handle (the new logical child).
    pub fn graft_child(&self, sub_root: &NodeHandle) -> XdmResult<NodeHandle> {
        let me = self.ensure_local();
        match me.kind() {
            NodeKind::Document | NodeKind::Element => {}
            k => {
                return Err(XdmError::new(
                    ErrorCode::XUTY0008,
                    format!("cannot graft child into {k:?} node"),
                ))
            }
        }
        let sub = match sub_root.resolve_if_moved() {
            Some(h) => h,
            None => sub_root.clone(),
        };
        if sub.kind() != NodeKind::Element {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "graft_child requires an element",
            ));
        }
        if Rc::ptr_eq(&me.arena, &sub.arena) {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "graft_child requires a cross-arena source",
            ));
        }
        if me.arena.borrow().sealed {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "graft host arena is sealed",
            ));
        }
        sub.arena.borrow_mut().sealed = true;
        let avoided = subtree_size(&sub.arena, sub.id);
        count_graft(avoided);
        let ctx = Rc::new(GraftCtx {
            sub: sub.arena.clone(),
            root: sub.id,
            state: RefCell::new(GraftState::Live),
        });
        {
            let mut arena = me.arena.borrow_mut();
            match &mut arena.data_mut(me.id).body {
                NodeBody::Document { children }
                | NodeBody::Element { children, .. } => {
                    children.push(ChildEntry::Graft(ctx.clone()))
                }
                _ => unreachable!("kind checked above"),
            }
        }
        let link = Rc::new(GraftLink {
            ctx,
            host_arena: me.arena.clone(),
            host_id: me.id,
            host_link: me.link.clone(),
        });
        Ok(NodeHandle { arena: sub.arena, id: sub.id, link: Some(link) })
    }

    /// Resolve any materialized graft, then — if the handle still views
    /// a live grafted region — fire copy-on-write: materialize the
    /// outermost graft into its host arena and return the local copy.
    fn ensure_local(&self) -> NodeHandle {
        let me = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        let Some(link) = me.link.clone() else { return me };
        let mut outer = link;
        while let Some(next) = outer.host_link.clone() {
            outer = next;
        }
        materialize(&outer.ctx, &outer.host_arena, outer.host_id);
        match me.resolve_if_moved() {
            Some(h) => h.ensure_local(),
            None => me,
        }
    }
}

/// Copy-on-write: replace the graft entry under `(host_arena,
/// host_id)` with a private deep copy, recording the id map so
/// outstanding view handles follow the copy.
fn materialize(ctx: &Rc<GraftCtx>, host_arena: &SharedArena, host_id: NodeId) {
    if !matches!(&*ctx.state.borrow(), GraftState::Live) {
        return;
    }
    count_graft_cow();
    let mut map = HashMap::new();
    let new_root = copy_subtree_recording(&ctx.sub, ctx.root, host_arena, &mut map);
    {
        let mut host = host_arena.borrow_mut();
        host.data_mut(new_root).parent = Some(host_id);
        match &mut host.data_mut(host_id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                for e in children.iter_mut() {
                    let replace = matches!(e, ChildEntry::Graft(c) if Rc::ptr_eq(c, ctx));
                    if replace {
                        *e = ChildEntry::Local(new_root);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    *ctx.state.borrow_mut() = GraftState::Materialized { map };
}

/// Raw deep copy of `(src, id)` into `target`, following nested graft
/// entries, recording `(source stamp, source id) -> new id` for every
/// copied node.
fn copy_subtree_recording(
    src: &SharedArena,
    id: NodeId,
    target: &SharedArena,
    map: &mut HashMap<(u64, NodeId), NodeId>,
) -> NodeId {
    let (stamp, body) = {
        let a = src.borrow();
        (a.stamp, a.data(id).body.clone())
    };
    match body {
        NodeBody::Element { name, attrs, children, ns_decls } => {
            let nid = target.borrow_mut().alloc(
                None,
                NodeBody::Element {
                    name,
                    attrs: Vec::new(),
                    children: Vec::new(),
                    ns_decls,
                },
            );
            map.insert((stamp, id), nid);
            for a in attrs {
                let na = copy_subtree_recording(src, a, target, map);
                let mut t = target.borrow_mut();
                t.data_mut(na).parent = Some(nid);
                if let NodeBody::Element { attrs, .. } = &mut t.data_mut(nid).body {
                    attrs.push(na);
                }
            }
            copy_entries(src, children, target, nid, map);
            nid
        }
        NodeBody::Document { children } => {
            let nid = target
                .borrow_mut()
                .alloc(None, NodeBody::Document { children: Vec::new() });
            map.insert((stamp, id), nid);
            copy_entries(src, children, target, nid, map);
            nid
        }
        leaf => {
            let nid = target.borrow_mut().alloc(None, leaf);
            map.insert((stamp, id), nid);
            nid
        }
    }
}

fn copy_entries(
    src: &SharedArena,
    entries: Vec<ChildEntry>,
    target: &SharedArena,
    parent: NodeId,
    map: &mut HashMap<(u64, NodeId), NodeId>,
) {
    for e in entries {
        let nc = match e {
            ChildEntry::Local(c) => copy_subtree_recording(src, c, target, map),
            ChildEntry::Graft(ctx) => {
                copy_subtree_recording(&ctx.sub, ctx.root, target, map)
            }
        };
        let mut t = target.borrow_mut();
        t.data_mut(nc).parent = Some(parent);
        match &mut t.data_mut(parent).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.push(ChildEntry::Local(nc))
            }
            _ => {}
        }
    }
}

impl NodeHandle {
    // ------------------------------------------------------------------
    // Mutation primitives (builders + XQuery Update Facility).
    // ------------------------------------------------------------------

    fn same_arena(&self, other: &NodeHandle) -> bool {
        Rc::ptr_eq(&self.arena, &other.arena)
    }

    /// Import `node` into this handle's arena if needed (deep copy);
    /// returns a handle in this arena.
    pub fn import(&self, node: &NodeHandle) -> NodeHandle {
        if self.same_arena(node) && node.link.is_none() {
            node.clone()
        } else {
            node.deep_copy_into(&self.arena)
        }
    }

    /// Deep-copy this node (and subtree) into the target arena,
    /// producing a detached node with fresh identity.
    pub fn deep_copy_into(&self, target: &SharedArena) -> NodeHandle {
        match self.kind() {
            NodeKind::Document => {
                let body = NodeBody::Document { children: Vec::new() };
                let id = target.borrow_mut().alloc(None, body);
                let copy = NodeHandle::new(target.clone(), id);
                for c in self.children() {
                    let cc = c.deep_copy_into(target);
                    copy.push_child_raw(&cc);
                }
                copy
            }
            NodeKind::Element => {
                let name = self.name().expect("element has name");
                let ns_decls = self.ns_decls();
                let body = NodeBody::Element {
                    name,
                    attrs: Vec::new(),
                    children: Vec::new(),
                    ns_decls,
                };
                let id = target.borrow_mut().alloc(None, body);
                let copy = NodeHandle::new(target.clone(), id);
                for a in self.attributes() {
                    let ac = a.deep_copy_into(target);
                    copy.push_attribute_raw(&ac);
                }
                for c in self.children() {
                    let cc = c.deep_copy_into(target);
                    copy.push_child_raw(&cc);
                }
                copy
            }
            NodeKind::Attribute => NodeHandle::new_attribute(
                target,
                self.name().expect("attribute has name"),
                self.content_shared().unwrap_or_else(|| Rc::from("")),
            ),
            NodeKind::Text => NodeHandle::new_text(
                target,
                self.content_shared().unwrap_or_else(|| Rc::from("")),
            ),
            NodeKind::Comment => NodeHandle::new_comment(
                target,
                self.content_shared().unwrap_or_else(|| Rc::from("")),
            ),
            NodeKind::Pi => {
                let t = self.with(|d| match &d.body {
                    NodeBody::Pi { target, .. } => target.clone(),
                    _ => unreachable!(),
                });
                NodeHandle::new_pi(
                    target,
                    t,
                    self.content_shared().unwrap_or_else(|| Rc::from("")),
                )
            }
        }
    }

    /// Deep-copy within a fresh arena (the XQuery `element {…}`
    /// constructor copies content, giving new identities).
    pub fn deep_copy(&self) -> NodeHandle {
        let arena = NodeArena::new();
        self.deep_copy_into(&arena)
    }

    fn push_child_raw(&self, child: &NodeHandle) {
        debug_assert!(self.same_arena(child));
        debug_assert!(self.link.is_none() && child.link.is_none());
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(child.id).parent = Some(self.id);
        match &mut arena.data_mut(self.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.push(ChildEntry::Local(child.id))
            }
            _ => panic!("push_child on leaf node"),
        }
    }

    fn push_attribute_raw(&self, attr: &NodeHandle) {
        debug_assert!(self.same_arena(attr));
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(attr.id).parent = Some(self.id);
        match &mut arena.data_mut(self.id).body {
            NodeBody::Element { attrs, .. } => attrs.push(attr.id),
            _ => panic!("push_attribute on non-element"),
        }
    }

    /// Append a child, importing across arenas and merging adjacent
    /// text nodes (XDM: no two adjacent text siblings).
    pub fn append_child(&self, child: &NodeHandle) -> XdmResult<NodeHandle> {
        let me = self.ensure_local();
        match me.kind() {
            NodeKind::Document | NodeKind::Element => {}
            k => {
                return Err(XdmError::new(
                    ErrorCode::XUTY0008,
                    format!("cannot append child to {k:?} node"),
                ))
            }
        }
        if child.kind() == NodeKind::Attribute {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "cannot append attribute as child",
            ));
        }
        let child = me.import(child);
        // Merge adjacent text.
        if child.kind() == NodeKind::Text {
            if let Some(last) = me.children().last() {
                if last.kind() == NodeKind::Text {
                    let merged = format!(
                        "{}{}",
                        last.content().unwrap_or_default(),
                        child.content().unwrap_or_default()
                    );
                    last.set_content(merged);
                    return Ok(last.clone());
                }
            }
            if child.content().as_deref() == Some("") {
                return Ok(child);
            }
        }
        me.push_child_raw(&child);
        Ok(child)
    }

    /// Set or add an attribute on an element.
    pub fn set_attribute(&self, attr: &NodeHandle) -> XdmResult<NodeHandle> {
        let me = self.ensure_local();
        if me.kind() != NodeKind::Element {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "attributes only on elements",
            ));
        }
        if attr.kind() != NodeKind::Attribute {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "set_attribute requires an attribute node",
            ));
        }
        let attr = me.import(attr);
        let name = attr.name().expect("attribute has name");
        if let Some(existing) = me.attribute(&name) {
            existing.set_content(attr.content().unwrap_or_default());
            Ok(existing)
        } else {
            me.push_attribute_raw(&attr);
            Ok(attr)
        }
    }

    /// Detach this node from its parent (XUF `delete`). Detaching a
    /// grafted child removes the graft entry from its host without
    /// copying; detaching *inside* a grafted region copies-on-write
    /// first.
    pub fn detach(&self) {
        let me = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        if let Some(link) = &me.link {
            if me.id == link.ctx.root && Rc::ptr_eq(&me.arena, &link.ctx.sub) {
                {
                    let mut host = link.host_arena.borrow_mut();
                    match &mut host.data_mut(link.host_id).body {
                        NodeBody::Document { children }
                        | NodeBody::Element { children, .. } => children.retain(|e| {
                            !matches!(e, ChildEntry::Graft(c) if Rc::ptr_eq(c, &link.ctx))
                        }),
                        _ => {}
                    }
                }
                *link.ctx.state.borrow_mut() = GraftState::Detached;
                return;
            }
            me.ensure_local().detach();
            return;
        }
        let parent = me.with(|d| d.parent);
        let Some(pid) = parent else { return };
        let mut arena = me.arena.borrow_mut();
        match &mut arena.data_mut(pid).body {
            NodeBody::Document { children } => {
                children.retain(|e| !matches!(e, ChildEntry::Local(c) if *c == me.id))
            }
            NodeBody::Element { children, attrs, .. } => {
                children.retain(|e| !matches!(e, ChildEntry::Local(c) if *c == me.id));
                attrs.retain(|a| *a != me.id);
            }
            _ => {}
        }
        arena.data_mut(me.id).parent = None;
    }

    /// Insert `new` immediately before this node among its siblings
    /// (XUF `insert … before`).
    pub fn insert_before(&self, new: &NodeHandle) -> XdmResult<()> {
        self.insert_adjacent(new, 0)
    }

    /// Insert `new` immediately after this node among its siblings
    /// (XUF `insert … after`).
    pub fn insert_after(&self, new: &NodeHandle) -> XdmResult<()> {
        self.insert_adjacent(new, 1)
    }

    fn insert_adjacent(&self, new: &NodeHandle, offset: usize) -> XdmResult<()> {
        let parent = self.parent().ok_or_else(|| {
            XdmError::new(ErrorCode::XUTY0008, "target has no parent")
        })?;
        // Mutating the sibling list of a node inside a grafted region
        // copies the region first; the target's position is recomputed
        // through the recorded id map afterwards.
        let parent = parent.ensure_local();
        let me = match self.resolve_if_moved() {
            Some(h) => h,
            None => self.clone(),
        };
        let pos = parent
            .children()
            .iter()
            .position(|c| *c == me)
            .ok_or_else(|| XdmError::new(ErrorCode::XUTY0008, "target not a child"))?;
        let new = parent.import(new);
        let mut arena = parent.arena.borrow_mut();
        arena.data_mut(new.id).parent = Some(parent.id);
        match &mut arena.data_mut(parent.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.insert(pos + offset, ChildEntry::Local(new.id));
                Ok(())
            }
            _ => Err(XdmError::new(ErrorCode::XUTY0008, "parent cannot hold children")),
        }
    }

    /// Insert `new` as the first child (XUF `insert … as first into`).
    pub fn insert_first_child(&self, new: &NodeHandle) -> XdmResult<()> {
        let me = self.ensure_local();
        match me.kind() {
            NodeKind::Document | NodeKind::Element => {}
            _ => {
                return Err(XdmError::new(
                    ErrorCode::XUTY0008,
                    "insert into leaf node",
                ))
            }
        }
        let new = me.import(new);
        let mut arena = me.arena.borrow_mut();
        arena.data_mut(new.id).parent = Some(me.id);
        match &mut arena.data_mut(me.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.insert(0, ChildEntry::Local(new.id));
                Ok(())
            }
            _ => unreachable!(),
        }
    }

    /// Replace this node with a sequence of new nodes (XUF `replace`).
    pub fn replace_with(&self, news: &[NodeHandle]) -> XdmResult<()> {
        let parent = self.parent().ok_or_else(|| {
            XdmError::new(ErrorCode::XUTY0008, "replace target has no parent")
        })?;
        if self.kind() == NodeKind::Attribute {
            for n in news {
                if n.kind() != NodeKind::Attribute {
                    return Err(XdmError::new(
                        ErrorCode::XUTY0008,
                        "attribute may only be replaced by attributes",
                    ));
                }
            }
            self.detach();
            for n in news {
                parent.set_attribute(n)?;
            }
            return Ok(());
        }
        for n in news {
            self.insert_before(n)?;
        }
        self.detach();
        Ok(())
    }

    /// Replace the value of a text/attribute node, or the entire text
    /// content of an element (XUF `replace value of`).
    pub fn replace_value(&self, value: &str) -> XdmResult<()> {
        match self.kind() {
            NodeKind::Attribute | NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                self.set_content(value.to_string());
                Ok(())
            }
            NodeKind::Element => {
                let me = self.ensure_local();
                for c in me.children() {
                    c.detach();
                }
                if !value.is_empty() {
                    let t = NodeHandle::new_text(&me.arena, value);
                    me.push_child_raw(&t);
                }
                Ok(())
            }
            NodeKind::Document => Err(XdmError::new(
                ErrorCode::XUTY0008,
                "cannot replace value of document node",
            )),
        }
    }

    /// Rename an element or attribute (XUF `rename`).
    pub fn rename(&self, new_name: QName) -> XdmResult<()> {
        let me = self.ensure_local();
        let mut arena = me.arena.borrow_mut();
        match &mut arena.data_mut(me.id).body {
            NodeBody::Element { name, .. } | NodeBody::Attribute { name, .. } => {
                *name = new_name;
                Ok(())
            }
            _ => Err(XdmError::new(
                ErrorCode::XUTY0008,
                "rename target must be element or attribute",
            )),
        }
    }

    fn set_content(&self, value: String) {
        let me = self.ensure_local();
        let mut arena = me.arena.borrow_mut();
        match &mut arena.data_mut(me.id).body {
            NodeBody::Attribute { value: v, .. } => *v = Rc::from(value),
            NodeBody::Text { content }
            | NodeBody::Comment { content }
            | NodeBody::Pi { content, .. } => *content = Rc::from(value),
            _ => {}
        }
    }

    /// Deep structural equality (`fn:deep-equal` on nodes): same kind,
    /// name, attributes (order-insensitive), and children (order-
    /// sensitive), ignoring node identity.
    pub fn deep_equal(&self, other: &NodeHandle) -> bool {
        if self.kind() != other.kind() || self.name() != other.name() {
            return false;
        }
        match self.kind() {
            NodeKind::Attribute | NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                self.content() == other.content()
            }
            NodeKind::Document | NodeKind::Element => {
                let (mut a_attrs, mut b_attrs) = (self.attributes(), other.attributes());
                if a_attrs.len() != b_attrs.len() {
                    return false;
                }
                // Expanded-name sort without allocating clark strings.
                let by_name = |x: &NodeHandle, y: &NodeHandle| match (x.name(), y.name())
                {
                    (Some(a), Some(b)) => a.cmp_expanded(&b),
                    (a, b) => a.is_some().cmp(&b.is_some()),
                };
                a_attrs.sort_by(by_name);
                b_attrs.sort_by(by_name);
                if !a_attrs
                    .iter()
                    .zip(&b_attrs)
                    .all(|(x, y)| x.name() == y.name() && x.content() == y.content())
                {
                    return false;
                }
                // Ignore comments and PIs in content comparison.
                let filt = |v: Vec<NodeHandle>| -> Vec<NodeHandle> {
                    v.into_iter()
                        .filter(|c| {
                            matches!(c.kind(), NodeKind::Element | NodeKind::Text)
                        })
                        .collect()
                };
                let (ac, bc) = (filt(self.children()), filt(other.children()));
                ac.len() == bc.len()
                    && ac.iter().zip(&bc).all(|(x, y)| x.deep_equal(y))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> NodeHandle {
        // <root a="1"><x>hello</x><y><z/>world</y></root>
        let root = NodeHandle::root_element(QName::new("root"));
        let arena = root.arena().clone();
        let a = NodeHandle::new_attribute(&arena, QName::new("a"), "1");
        root.set_attribute(&a).unwrap();
        let x = NodeHandle::new_element(&arena, QName::new("x"));
        root.append_child(&x).unwrap();
        x.append_child(&NodeHandle::new_text(&arena, "hello")).unwrap();
        let y = NodeHandle::new_element(&arena, QName::new("y"));
        root.append_child(&y).unwrap();
        let z = NodeHandle::new_element(&arena, QName::new("z"));
        y.append_child(&z).unwrap();
        y.append_child(&NodeHandle::new_text(&arena, "world")).unwrap();
        root
    }

    #[test]
    fn navigation_and_string_value() {
        let root = sample_tree();
        assert_eq!(root.kind(), NodeKind::Element);
        assert_eq!(root.children().len(), 2);
        assert_eq!(root.string_value(), "helloworld");
        let x = &root.children()[0];
        assert_eq!(x.name().unwrap().local, "x");
        assert_eq!(x.string_value(), "hello");
        assert_eq!(x.parent().unwrap(), root);
        assert_eq!(root.attribute(&QName::new("a")).unwrap().content().unwrap(), "1");
        assert!(root.attribute(&QName::new("b")).is_none());
    }

    #[test]
    fn identity_vs_structural_equality() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        assert_ne!(t1, t2); // distinct identities
        assert!(t1.deep_equal(&t2)); // same structure
        let copy = t1.deep_copy();
        assert_ne!(t1, copy);
        assert!(t1.deep_equal(&copy));
    }

    #[test]
    fn document_order_is_preorder() {
        let root = sample_tree();
        let kids = root.children();
        let (x, y) = (&kids[0], &kids[1]);
        let z = &y.children()[0];
        assert_eq!(root.document_order(x), std::cmp::Ordering::Less);
        assert_eq!(x.document_order(y), std::cmp::Ordering::Less);
        assert_eq!(y.document_order(z), std::cmp::Ordering::Less);
        assert_eq!(x.document_order(z), std::cmp::Ordering::Less);
        assert_eq!(z.document_order(x), std::cmp::Ordering::Greater);
        assert_eq!(x.document_order(x), std::cmp::Ordering::Equal);
        // Attribute follows the element but precedes its children.
        let a = root.attribute(&QName::new("a")).unwrap();
        assert_eq!(root.document_order(&a), std::cmp::Ordering::Less);
        assert_eq!(a.document_order(x), std::cmp::Ordering::Less);
    }

    #[test]
    fn cross_arena_order_is_stable() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        let o12 = t1.document_order(&t2);
        let o21 = t2.document_order(&t1);
        assert_ne!(o12, std::cmp::Ordering::Equal);
        assert_eq!(o12, o21.reverse());
    }

    #[test]
    fn descendants_in_document_order() {
        let root = sample_tree();
        let names: Vec<String> = root
            .descendants()
            .iter()
            .map(|n| match n.kind() {
                NodeKind::Element => n.name().unwrap().local.to_string(),
                NodeKind::Text => format!("#{}", n.content().unwrap()),
                _ => "?".into(),
            })
            .collect();
        assert_eq!(names, vec!["x", "#hello", "y", "z", "#world"]);
    }

    #[test]
    fn text_merging_on_append() {
        let e = NodeHandle::root_element(QName::new("e"));
        let arena = e.arena().clone();
        e.append_child(&NodeHandle::new_text(&arena, "a")).unwrap();
        e.append_child(&NodeHandle::new_text(&arena, "b")).unwrap();
        assert_eq!(e.children().len(), 1);
        assert_eq!(e.string_value(), "ab");
        // Empty text is dropped.
        e.append_child(&NodeHandle::new_element(&arena, QName::new("c"))).unwrap();
        e.append_child(&NodeHandle::new_text(&arena, "")).unwrap();
        assert_eq!(e.children().len(), 2);
    }

    #[test]
    fn detach_and_reinsert() {
        let root = sample_tree();
        let kids = root.children();
        let x = kids[0].clone();
        x.detach();
        assert_eq!(root.children().len(), 1);
        assert!(x.parent().is_none());
        let y = &root.children()[0];
        y.insert_before(&x).unwrap();
        assert_eq!(root.children()[0], x);
    }

    #[test]
    fn insert_before_after_first() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let n = NodeHandle::new_element(&arena, QName::new("n"));
        root.children()[0].insert_after(&n).unwrap();
        let names: Vec<_> = root
            .children()
            .iter()
            .map(|c| c.name().unwrap().local)
            .collect();
        assert_eq!(names, vec!["x", "n", "y"]);
        let m = NodeHandle::new_element(&arena, QName::new("m"));
        root.insert_first_child(&m).unwrap();
        assert_eq!(root.children()[0].name().unwrap().local, "m");
    }

    #[test]
    fn replace_with_and_replace_value() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let r1 = NodeHandle::new_element(&arena, QName::new("r1"));
        let r2 = NodeHandle::new_element(&arena, QName::new("r2"));
        root.children()[0].replace_with(&[r1, r2]).unwrap();
        let names: Vec<_> = root
            .children()
            .iter()
            .map(|c| c.name().unwrap().local)
            .collect();
        assert_eq!(names, vec!["r1", "r2", "y"]);
        let y = root.children()[2].clone();
        y.replace_value("flat").unwrap();
        assert_eq!(y.children().len(), 1);
        assert_eq!(y.string_value(), "flat");
    }

    #[test]
    fn rename_element_and_attribute() {
        let root = sample_tree();
        root.rename(QName::new("renamed")).unwrap();
        assert_eq!(root.name().unwrap().local, "renamed");
        let a = root.attribute(&QName::new("a")).unwrap();
        a.rename(QName::new("b")).unwrap();
        assert!(root.attribute(&QName::new("a")).is_none());
        assert!(root.attribute(&QName::new("b")).is_some());
        let t = root.children()[0].children().first().cloned();
        if let Some(t) = t {
            if t.kind() == NodeKind::Text {
                assert!(t.rename(QName::new("x")).is_err());
            }
        }
    }

    #[test]
    fn import_copies_across_arenas() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        let x2 = t2.children()[0].clone();
        let before = t2.children().len();
        t1.append_child(&x2).unwrap();
        // Original tree unaffected — append imported a copy.
        assert_eq!(t2.children().len(), before);
        assert_eq!(t1.children().len(), 3);
    }

    #[test]
    fn set_attribute_overwrites_same_name() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let a2 = NodeHandle::new_attribute(&arena, QName::new("a"), "2");
        root.set_attribute(&a2).unwrap();
        assert_eq!(root.attributes().len(), 1);
        assert_eq!(
            root.attribute(&QName::new("a")).unwrap().content().unwrap(),
            "2"
        );
    }

    #[test]
    fn append_child_rejects_bad_shapes() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let a = NodeHandle::new_attribute(&arena, QName::new("q"), "v");
        assert!(root.append_child(&a).is_err());
        let t = NodeHandle::new_text(&arena, "t");
        assert!(t.append_child(&root).is_err());
    }

    #[test]
    fn deep_equal_ignores_attr_order_and_comments() {
        let e1 = NodeHandle::root_element(QName::new("e"));
        let a1 = e1.arena().clone();
        e1.set_attribute(&NodeHandle::new_attribute(&a1, QName::new("p"), "1")).unwrap();
        e1.set_attribute(&NodeHandle::new_attribute(&a1, QName::new("q"), "2")).unwrap();
        e1.append_child(&NodeHandle::new_comment(&a1, "ignore me")).unwrap();

        let e2 = NodeHandle::root_element(QName::new("e"));
        let a2 = e2.arena().clone();
        e2.set_attribute(&NodeHandle::new_attribute(&a2, QName::new("q"), "2")).unwrap();
        e2.set_attribute(&NodeHandle::new_attribute(&a2, QName::new("p"), "1")).unwrap();

        assert!(e1.deep_equal(&e2));
    }

    #[test]
    fn sibling_axes() {
        let root = sample_tree();
        let kids = root.children();
        let (x, y) = (&kids[0], &kids[1]);
        assert_eq!(x.following_siblings(), vec![y.clone()]);
        assert_eq!(y.preceding_siblings(), vec![x.clone()]);
        assert!(root.following_siblings().is_empty());
    }

    #[test]
    fn ancestors_and_root() {
        let root = sample_tree();
        let z = root.children()[1].children()[0].clone();
        let anc: Vec<_> = z
            .ancestors()
            .iter()
            .map(|n| n.name().unwrap().local.clone())
            .collect();
        assert_eq!(anc, vec!["y", "root"]);
        assert_eq!(z.root(), root);
    }

    #[test]
    fn document_node_wraps_element() {
        let doc = NodeHandle::new_document();
        let e = NodeHandle::new_element(doc.arena(), QName::new("top"));
        doc.append_child(&e).unwrap();
        assert_eq!(doc.kind(), NodeKind::Document);
        assert_eq!(e.root(), doc);
        assert_eq!(doc.children().len(), 1);
    }

    // ------------------------------------------------------------------
    // Grafting.
    // ------------------------------------------------------------------

    fn host_with_graft() -> (NodeHandle, NodeHandle, NodeHandle) {
        // host <profile><local/></profile> grafting sample_tree's root.
        let src = sample_tree();
        let host = NodeHandle::root_element(QName::new("profile"));
        let local = NodeHandle::new_element(host.arena(), QName::new("local"));
        host.append_child(&local).unwrap();
        let view = host.graft_child(&src).unwrap();
        (host, src, view)
    }

    #[test]
    fn graft_reads_like_a_copy() {
        let (host, src, view) = host_with_graft();
        assert!(src.is_sealed());
        assert_eq!(host.children().len(), 2);
        let g = &host.children()[1];
        assert_eq!(*g, view);
        assert_eq!(g.name().unwrap().local, "root");
        assert_eq!(g.string_value(), "helloworld");
        assert_eq!(g.children().len(), 2);
        assert_eq!(g.attribute(&QName::new("a")).unwrap().content().unwrap(), "1");
        // Parent axis walks into the host at the graft root.
        assert_eq!(g.parent().unwrap(), host);
        assert_eq!(g.children()[0].parent().unwrap(), *g);
        assert_eq!(g.children()[0].root(), host);
        // The source node itself still has no parent and its own root.
        assert!(src.parent().is_none());
        assert_eq!(src.root(), src);
    }

    #[test]
    fn graft_view_has_distinct_identity() {
        let (host, src, view) = host_with_graft();
        // The view is a different logical node than the source…
        assert_ne!(view, src);
        // …and a second graft of the same source is different again.
        let host2 = NodeHandle::root_element(QName::new("profile2"));
        let view2 = host2.graft_child(&src).unwrap();
        assert_ne!(view, view2);
        // Stable identity across repeated navigation.
        assert_eq!(host.children()[1], host.children()[1]);
        assert!(view.deep_equal(&src));
        assert!(view.deep_equal(&view2));
    }

    #[test]
    fn graft_document_order_follows_host() {
        let (host, _src, view) = host_with_graft();
        let local = &host.children()[0];
        assert_eq!(host.document_order(local), std::cmp::Ordering::Less);
        assert_eq!(local.document_order(&view), std::cmp::Ordering::Less);
        let inner = &view.children()[0]; // <x>
        assert_eq!(view.document_order(inner), std::cmp::Ordering::Less);
        assert_eq!(inner.document_order(local), std::cmp::Ordering::Greater);
        // Following-sibling across the graft boundary.
        assert_eq!(local.following_siblings(), vec![view.clone()]);
        assert_eq!(view.preceding_siblings(), vec![local.clone()]);
    }

    #[test]
    fn graft_mutation_copies_on_write() {
        let (host, src, view) = host_with_graft();
        let stats0 = crate::intern::xdm_stats();
        let x = view.children()[0].clone(); // <x>hello</x> through the graft
        x.replace_value("changed").unwrap();
        let stats1 = crate::intern::xdm_stats();
        assert_eq!(stats1.graft_cow_materializations,
                   stats0.graft_cow_materializations + 1);
        // The host sees the change; the sealed source does not.
        assert_eq!(host.string_value(), "changedworld");
        assert_eq!(src.string_value(), "helloworld");
        // Outstanding view handles follow the materialized copy.
        assert_eq!(x.string_value(), "changed");
        assert_eq!(view.string_value(), "changedworld");
        assert_eq!(view.parent().unwrap(), host);
        assert_eq!(x.parent().unwrap(), view);
        // Identity of the view is stable across the materialization.
        assert_eq!(host.children()[1], view);
    }

    #[test]
    fn graft_rename_via_view() {
        let (host, src, view) = host_with_graft();
        view.rename(QName::new("renamed")).unwrap();
        assert_eq!(host.children()[1].name().unwrap().local, "renamed");
        assert_eq!(src.name().unwrap().local, "root");
        assert_eq!(view.name().unwrap().local, "renamed");
    }

    #[test]
    fn graft_detach_removes_without_copy() {
        let (host, src, view) = host_with_graft();
        let stats0 = crate::intern::xdm_stats();
        view.detach();
        assert_eq!(host.children().len(), 1);
        assert!(view.parent().is_none());
        assert_eq!(src.children().len(), 2); // source untouched
        let stats1 = crate::intern::xdm_stats();
        assert_eq!(stats1.graft_cow_materializations,
                   stats0.graft_cow_materializations);
    }

    #[test]
    fn graft_insert_around_grafted_child() {
        let (host, _src, view) = host_with_graft();
        let n = NodeHandle::new_element(host.arena(), QName::new("n"));
        view.insert_before(&n).unwrap();
        let names: Vec<_> = host
            .children()
            .iter()
            .map(|c| c.name().unwrap().local)
            .collect();
        assert_eq!(names, vec!["local", "n", "root"]);
    }

    #[test]
    fn graftable_conditions() {
        let host = NodeHandle::root_element(QName::new("h"));
        let src = sample_tree();
        // Parentless cross-arena element: graftable.
        assert!(src.graftable_into(host.arena()));
        // Same arena: not graftable.
        let sib = NodeHandle::new_element(host.arena(), QName::new("s"));
        assert!(!sib.graftable_into(host.arena()));
        // Attached child of an unsealed arena: not graftable…
        let child = src.children()[0].clone();
        assert!(!child.graftable_into(host.arena()));
        // …until the arena is sealed.
        src.seal();
        assert!(child.graftable_into(host.arena()));
        // Text node: never graftable.
        let t = NodeHandle::new_text(src.arena(), "t");
        assert!(!t.graftable_into(host.arena()));
    }

    #[test]
    fn graft_attached_child_of_sealed_arena() {
        let src = sample_tree();
        src.seal();
        let y = src.children()[1].clone(); // attached <y> inside the sealed tree
        let host = NodeHandle::root_element(QName::new("h"));
        let view = host.graft_child(&y).unwrap();
        // Parent redirects to the host even though the source node has
        // a raw parent in its own arena.
        assert_eq!(view.parent().unwrap(), host);
        assert_eq!(view.string_value(), "world");
        assert_eq!(y.parent().unwrap(), src);
    }

    #[test]
    fn graft_counters_account_avoided_copies() {
        let src = sample_tree(); // 8 records: root + attr + x + text + y + z + text
        let host = NodeHandle::root_element(QName::new("h"));
        let s0 = crate::intern::xdm_stats();
        host.graft_child(&src).unwrap();
        let d = crate::intern::xdm_stats().since(&s0);
        assert_eq!(d.subtrees_grafted, 1);
        assert_eq!(d.deep_copy_nodes_avoided, 7);
        assert_eq!(d.nodes_built, 0);
    }

    #[test]
    fn nested_graft_reads_and_cow() {
        // source -> grafted into mid; mid -> grafted into top.
        let src = sample_tree();
        let mid = NodeHandle::root_element(QName::new("mid"));
        mid.graft_child(&src).unwrap();
        let top = NodeHandle::root_element(QName::new("top"));
        let mid_view = top.graft_child(&mid).unwrap();
        assert_eq!(top.string_value(), "helloworld");
        let deep = mid_view.children()[0].children()[0].clone(); // <x> via both grafts
        assert_eq!(deep.root(), top);
        deep.replace_value("X").unwrap();
        assert_eq!(top.string_value(), "Xworld");
        assert_eq!(mid.string_value(), "helloworld");
        assert_eq!(src.string_value(), "helloworld");
    }

    #[test]
    fn single_text_fast_path_matches_collector() {
        let e = NodeHandle::root_element(QName::new("e"));
        e.append_child(&NodeHandle::new_text(e.arena(), "only")).unwrap();
        assert_eq!(e.string_value(), "only");
        let empty = NodeHandle::root_element(QName::new("n"));
        assert_eq!(empty.string_value(), "");
    }
}
