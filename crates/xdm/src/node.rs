//! The XDM node store.
//!
//! Nodes live in a [`NodeArena`] — a flat `Vec` of node records indexed
//! by [`NodeId`] — and are referenced through [`NodeHandle`]s that pair
//! a shared arena pointer with an id. This gives us:
//!
//! - **node identity** (`is` comparisons) as `(arena, id)` equality;
//! - **document order** as a structural path comparison within an
//!   arena, with a global arena stamp ordering nodes from different
//!   documents (the XDM permits any stable ordering across trees);
//! - cheap **in-place mutation** for the XQuery Update Facility
//!   primitives (insert, delete, replace, rename);
//! - O(1) parent/child navigation for path expressions.
//!
//! The store is deliberately single-threaded (`Rc<RefCell<…>>`): one
//! XQSE program executes on one thread, matching the paper's
//! sequential statement-execution model. Cross-thread concurrency in
//! the reproduction lives in the ALDSP source layer, not in XDM.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::atomic::AtomicValue;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::qname::QName;

/// Index of a node within its arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The seven XDM node kinds (we omit namespace nodes; in-scope
/// namespaces are tracked on elements directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Document root node.
    Document,
    /// Element node.
    Element,
    /// Attribute node.
    Attribute,
    /// Text node.
    Text,
    /// Comment node.
    Comment,
    /// Processing instruction node.
    Pi,
}

#[derive(Debug, Clone)]
enum NodeBody {
    Document {
        children: Vec<NodeId>,
    },
    Element {
        name: QName,
        attrs: Vec<NodeId>,
        children: Vec<NodeId>,
        /// Namespace declarations written on this element
        /// (prefix → URI; empty prefix = default namespace).
        ns_decls: Vec<(String, String)>,
    },
    Attribute {
        name: QName,
        value: String,
    },
    Text {
        content: String,
    },
    Comment {
        content: String,
    },
    Pi {
        target: String,
        content: String,
    },
}

#[derive(Debug, Clone)]
struct NodeData {
    parent: Option<NodeId>,
    body: NodeBody,
}

static ARENA_STAMP: AtomicU64 = AtomicU64::new(1);

/// A flat arena of nodes forming one or more trees.
#[derive(Debug)]
pub struct NodeArena {
    stamp: u64,
    nodes: Vec<NodeData>,
}

/// Shared, interiorly mutable arena pointer.
pub type SharedArena = Rc<RefCell<NodeArena>>;

impl NodeArena {
    /// Create a fresh arena with a globally unique stamp.
    pub fn new() -> SharedArena {
        Rc::new(RefCell::new(NodeArena {
            stamp: ARENA_STAMP.fetch_add(1, AtomicOrdering::Relaxed),
            nodes: Vec::new(),
        }))
    }

    /// The arena's globally unique creation stamp.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of node slots allocated (including detached nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn alloc(&mut self, parent: Option<NodeId>, body: NodeBody) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { parent, body });
        id
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.0 as usize]
    }
}

impl Default for NodeArena {
    fn default() -> Self {
        NodeArena {
            stamp: ARENA_STAMP.fetch_add(1, AtomicOrdering::Relaxed),
            nodes: Vec::new(),
        }
    }
}

/// A reference to a node: shared arena + id. Cloning is cheap.
#[derive(Clone)]
pub struct NodeHandle {
    arena: SharedArena,
    id: NodeId,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NodeHandle({:?}@arena{})",
            self.id,
            self.arena.borrow().stamp
        )
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.arena, &other.arena) && self.id == other.id
    }
}
impl Eq for NodeHandle {}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Rc::as_ptr(&self.arena) as usize).hash(state);
        self.id.hash(state);
    }
}

/// One step on the path from a root to a node; attributes sort before
/// children, matching XDM document order (attributes follow their
/// element but precede its children — we encode "element < its attrs
/// < its children" by path prefix ordering plus this step ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PathStep {
    Attr(usize),
    Child(usize),
}

impl NodeHandle {
    /// Construct a handle (mostly for internal/builder use).
    pub fn new(arena: SharedArena, id: NodeId) -> NodeHandle {
        NodeHandle { arena, id }
    }

    /// The node's arena.
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// The node's id within its arena.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Create a new document node in a fresh arena.
    pub fn new_document() -> NodeHandle {
        let arena = NodeArena::new();
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Document { children: Vec::new() });
        NodeHandle { arena, id }
    }

    /// Create a detached element node in the given arena.
    pub fn new_element(arena: &SharedArena, name: QName) -> NodeHandle {
        let id = arena.borrow_mut().alloc(
            None,
            NodeBody::Element {
                name,
                attrs: Vec::new(),
                children: Vec::new(),
                ns_decls: Vec::new(),
            },
        );
        NodeHandle { arena: arena.clone(), id }
    }

    /// Create a detached element in a fresh arena.
    pub fn root_element(name: QName) -> NodeHandle {
        let arena = NodeArena::new();
        Self::new_element(&arena, name)
    }

    /// Create a detached attribute node.
    pub fn new_attribute(
        arena: &SharedArena,
        name: QName,
        value: impl Into<String>,
    ) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Attribute { name, value: value.into() });
        NodeHandle { arena: arena.clone(), id }
    }

    /// Create a detached text node.
    pub fn new_text(arena: &SharedArena, content: impl Into<String>) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Text { content: content.into() });
        NodeHandle { arena: arena.clone(), id }
    }

    /// Create a detached comment node.
    pub fn new_comment(arena: &SharedArena, content: impl Into<String>) -> NodeHandle {
        let id = arena
            .borrow_mut()
            .alloc(None, NodeBody::Comment { content: content.into() });
        NodeHandle { arena: arena.clone(), id }
    }

    /// Create a detached processing-instruction node.
    pub fn new_pi(
        arena: &SharedArena,
        target: impl Into<String>,
        content: impl Into<String>,
    ) -> NodeHandle {
        let id = arena.borrow_mut().alloc(
            None,
            NodeBody::Pi { target: target.into(), content: content.into() },
        );
        NodeHandle { arena: arena.clone(), id }
    }

    fn with<R>(&self, f: impl FnOnce(&NodeData) -> R) -> R {
        let arena = self.arena.borrow();
        f(arena.data(self.id))
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.with(|d| match d.body {
            NodeBody::Document { .. } => NodeKind::Document,
            NodeBody::Element { .. } => NodeKind::Element,
            NodeBody::Attribute { .. } => NodeKind::Attribute,
            NodeBody::Text { .. } => NodeKind::Text,
            NodeBody::Comment { .. } => NodeKind::Comment,
            NodeBody::Pi { .. } => NodeKind::Pi,
        })
    }

    /// The node name (elements and attributes; PI target is exposed as
    /// a no-namespace QName).
    pub fn name(&self) -> Option<QName> {
        self.with(|d| match &d.body {
            NodeBody::Element { name, .. } | NodeBody::Attribute { name, .. } => {
                Some(name.clone())
            }
            NodeBody::Pi { target, .. } => Some(QName::new(target.clone())),
            _ => None,
        })
    }

    /// Parent node, if attached.
    pub fn parent(&self) -> Option<NodeHandle> {
        self.with(|d| d.parent)
            .map(|p| NodeHandle { arena: self.arena.clone(), id: p })
    }

    /// Child nodes in order (document and element nodes).
    pub fn children(&self) -> Vec<NodeHandle> {
        self.with(|d| match &d.body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.clone()
            }
            _ => Vec::new(),
        })
        .into_iter()
        .map(|id| NodeHandle { arena: self.arena.clone(), id })
        .collect()
    }

    /// Attribute nodes in order (element nodes).
    pub fn attributes(&self) -> Vec<NodeHandle> {
        self.with(|d| match &d.body {
            NodeBody::Element { attrs, .. } => attrs.clone(),
            _ => Vec::new(),
        })
        .into_iter()
        .map(|id| NodeHandle { arena: self.arena.clone(), id })
        .collect()
    }

    /// Look up an attribute by expanded name.
    pub fn attribute(&self, name: &QName) -> Option<NodeHandle> {
        self.attributes()
            .into_iter()
            .find(|a| a.name().as_ref() == Some(name))
    }

    /// The attribute's or text-ish node's own content string.
    pub fn content(&self) -> Option<String> {
        self.with(|d| match &d.body {
            NodeBody::Attribute { value, .. } => Some(value.clone()),
            NodeBody::Text { content }
            | NodeBody::Comment { content }
            | NodeBody::Pi { content, .. } => Some(content.clone()),
            _ => None,
        })
    }

    /// Namespace declarations written on this element.
    pub fn ns_decls(&self) -> Vec<(String, String)> {
        self.with(|d| match &d.body {
            NodeBody::Element { ns_decls, .. } => ns_decls.clone(),
            _ => Vec::new(),
        })
    }

    /// Add a namespace declaration to an element.
    pub fn add_ns_decl(&self, prefix: impl Into<String>, uri: impl Into<String>) {
        let mut arena = self.arena.borrow_mut();
        if let NodeBody::Element { ns_decls, .. } = &mut arena.data_mut(self.id).body {
            ns_decls.push((prefix.into(), uri.into()));
        }
    }

    /// The XDM string value: for elements/documents the concatenation
    /// of descendant text; for attributes/text/comments/PIs the content.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                self.collect_text(&mut out);
                out
            }
            _ => self.content().unwrap_or_default(),
        }
    }

    fn collect_text(&self, out: &mut String) {
        for c in self.children() {
            match c.kind() {
                NodeKind::Text => out.push_str(&c.content().unwrap_or_default()),
                NodeKind::Element => c.collect_text(out),
                _ => {}
            }
        }
    }

    /// The typed value. Without schema validation every node is
    /// untyped, so this is `xs:untypedAtomic(string-value)`.
    pub fn typed_value(&self) -> AtomicValue {
        AtomicValue::Untyped(self.string_value())
    }

    /// The root of the tree containing this node.
    pub fn root(&self) -> NodeHandle {
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            cur = p;
        }
        cur
    }

    /// All descendant nodes in document order (excluding attributes
    /// and self).
    pub fn descendants(&self) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        fn walk(n: &NodeHandle, out: &mut Vec<NodeHandle>) {
            for c in n.children() {
                out.push(c.clone());
                walk(&c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Ancestors from parent to root.
    pub fn ancestors(&self) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(p) = cur {
            cur = p.parent();
            out.push(p);
        }
        out
    }

    /// Following siblings in document order.
    pub fn following_siblings(&self) -> Vec<NodeHandle> {
        match self.parent() {
            None => Vec::new(),
            Some(p) => {
                let sibs = p.children();
                let pos = sibs.iter().position(|s| s == self);
                match pos {
                    Some(i) => sibs[i + 1..].to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Preceding siblings in reverse document order.
    pub fn preceding_siblings(&self) -> Vec<NodeHandle> {
        match self.parent() {
            None => Vec::new(),
            Some(p) => {
                let sibs = p.children();
                let pos = sibs.iter().position(|s| s == self);
                match pos {
                    Some(i) => {
                        let mut v = sibs[..i].to_vec();
                        v.reverse();
                        v
                    }
                    None => Vec::new(),
                }
            }
        }
    }

    /// Structural path from the root, for document-order comparison.
    fn path(&self) -> Vec<PathStep> {
        let mut steps = Vec::new();
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            let step = if cur.kind() == NodeKind::Attribute {
                let idx = p
                    .attributes()
                    .iter()
                    .position(|a| *a == cur)
                    .expect("attribute listed in parent");
                PathStep::Attr(idx)
            } else {
                let idx = p
                    .children()
                    .iter()
                    .position(|c| *c == cur)
                    .expect("child listed in parent");
                PathStep::Child(idx)
            };
            steps.push(step);
            cur = p;
        }
        steps.reverse();
        steps
    }

    /// Total document order: within one arena, roots are ordered by id
    /// and nodes by (root, path); across arenas, by arena stamp.
    pub fn document_order(&self, other: &NodeHandle) -> std::cmp::Ordering {
        if self == other {
            return std::cmp::Ordering::Equal;
        }
        let (sa, sb) = (self.arena.borrow().stamp, other.arena.borrow().stamp);
        if sa != sb {
            return sa.cmp(&sb);
        }
        let (ra, rb) = (self.root(), other.root());
        if ra != rb {
            return ra.id.cmp(&rb.id);
        }
        // Same tree: ancestors precede descendants; otherwise compare
        // the first differing path step.
        self.path().cmp(&other.path())
    }

    // ------------------------------------------------------------------
    // Mutation primitives (builders + XQuery Update Facility).
    // ------------------------------------------------------------------

    fn same_arena(&self, other: &NodeHandle) -> bool {
        Rc::ptr_eq(&self.arena, &other.arena)
    }

    /// Import `node` into this handle's arena if needed (deep copy);
    /// returns a handle in this arena.
    pub fn import(&self, node: &NodeHandle) -> NodeHandle {
        if self.same_arena(node) {
            node.clone()
        } else {
            node.deep_copy_into(&self.arena)
        }
    }

    /// Deep-copy this node (and subtree) into the target arena,
    /// producing a detached node with fresh identity.
    pub fn deep_copy_into(&self, target: &SharedArena) -> NodeHandle {
        match self.kind() {
            NodeKind::Document => {
                let body = NodeBody::Document { children: Vec::new() };
                let id = target.borrow_mut().alloc(None, body);
                let copy = NodeHandle { arena: target.clone(), id };
                for c in self.children() {
                    let cc = c.deep_copy_into(target);
                    copy.push_child_raw(&cc);
                }
                copy
            }
            NodeKind::Element => {
                let name = self.name().expect("element has name");
                let ns_decls = self.ns_decls();
                let body = NodeBody::Element {
                    name,
                    attrs: Vec::new(),
                    children: Vec::new(),
                    ns_decls,
                };
                let id = target.borrow_mut().alloc(None, body);
                let copy = NodeHandle { arena: target.clone(), id };
                for a in self.attributes() {
                    let ac = a.deep_copy_into(target);
                    copy.push_attribute_raw(&ac);
                }
                for c in self.children() {
                    let cc = c.deep_copy_into(target);
                    copy.push_child_raw(&cc);
                }
                copy
            }
            NodeKind::Attribute => NodeHandle::new_attribute(
                target,
                self.name().expect("attribute has name"),
                self.content().unwrap_or_default(),
            ),
            NodeKind::Text => {
                NodeHandle::new_text(target, self.content().unwrap_or_default())
            }
            NodeKind::Comment => {
                NodeHandle::new_comment(target, self.content().unwrap_or_default())
            }
            NodeKind::Pi => {
                let (t, c) = self.with(|d| match &d.body {
                    NodeBody::Pi { target, content } => {
                        (target.clone(), content.clone())
                    }
                    _ => unreachable!(),
                });
                NodeHandle::new_pi(target, t, c)
            }
        }
    }

    /// Deep-copy within a fresh arena (the XQuery `element {…}`
    /// constructor copies content, giving new identities).
    pub fn deep_copy(&self) -> NodeHandle {
        let arena = NodeArena::new();
        self.deep_copy_into(&arena)
    }

    fn push_child_raw(&self, child: &NodeHandle) {
        debug_assert!(self.same_arena(child));
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(child.id).parent = Some(self.id);
        match &mut arena.data_mut(self.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.push(child.id)
            }
            _ => panic!("push_child on leaf node"),
        }
    }

    fn push_attribute_raw(&self, attr: &NodeHandle) {
        debug_assert!(self.same_arena(attr));
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(attr.id).parent = Some(self.id);
        match &mut arena.data_mut(self.id).body {
            NodeBody::Element { attrs, .. } => attrs.push(attr.id),
            _ => panic!("push_attribute on non-element"),
        }
    }

    /// Append a child, importing across arenas and merging adjacent
    /// text nodes (XDM: no two adjacent text siblings).
    pub fn append_child(&self, child: &NodeHandle) -> XdmResult<NodeHandle> {
        match self.kind() {
            NodeKind::Document | NodeKind::Element => {}
            k => {
                return Err(XdmError::new(
                    ErrorCode::XUTY0008,
                    format!("cannot append child to {k:?} node"),
                ))
            }
        }
        if child.kind() == NodeKind::Attribute {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "cannot append attribute as child",
            ));
        }
        let child = self.import(child);
        // Merge adjacent text.
        if child.kind() == NodeKind::Text {
            if let Some(last) = self.children().last() {
                if last.kind() == NodeKind::Text {
                    let merged = format!(
                        "{}{}",
                        last.content().unwrap_or_default(),
                        child.content().unwrap_or_default()
                    );
                    last.set_content(merged);
                    return Ok(last.clone());
                }
            }
            if child.content().as_deref() == Some("") {
                return Ok(child);
            }
        }
        self.push_child_raw(&child);
        Ok(child)
    }

    /// Set or add an attribute on an element.
    pub fn set_attribute(&self, attr: &NodeHandle) -> XdmResult<NodeHandle> {
        if self.kind() != NodeKind::Element {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "attributes only on elements",
            ));
        }
        if attr.kind() != NodeKind::Attribute {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "set_attribute requires an attribute node",
            ));
        }
        let attr = self.import(attr);
        let name = attr.name().expect("attribute has name");
        if let Some(existing) = self.attribute(&name) {
            existing.set_content(attr.content().unwrap_or_default());
            Ok(existing)
        } else {
            self.push_attribute_raw(&attr);
            Ok(attr)
        }
    }

    /// Detach this node from its parent (XUF `delete`).
    pub fn detach(&self) {
        let parent = self.with(|d| d.parent);
        let Some(pid) = parent else { return };
        let mut arena = self.arena.borrow_mut();
        match &mut arena.data_mut(pid).body {
            NodeBody::Document { children } => children.retain(|c| *c != self.id),
            NodeBody::Element { children, attrs, .. } => {
                children.retain(|c| *c != self.id);
                attrs.retain(|a| *a != self.id);
            }
            _ => {}
        }
        arena.data_mut(self.id).parent = None;
    }

    /// Insert `new` immediately before this node among its siblings
    /// (XUF `insert … before`).
    pub fn insert_before(&self, new: &NodeHandle) -> XdmResult<()> {
        self.insert_adjacent(new, 0)
    }

    /// Insert `new` immediately after this node among its siblings
    /// (XUF `insert … after`).
    pub fn insert_after(&self, new: &NodeHandle) -> XdmResult<()> {
        self.insert_adjacent(new, 1)
    }

    fn insert_adjacent(&self, new: &NodeHandle, offset: usize) -> XdmResult<()> {
        let parent = self.parent().ok_or_else(|| {
            XdmError::new(ErrorCode::XUTY0008, "target has no parent")
        })?;
        let new = parent.import(new);
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(new.id).parent = Some(parent.id);
        match &mut arena.data_mut(parent.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                let pos = children
                    .iter()
                    .position(|c| *c == self.id)
                    .ok_or_else(|| {
                        XdmError::new(ErrorCode::XUTY0008, "target not a child")
                    })?;
                children.insert(pos + offset, new.id);
                Ok(())
            }
            _ => Err(XdmError::new(ErrorCode::XUTY0008, "parent cannot hold children")),
        }
    }

    /// Insert `new` as the first child (XUF `insert … as first into`).
    pub fn insert_first_child(&self, new: &NodeHandle) -> XdmResult<()> {
        match self.kind() {
            NodeKind::Document | NodeKind::Element => {}
            _ => {
                return Err(XdmError::new(
                    ErrorCode::XUTY0008,
                    "insert into leaf node",
                ))
            }
        }
        let new = self.import(new);
        let mut arena = self.arena.borrow_mut();
        arena.data_mut(new.id).parent = Some(self.id);
        match &mut arena.data_mut(self.id).body {
            NodeBody::Document { children } | NodeBody::Element { children, .. } => {
                children.insert(0, new.id);
                Ok(())
            }
            _ => unreachable!(),
        }
    }

    /// Replace this node with a sequence of new nodes (XUF `replace`).
    pub fn replace_with(&self, news: &[NodeHandle]) -> XdmResult<()> {
        let parent = self.parent().ok_or_else(|| {
            XdmError::new(ErrorCode::XUTY0008, "replace target has no parent")
        })?;
        if self.kind() == NodeKind::Attribute {
            for n in news {
                if n.kind() != NodeKind::Attribute {
                    return Err(XdmError::new(
                        ErrorCode::XUTY0008,
                        "attribute may only be replaced by attributes",
                    ));
                }
            }
            self.detach();
            for n in news {
                parent.set_attribute(n)?;
            }
            return Ok(());
        }
        for n in news {
            self.insert_before(n)?;
        }
        self.detach();
        Ok(())
    }

    /// Replace the value of a text/attribute node, or the entire text
    /// content of an element (XUF `replace value of`).
    pub fn replace_value(&self, value: &str) -> XdmResult<()> {
        match self.kind() {
            NodeKind::Attribute | NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                self.set_content(value.to_string());
                Ok(())
            }
            NodeKind::Element => {
                for c in self.children() {
                    c.detach();
                }
                if !value.is_empty() {
                    let t = NodeHandle::new_text(&self.arena, value);
                    self.push_child_raw(&t);
                }
                Ok(())
            }
            NodeKind::Document => Err(XdmError::new(
                ErrorCode::XUTY0008,
                "cannot replace value of document node",
            )),
        }
    }

    /// Rename an element or attribute (XUF `rename`).
    pub fn rename(&self, new_name: QName) -> XdmResult<()> {
        let mut arena = self.arena.borrow_mut();
        match &mut arena.data_mut(self.id).body {
            NodeBody::Element { name, .. } | NodeBody::Attribute { name, .. } => {
                *name = new_name;
                Ok(())
            }
            _ => Err(XdmError::new(
                ErrorCode::XUTY0008,
                "rename target must be element or attribute",
            )),
        }
    }

    fn set_content(&self, value: String) {
        let mut arena = self.arena.borrow_mut();
        match &mut arena.data_mut(self.id).body {
            NodeBody::Attribute { value: v, .. } => *v = value,
            NodeBody::Text { content }
            | NodeBody::Comment { content }
            | NodeBody::Pi { content, .. } => *content = value,
            _ => {}
        }
    }

    /// Deep structural equality (`fn:deep-equal` on nodes): same kind,
    /// name, attributes (order-insensitive), and children (order-
    /// sensitive), ignoring node identity.
    pub fn deep_equal(&self, other: &NodeHandle) -> bool {
        if self.kind() != other.kind() || self.name() != other.name() {
            return false;
        }
        match self.kind() {
            NodeKind::Attribute | NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                self.content() == other.content()
            }
            NodeKind::Document | NodeKind::Element => {
                let (mut a_attrs, mut b_attrs) = (self.attributes(), other.attributes());
                if a_attrs.len() != b_attrs.len() {
                    return false;
                }
                let key = |n: &NodeHandle| n.name().map(|q| q.clark()).unwrap_or_default();
                a_attrs.sort_by_key(key);
                b_attrs.sort_by_key(key);
                if !a_attrs
                    .iter()
                    .zip(&b_attrs)
                    .all(|(x, y)| x.name() == y.name() && x.content() == y.content())
                {
                    return false;
                }
                // Ignore comments and PIs in content comparison.
                let filt = |v: Vec<NodeHandle>| -> Vec<NodeHandle> {
                    v.into_iter()
                        .filter(|c| {
                            matches!(c.kind(), NodeKind::Element | NodeKind::Text)
                        })
                        .collect()
                };
                let (ac, bc) = (filt(self.children()), filt(other.children()));
                ac.len() == bc.len()
                    && ac.iter().zip(&bc).all(|(x, y)| x.deep_equal(y))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> NodeHandle {
        // <root a="1"><x>hello</x><y><z/>world</y></root>
        let root = NodeHandle::root_element(QName::new("root"));
        let arena = root.arena().clone();
        let a = NodeHandle::new_attribute(&arena, QName::new("a"), "1");
        root.set_attribute(&a).unwrap();
        let x = NodeHandle::new_element(&arena, QName::new("x"));
        root.append_child(&x).unwrap();
        x.append_child(&NodeHandle::new_text(&arena, "hello")).unwrap();
        let y = NodeHandle::new_element(&arena, QName::new("y"));
        root.append_child(&y).unwrap();
        let z = NodeHandle::new_element(&arena, QName::new("z"));
        y.append_child(&z).unwrap();
        y.append_child(&NodeHandle::new_text(&arena, "world")).unwrap();
        root
    }

    #[test]
    fn navigation_and_string_value() {
        let root = sample_tree();
        assert_eq!(root.kind(), NodeKind::Element);
        assert_eq!(root.children().len(), 2);
        assert_eq!(root.string_value(), "helloworld");
        let x = &root.children()[0];
        assert_eq!(x.name().unwrap().local, "x");
        assert_eq!(x.string_value(), "hello");
        assert_eq!(x.parent().unwrap(), root);
        assert_eq!(root.attribute(&QName::new("a")).unwrap().content().unwrap(), "1");
        assert!(root.attribute(&QName::new("b")).is_none());
    }

    #[test]
    fn identity_vs_structural_equality() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        assert_ne!(t1, t2); // distinct identities
        assert!(t1.deep_equal(&t2)); // same structure
        let copy = t1.deep_copy();
        assert_ne!(t1, copy);
        assert!(t1.deep_equal(&copy));
    }

    #[test]
    fn document_order_is_preorder() {
        let root = sample_tree();
        let kids = root.children();
        let (x, y) = (&kids[0], &kids[1]);
        let z = &y.children()[0];
        assert_eq!(root.document_order(x), std::cmp::Ordering::Less);
        assert_eq!(x.document_order(y), std::cmp::Ordering::Less);
        assert_eq!(y.document_order(z), std::cmp::Ordering::Less);
        assert_eq!(x.document_order(z), std::cmp::Ordering::Less);
        assert_eq!(z.document_order(x), std::cmp::Ordering::Greater);
        assert_eq!(x.document_order(x), std::cmp::Ordering::Equal);
        // Attribute follows the element but precedes its children.
        let a = root.attribute(&QName::new("a")).unwrap();
        assert_eq!(root.document_order(&a), std::cmp::Ordering::Less);
        assert_eq!(a.document_order(x), std::cmp::Ordering::Less);
    }

    #[test]
    fn cross_arena_order_is_stable() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        let o12 = t1.document_order(&t2);
        let o21 = t2.document_order(&t1);
        assert_ne!(o12, std::cmp::Ordering::Equal);
        assert_eq!(o12, o21.reverse());
    }

    #[test]
    fn descendants_in_document_order() {
        let root = sample_tree();
        let names: Vec<String> = root
            .descendants()
            .iter()
            .map(|n| match n.kind() {
                NodeKind::Element => n.name().unwrap().local,
                NodeKind::Text => format!("#{}", n.content().unwrap()),
                _ => "?".into(),
            })
            .collect();
        assert_eq!(names, vec!["x", "#hello", "y", "z", "#world"]);
    }

    #[test]
    fn text_merging_on_append() {
        let e = NodeHandle::root_element(QName::new("e"));
        let arena = e.arena().clone();
        e.append_child(&NodeHandle::new_text(&arena, "a")).unwrap();
        e.append_child(&NodeHandle::new_text(&arena, "b")).unwrap();
        assert_eq!(e.children().len(), 1);
        assert_eq!(e.string_value(), "ab");
        // Empty text is dropped.
        e.append_child(&NodeHandle::new_element(&arena, QName::new("c"))).unwrap();
        e.append_child(&NodeHandle::new_text(&arena, "")).unwrap();
        assert_eq!(e.children().len(), 2);
    }

    #[test]
    fn detach_and_reinsert() {
        let root = sample_tree();
        let kids = root.children();
        let x = kids[0].clone();
        x.detach();
        assert_eq!(root.children().len(), 1);
        assert!(x.parent().is_none());
        let y = &root.children()[0];
        y.insert_before(&x).unwrap();
        assert_eq!(root.children()[0], x);
    }

    #[test]
    fn insert_before_after_first() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let n = NodeHandle::new_element(&arena, QName::new("n"));
        root.children()[0].insert_after(&n).unwrap();
        let names: Vec<_> = root
            .children()
            .iter()
            .map(|c| c.name().unwrap().local)
            .collect();
        assert_eq!(names, vec!["x", "n", "y"]);
        let m = NodeHandle::new_element(&arena, QName::new("m"));
        root.insert_first_child(&m).unwrap();
        assert_eq!(root.children()[0].name().unwrap().local, "m");
    }

    #[test]
    fn replace_with_and_replace_value() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let r1 = NodeHandle::new_element(&arena, QName::new("r1"));
        let r2 = NodeHandle::new_element(&arena, QName::new("r2"));
        root.children()[0].replace_with(&[r1, r2]).unwrap();
        let names: Vec<_> = root
            .children()
            .iter()
            .map(|c| c.name().unwrap().local)
            .collect();
        assert_eq!(names, vec!["r1", "r2", "y"]);
        let y = root.children()[2].clone();
        y.replace_value("flat").unwrap();
        assert_eq!(y.children().len(), 1);
        assert_eq!(y.string_value(), "flat");
    }

    #[test]
    fn rename_element_and_attribute() {
        let root = sample_tree();
        root.rename(QName::new("renamed")).unwrap();
        assert_eq!(root.name().unwrap().local, "renamed");
        let a = root.attribute(&QName::new("a")).unwrap();
        a.rename(QName::new("b")).unwrap();
        assert!(root.attribute(&QName::new("a")).is_none());
        assert!(root.attribute(&QName::new("b")).is_some());
        let t = root.children()[0].children().first().cloned();
        if let Some(t) = t {
            if t.kind() == NodeKind::Text {
                assert!(t.rename(QName::new("x")).is_err());
            }
        }
    }

    #[test]
    fn import_copies_across_arenas() {
        let t1 = sample_tree();
        let t2 = sample_tree();
        let x2 = t2.children()[0].clone();
        let before = t2.children().len();
        t1.append_child(&x2).unwrap();
        // Original tree unaffected — append imported a copy.
        assert_eq!(t2.children().len(), before);
        assert_eq!(t1.children().len(), 3);
    }

    #[test]
    fn set_attribute_overwrites_same_name() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let a2 = NodeHandle::new_attribute(&arena, QName::new("a"), "2");
        root.set_attribute(&a2).unwrap();
        assert_eq!(root.attributes().len(), 1);
        assert_eq!(
            root.attribute(&QName::new("a")).unwrap().content().unwrap(),
            "2"
        );
    }

    #[test]
    fn append_child_rejects_bad_shapes() {
        let root = sample_tree();
        let arena = root.arena().clone();
        let a = NodeHandle::new_attribute(&arena, QName::new("q"), "v");
        assert!(root.append_child(&a).is_err());
        let t = NodeHandle::new_text(&arena, "t");
        assert!(t.append_child(&root).is_err());
    }

    #[test]
    fn deep_equal_ignores_attr_order_and_comments() {
        let e1 = NodeHandle::root_element(QName::new("e"));
        let a1 = e1.arena().clone();
        e1.set_attribute(&NodeHandle::new_attribute(&a1, QName::new("p"), "1")).unwrap();
        e1.set_attribute(&NodeHandle::new_attribute(&a1, QName::new("q"), "2")).unwrap();
        e1.append_child(&NodeHandle::new_comment(&a1, "ignore me")).unwrap();

        let e2 = NodeHandle::root_element(QName::new("e"));
        let a2 = e2.arena().clone();
        e2.set_attribute(&NodeHandle::new_attribute(&a2, QName::new("q"), "2")).unwrap();
        e2.set_attribute(&NodeHandle::new_attribute(&a2, QName::new("p"), "1")).unwrap();

        assert!(e1.deep_equal(&e2));
    }

    #[test]
    fn sibling_axes() {
        let root = sample_tree();
        let kids = root.children();
        let (x, y) = (&kids[0], &kids[1]);
        assert_eq!(x.following_siblings(), vec![y.clone()]);
        assert_eq!(y.preceding_siblings(), vec![x.clone()]);
        assert!(root.following_siblings().is_empty());
    }

    #[test]
    fn ancestors_and_root() {
        let root = sample_tree();
        let z = root.children()[1].children()[0].clone();
        let anc: Vec<_> = z
            .ancestors()
            .iter()
            .map(|n| n.name().unwrap().local)
            .collect();
        assert_eq!(anc, vec!["y", "root"]);
        assert_eq!(z.root(), root);
    }

    #[test]
    fn document_node_wraps_element() {
        let doc = NodeHandle::new_document();
        let e = NodeHandle::new_element(doc.arena(), QName::new("top"));
        doc.append_child(&e).unwrap();
        assert_eq!(doc.kind(), NodeKind::Document);
        assert_eq!(e.root(), doc);
        assert_eq!(doc.children().len(), 1);
    }
}
