//! # xmlparse — XML 1.0 parsing and serialization over XDM
//!
//! A self-contained, namespace-aware XML parser that builds
//! [`xdm::NodeHandle`] trees, and a serializer that renders them back.
//! It supports the features the ALDSP data plane needs: elements,
//! attributes, namespace declarations (`xmlns`, `xmlns:p`), character
//! data, CDATA sections, comments, processing instructions, the five
//! predefined entities, and numeric character references.
//!
//! ```
//! use xmlparse::{parse, serialize};
//! let doc = parse("<a x=\"1\"><b>hi</b></a>").unwrap();
//! let root = doc.children().pop().unwrap();
//! assert_eq!(root.string_value(), "hi");
//! assert_eq!(serialize(&root), "<a x=\"1\"><b>hi</b></a>");
//! ```

mod parser;
mod serializer;

pub use parser::{parse, parse_fragment, ParseOptions};
pub use serializer::{
    serialize, serialize_pretty, serialize_sequence, serialize_sequence_stream,
    IncrementalSerializer,
};
