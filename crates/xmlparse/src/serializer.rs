//! XDM → XML serialization.
//!
//! Two modes: compact (canonical-ish, no added whitespace) and pretty
//! (two-space indentation, element-only content indented). Namespace
//! declarations recorded on elements are emitted; prefixes on QNames
//! are trusted to be consistent (they come from the parser or from
//! query constructors which resolve prefixes at parse time).

use std::collections::HashSet;

use xdm::error::XdmResult;
use xdm::node::{NodeHandle, NodeKind};
use xdm::sequence::{Item, Sequence};

/// Serialize a node compactly.
pub fn serialize(node: &NodeHandle) -> String {
    let mut out = String::new();
    write_node(&mut out, node, None, &mut HashSet::new());
    out
}

/// Serialize a node with two-space indentation.
pub fn serialize_pretty(node: &NodeHandle) -> String {
    let mut out = String::new();
    write_node(&mut out, node, Some(0), &mut HashSet::new());
    out
}

/// Serialize a whole sequence: nodes are serialized, atomic values are
/// rendered via their string value, space-separated (the standard
/// "sequence normalization" of the XSLT/XQuery serialization spec).
pub fn serialize_sequence(seq: &Sequence) -> String {
    let mut ser = IncrementalSerializer::new();
    for item in seq.iter() {
        ser.write_item(item);
    }
    ser.finish()
}

/// Serialize a possibly-lazy sequence, draining it item by item
/// through the fallible pull API: output accumulates as the stream
/// produces tuples, and a deferred evaluation error (mid-stream source
/// fault, budget expiry) surfaces as `Err` instead of being swallowed
/// by a quiet force. This is the reply-path entry for streamed
/// results (`aldsp::pool`); interactive front ends that want true
/// time-to-first-byte drive an [`IncrementalSerializer`] themselves.
pub fn serialize_sequence_stream(seq: &Sequence) -> XdmResult<String> {
    let mut ser = IncrementalSerializer::new();
    let mut i = 0usize;
    while let Some(item) = seq.try_item(i)? {
        ser.write_item(&item);
        i += 1;
    }
    Ok(ser.finish())
}

/// Incremental sequence serialization: feed items one at a time and
/// take the rendered increment after each, so a consumer can emit
/// output while a lazy stream drains instead of waiting for the last
/// tuple. The only cross-item state of sequence normalization is the
/// atomic/atomic separator space, which lives here.
#[derive(Default)]
pub struct IncrementalSerializer {
    out: String,
    /// Start of the increment not yet handed out by [`take_delta`].
    ///
    /// [`take_delta`]: IncrementalSerializer::take_delta
    emitted: usize,
    prev_atomic: bool,
}

impl IncrementalSerializer {
    /// A fresh serializer with nothing written.
    pub fn new() -> IncrementalSerializer {
        IncrementalSerializer::default()
    }

    /// Append one item, exactly as [`serialize_sequence`] would have.
    pub fn write_item(&mut self, item: &Item) {
        match item {
            Item::Node(n) => {
                write_node(&mut self.out, n, None, &mut HashSet::new());
                self.prev_atomic = false;
            }
            Item::Atomic(a) => {
                if self.prev_atomic {
                    self.out.push(' ');
                }
                self.out.push_str(&escape_text(&a.string_value()));
                self.prev_atomic = true;
            }
        }
    }

    /// The output appended since the last `take_delta` call — what an
    /// interactive consumer flushes after each pulled item.
    pub fn take_delta(&mut self) -> &str {
        let delta = &self.out[self.emitted..];
        self.emitted = self.out.len();
        delta
    }

    /// Everything written so far, consuming the serializer.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_node(
    out: &mut String,
    node: &NodeHandle,
    indent: Option<usize>,
    declared: &mut HashSet<(xdm::Symbol, xdm::Symbol)>,
) {
    match node.kind() {
        NodeKind::Document => {
            let mut first = true;
            for c in node.children() {
                if !first
                    && indent.is_some() {
                        out.push('\n');
                    }
                write_node(out, &c, indent, declared);
                first = false;
            }
        }
        NodeKind::Element => {
            let name = node.name().expect("element has name");
            let lex = name.lexical();
            if let Some(d) = indent {
                if d > 0 {
                    write_indent(out, d);
                }
            }
            out.push('<');
            out.push_str(&lex);
            // Namespace declarations recorded on this element.
            let mut local_declared: Vec<(xdm::Symbol, xdm::Symbol)> = Vec::new();
            for (p, u) in node.ns_decls() {
                let key = (p.clone(), u.clone());
                if declared.contains(&key) {
                    continue;
                }
                local_declared.push(key.clone());
                declared.insert(key);
                if p.is_empty() {
                    out.push_str(&format!(" xmlns=\"{}\"", escape_attr(&u)));
                } else {
                    out.push_str(&format!(" xmlns:{}=\"{}\"", p, escape_attr(&u)));
                }
            }
            // Synthesize a declaration for the element's own prefix if
            // it is namespaced but nothing declares it (constructed
            // nodes from query land here).
            if let (Some(ns), maybe_prefix) = (&name.ns, &name.prefix) {
                let p = maybe_prefix.clone().unwrap_or_default();
                let key = (p.clone(), ns.clone());
                if !declared.contains(&key) {
                    local_declared.push(key.clone());
                    declared.insert(key);
                    if p.is_empty() {
                        out.push_str(&format!(" xmlns=\"{}\"", escape_attr(ns)));
                    } else {
                        out.push_str(&format!(" xmlns:{}=\"{}\"", p, escape_attr(ns)));
                    }
                }
            }
            for a in node.attributes() {
                let aname = a.name().expect("attribute has name");
                // Synthesize prefixed-attribute namespace declarations.
                if let (Some(ns), Some(p)) = (&aname.ns, &aname.prefix) {
                    let key = (p.clone(), ns.clone());
                    if !declared.contains(&key) {
                        local_declared.push(key.clone());
                        declared.insert(key);
                        out.push_str(&format!(" xmlns:{}=\"{}\"", p, escape_attr(ns)));
                    }
                }
                out.push_str(&format!(
                    " {}=\"{}\"",
                    aname.lexical(),
                    escape_attr(&a.content().unwrap_or_default())
                ));
            }
            let children = node.children();
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                let element_only = indent.is_some()
                    && children.iter().all(|c| {
                        matches!(c.kind(), NodeKind::Element | NodeKind::Comment | NodeKind::Pi)
                    });
                for c in &children {
                    if element_only {
                        out.push('\n');
                    }
                    write_node(
                        out,
                        c,
                        if element_only { indent.map(|d| d + 1) } else { None },
                        declared,
                    );
                }
                if element_only {
                    out.push('\n');
                    write_indent(out, indent.unwrap_or(0));
                }
                out.push_str("</");
                out.push_str(&lex);
                out.push('>');
            }
            for key in local_declared {
                declared.remove(&key);
            }
        }
        NodeKind::Attribute => {
            // A bare attribute serializes as name="value" (useful in
            // diagnostics; attributes normally ride on their element).
            let aname = node.name().expect("attribute has name");
            out.push_str(&format!(
                "{}=\"{}\"",
                aname.lexical(),
                escape_attr(&node.content().unwrap_or_default())
            ));
        }
        NodeKind::Text => out.push_str(&escape_text(&node.content().unwrap_or_default())),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(&node.content().unwrap_or_default());
            out.push_str("-->");
        }
        NodeKind::Pi => {
            let name = node.name().expect("pi has target");
            out.push_str("<?");
            out.push_str(&name.local);
            let c = node.content().unwrap_or_default();
            if !c.is_empty() {
                out.push(' ');
                out.push_str(&c);
            }
            out.push_str("?>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use xdm::qname::QName;

    fn root_of(doc: &NodeHandle) -> NodeHandle {
        doc.children()
            .into_iter()
            .find(|c| c.kind() == NodeKind::Element)
            .unwrap()
    }

    #[test]
    fn round_trip_simple() {
        for xml in [
            "<a/>",
            "<a>text</a>",
            "<a x=\"1\" y=\"2\"><b/>mid<c>deep</c></a>",
            "<a><!--note--><?pi data?></a>",
        ] {
            let doc = parse(xml).unwrap();
            assert_eq!(serialize(&root_of(&doc)), xml);
        }
    }

    #[test]
    fn escaping_round_trip() {
        let doc = parse("<a v=\"x&amp;&quot;y\">a&lt;b&amp;c</a>").unwrap();
        let s = serialize(&root_of(&doc));
        assert_eq!(s, "<a v=\"x&amp;&quot;y\">a&lt;b&amp;c</a>");
        let again = parse(&s).unwrap();
        assert!(root_of(&again).deep_equal(&root_of(&doc)));
    }

    #[test]
    fn namespace_declarations_round_trip() {
        let xml = "<p:a xmlns:p=\"urn:p\"><p:b/></p:a>";
        let doc = parse(xml).unwrap();
        assert_eq!(serialize(&root_of(&doc)), xml);
    }

    #[test]
    fn synthesized_ns_for_constructed_nodes() {
        let e = NodeHandle::root_element(QName::with_prefix_ns("t", "urn:t", "root"));
        let s = serialize(&e);
        assert_eq!(s, "<t:root xmlns:t=\"urn:t\"/>");
        // And it must re-parse to an equivalent tree.
        let doc = parse(&s).unwrap();
        assert!(root_of(&doc).deep_equal(&e));
    }

    #[test]
    fn default_ns_synthesis() {
        let e = NodeHandle::root_element(QName::with_ns("urn:d", "root"));
        assert_eq!(serialize(&e), "<root xmlns=\"urn:d\"/>");
    }

    #[test]
    fn nested_same_ns_not_redeclared() {
        let e = NodeHandle::root_element(QName::with_prefix_ns("t", "urn:t", "a"));
        let c = NodeHandle::new_element(e.arena(), QName::with_prefix_ns("t", "urn:t", "b"));
        e.append_child(&c).unwrap();
        assert_eq!(serialize(&e), "<t:a xmlns:t=\"urn:t\"><t:b/></t:a>");
    }

    #[test]
    fn pretty_printing_element_only() {
        let doc = parse("<a><b>1</b><c><d/></c></a>").unwrap();
        let pretty = serialize_pretty(&root_of(&doc));
        assert_eq!(pretty, "<a>\n  <b>1</b>\n  <c>\n    <d/>\n  </c>\n</a>");
    }

    #[test]
    fn pretty_keeps_mixed_content_inline() {
        let doc = parse("<a>one<b/>two</a>").unwrap();
        assert_eq!(serialize_pretty(&root_of(&doc)), "<a>one<b/>two</a>");
    }

    #[test]
    fn sequence_serialization() {
        use xdm::sequence::Item;
        let n = NodeHandle::root_element(QName::new("n"));
        let seq = Sequence::from_items(vec![
            Item::integer(1),
            Item::integer(2),
            Item::Node(n),
            Item::string("a<b"),
        ]);
        assert_eq!(serialize_sequence(&seq), "1 2<n/>a&lt;b");
    }

    #[test]
    fn incremental_deltas_concatenate_to_the_batch_output() {
        use xdm::sequence::Item;
        let n = NodeHandle::root_element(QName::new("n"));
        let items = vec![
            Item::integer(1),
            Item::integer(2),
            Item::Node(n),
            Item::string("a<b"),
        ];
        let mut ser = IncrementalSerializer::new();
        let mut joined = String::new();
        for it in &items {
            ser.write_item(it);
            joined.push_str(ser.take_delta());
        }
        let batch = serialize_sequence(&Sequence::from_items(items));
        assert_eq!(joined, batch);
        assert_eq!(ser.finish(), batch);
    }

    #[test]
    fn stream_serialization_matches_batch_on_eager_sequences() {
        use xdm::sequence::Item;
        let seq = Sequence::from_items(vec![Item::integer(7), Item::string("x")]);
        assert_eq!(
            serialize_sequence_stream(&seq).unwrap(),
            serialize_sequence(&seq)
        );
    }
}
