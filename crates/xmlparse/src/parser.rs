//! The XML parser: a hand-rolled recursive-descent scanner that builds
//! XDM trees with namespace resolution done on the fly.

use std::collections::HashMap;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::{QName, XML_NS};

/// Parser configuration.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct ParseOptions {
    /// Drop text nodes that are all-whitespace between elements
    /// ("ignorable whitespace"). Defaults to `false`: data is data.
    pub strip_whitespace: bool,
}


/// Parse a complete XML document; returns the document node.
pub fn parse(input: &str) -> XdmResult<NodeHandle> {
    Parser::new(input, ParseOptions::default()).parse_document()
}

/// Parse with options; a fragment may have leading/trailing text and
/// multiple top-level elements (useful for test fixtures and SDO
/// change summaries).
pub fn parse_fragment(input: &str, options: ParseOptions) -> XdmResult<NodeHandle> {
    Parser::new(input, options).parse_document()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
}

fn err(msg: impl Into<String>, pos: usize) -> XdmError {
    XdmError::new(
        ErrorCode::FORG0001,
        format!("XML parse error at byte {pos}: {}", msg.into()),
    )
}

/// Namespace scope: a stack of prefix→URI maps.
struct NsScope {
    stack: Vec<HashMap<String, String>>,
}

impl NsScope {
    fn new() -> NsScope {
        let mut base = HashMap::new();
        base.insert("xml".to_string(), XML_NS.to_string());
        NsScope { stack: vec![base] }
    }

    fn push(&mut self, decls: &[(String, String)]) {
        let mut m = HashMap::new();
        for (p, u) in decls {
            m.insert(p.clone(), u.clone());
        }
        self.stack.push(m);
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn resolve(&self, prefix: &str) -> Option<&str> {
        for frame in self.stack.iter().rev() {
            if let Some(u) = frame.get(prefix) {
                return if u.is_empty() { None } else { Some(u) };
            }
        }
        None
    }
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Parser<'a> {
        Parser { input, bytes: input.as_bytes(), pos: 0, options }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> XdmResult<()> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(err(format!("expected {s:?}"), self.pos))
        }
    }

    fn parse_document(&mut self) -> XdmResult<NodeHandle> {
        let doc = NodeHandle::new_document();
        let mut ns = NsScope::new();
        // Prolog: XML declaration, comments, PIs, DOCTYPE (skipped).
        loop {
            self.skip_ws();
            if self.starts_with("<?xml") {
                let end = self.input[self.pos..]
                    .find("?>")
                    .ok_or_else(|| err("unterminated XML declaration", self.pos))?;
                self.bump(end + 2);
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                doc.append_child(&NodeHandle::new_comment(doc.arena(), c))?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                let (t, c) = self.parse_pi()?;
                doc.append_child(&NodeHandle::new_pi(doc.arena(), t, c))?;
            } else {
                break;
            }
        }
        if self.peek() != Some(b'<') {
            return Err(err("expected root element", self.pos));
        }
        self.parse_element(&doc, &mut ns)?;
        // Epilog.
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                doc.append_child(&NodeHandle::new_comment(doc.arena(), c))?;
            } else if self.starts_with("<?") {
                let (t, c) = self.parse_pi()?;
                doc.append_child(&NodeHandle::new_pi(doc.arena(), t, c))?;
            } else if self.peek() == Some(b'<') {
                // Fragment mode: multiple root elements are accepted.
                self.parse_element(&doc, &mut ns)?;
            } else {
                break;
            }
        }
        if self.pos != self.input.len() {
            return Err(err("trailing content after document end", self.pos));
        }
        Ok(doc)
    }

    fn skip_doctype(&mut self) -> XdmResult<()> {
        // Skip to the matching '>' accounting for an internal subset.
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    self.bump(1);
                    if depth == 0 {
                        return Ok(());
                    }
                    continue;
                }
                _ => {}
            }
            self.bump(1);
        }
        Err(err("unterminated DOCTYPE", self.pos))
    }

    fn parse_name(&mut self) -> XdmResult<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b'-'
                || b == b'.'
                || b == b':'
                || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(err("expected name", self.pos));
        }
        Ok(&self.input[start..self.pos])
    }

    /// Parse one element (the `<` is current) and attach it to parent.
    fn parse_element(&mut self, parent: &NodeHandle, ns: &mut NsScope) -> XdmResult<NodeHandle> {
        self.expect("<")?;
        let name = self.parse_name()?.to_string();
        // Attributes & namespace declarations.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        let mut ns_decls: Vec<(String, String)> = Vec::new();
        let self_closing;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    self_closing = true;
                    break;
                }
                Some(b'>') => {
                    self.bump(1);
                    self_closing = false;
                    break;
                }
                Some(_) => {
                    let aname = self.parse_name()?.to_string();
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let aval = self.parse_attr_value()?;
                    if aname == "xmlns" {
                        ns_decls.push((String::new(), aval));
                    } else if let Some(p) = aname.strip_prefix("xmlns:") {
                        ns_decls.push((p.to_string(), aval));
                    } else {
                        raw_attrs.push((aname, aval));
                    }
                }
                None => return Err(err("unterminated start tag", self.pos)),
            }
        }
        ns.push(&ns_decls);
        let qname = self.resolve_qname(&name, ns, true)?;
        let elem = NodeHandle::new_element(parent.arena(), qname);
        for (p, u) in &ns_decls {
            elem.add_ns_decl(p.clone(), u.clone());
        }
        parent.append_child(&elem)?;
        for (aname, aval) in raw_attrs {
            let aq = self.resolve_qname(&aname, ns, false)?;
            if elem.attribute(&aq).is_some() {
                ns.pop();
                return Err(err(format!("duplicate attribute {aname}"), self.pos));
            }
            elem.set_attribute(&NodeHandle::new_attribute(elem.arena(), aq, aval))?;
        }
        if !self_closing {
            self.parse_content(&elem, ns)?;
            // parse_content consumed "</"
            let close = self.parse_name()?;
            if close != name {
                ns.pop();
                return Err(err(
                    format!("mismatched end tag: expected </{name}>, found </{close}>"),
                    self.pos,
                ));
            }
            self.skip_ws();
            self.expect(">")?;
        }
        ns.pop();
        Ok(elem)
    }

    fn resolve_qname(&self, raw: &str, ns: &NsScope, is_element: bool) -> XdmResult<QName> {
        match raw.split_once(':') {
            Some((p, l)) => {
                let uri = ns.resolve(p).ok_or_else(|| {
                    err(format!("undeclared namespace prefix {p:?}"), self.pos)
                })?;
                Ok(QName::with_prefix_ns(p, uri, l))
            }
            None => {
                // Default namespace applies to elements only.
                if is_element {
                    match ns.resolve("") {
                        Some(uri) => Ok(QName::with_ns(uri, raw)),
                        None => Ok(QName::new(raw)),
                    }
                } else {
                    Ok(QName::new(raw))
                }
            }
        }
    }

    fn parse_content(&mut self, elem: &NodeHandle, ns: &mut NsScope) -> XdmResult<()> {
        let mut text = String::new();
        loop {
            let flush =
                |text: &mut String, elem: &NodeHandle, strip: bool| -> XdmResult<()> {
                    if !text.is_empty() {
                        let keep = !strip || !text.chars().all(char::is_whitespace);
                        if keep {
                            elem.append_child(&NodeHandle::new_text(
                                elem.arena(),
                                std::mem::take(text),
                            ))?;
                        } else {
                            text.clear();
                        }
                    }
                    Ok(())
                };
            if self.starts_with("</") {
                flush(&mut text, elem, self.options.strip_whitespace)?;
                self.bump(2);
                return Ok(());
            } else if self.starts_with("<!--") {
                flush(&mut text, elem, self.options.strip_whitespace)?;
                let c = self.parse_comment()?;
                elem.append_child(&NodeHandle::new_comment(elem.arena(), c))?;
            } else if self.starts_with("<![CDATA[") {
                self.bump(9);
                let end = self.input[self.pos..]
                    .find("]]>")
                    .ok_or_else(|| err("unterminated CDATA", self.pos))?;
                text.push_str(&self.input[self.pos..self.pos + end]);
                self.bump(end + 3);
            } else if self.starts_with("<?") {
                flush(&mut text, elem, self.options.strip_whitespace)?;
                let (t, c) = self.parse_pi()?;
                elem.append_child(&NodeHandle::new_pi(elem.arena(), t, c))?;
            } else if self.peek() == Some(b'<') {
                flush(&mut text, elem, self.options.strip_whitespace)?;
                self.parse_element(elem, ns)?;
            } else if self.peek() == Some(b'&') {
                text.push(self.parse_entity()?);
            } else if let Some(_b) = self.peek() {
                // Consume a run of plain character data.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' || b == b'&' {
                        break;
                    }
                    self.pos += 1;
                }
                text.push_str(&self.input[start..self.pos]);
            } else {
                return Err(err("unexpected end of input in element content", self.pos));
            }
        }
    }

    fn parse_attr_value(&mut self) -> XdmResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(err("expected quoted attribute value", self.pos)),
        };
        self.bump(1);
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.bump(1);
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(err("'<' in attribute value", self.pos)),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
                None => return Err(err("unterminated attribute value", self.pos)),
            }
        }
    }

    fn parse_entity(&mut self) -> XdmResult<char> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        let semi = self.input[self.pos..]
            .find(';')
            .ok_or_else(|| err("unterminated entity reference", self.pos))?;
        let body = &self.input[self.pos + 1..self.pos + semi];
        let ch = match body {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let cp = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| err(format!("bad char ref &{body};"), self.pos))?;
                char::from_u32(cp)
                    .ok_or_else(|| err(format!("invalid code point {cp}"), self.pos))?
            }
            _ if body.starts_with('#') => {
                let cp: u32 = body[1..]
                    .parse()
                    .map_err(|_| err(format!("bad char ref &{body};"), self.pos))?;
                char::from_u32(cp)
                    .ok_or_else(|| err(format!("invalid code point {cp}"), self.pos))?
            }
            _ => return Err(err(format!("unknown entity &{body};"), self.pos)),
        };
        self.bump(semi + 1);
        Ok(ch)
    }

    fn parse_comment(&mut self) -> XdmResult<String> {
        self.expect("<!--")?;
        let end = self.input[self.pos..]
            .find("-->")
            .ok_or_else(|| err("unterminated comment", self.pos))?;
        let content = self.input[self.pos..self.pos + end].to_string();
        self.bump(end + 3);
        Ok(content)
    }

    fn parse_pi(&mut self) -> XdmResult<(String, String)> {
        self.expect("<?")?;
        let target = self.parse_name()?.to_string();
        self.skip_ws();
        let end = self.input[self.pos..]
            .find("?>")
            .ok_or_else(|| err("unterminated processing instruction", self.pos))?;
        let content = self.input[self.pos..self.pos + end].to_string();
        self.bump(end + 2);
        Ok((target, content))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::node::NodeKind;

    fn root_of(doc: &NodeHandle) -> NodeHandle {
        doc.children()
            .into_iter()
            .find(|c| c.kind() == NodeKind::Element)
            .expect("document element")
    }

    #[test]
    fn basic_document() {
        let doc = parse("<a><b>1</b><c x=\"y\"/></a>").unwrap();
        let a = root_of(&doc);
        assert_eq!(a.name().unwrap().local, "a");
        assert_eq!(a.children().len(), 2);
        assert_eq!(a.string_value(), "1");
        let c = &a.children()[1];
        assert_eq!(c.attribute(&QName::new("x")).unwrap().content().unwrap(), "y");
    }

    #[test]
    fn xml_decl_comments_pis() {
        let doc = parse("<?xml version=\"1.0\"?><!-- hi --><?target data?><r/>").unwrap();
        let kinds: Vec<_> = doc.children().iter().map(|c| c.kind()).collect();
        assert_eq!(kinds, vec![NodeKind::Comment, NodeKind::Pi, NodeKind::Element]);
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse("<!DOCTYPE html><r>ok</r>").unwrap();
        assert_eq!(root_of(&doc).string_value(), "ok");
    }

    #[test]
    fn namespaces_resolve() {
        let doc = parse(
            "<p:r xmlns:p=\"urn:p\" xmlns=\"urn:d\"><child p:a=\"1\" b=\"2\"/></p:r>",
        )
        .unwrap();
        let r = root_of(&doc);
        assert_eq!(r.name().unwrap().ns.as_deref(), Some("urn:p"));
        let child = &r.children()[0];
        // Default namespace applies to the element…
        assert_eq!(child.name().unwrap().ns.as_deref(), Some("urn:d"));
        // …but not to unprefixed attributes.
        let attrs = child.attributes();
        let pa = attrs.iter().find(|a| a.name().unwrap().local == "a").unwrap();
        assert_eq!(pa.name().unwrap().ns.as_deref(), Some("urn:p"));
        let b = attrs.iter().find(|a| a.name().unwrap().local == "b").unwrap();
        assert_eq!(b.name().unwrap().ns, None);
    }

    #[test]
    fn nested_namespace_shadowing() {
        let doc = parse("<a xmlns=\"urn:1\"><b xmlns=\"urn:2\"/><c/></a>").unwrap();
        let a = root_of(&doc);
        assert_eq!(a.children()[0].name().unwrap().ns.as_deref(), Some("urn:2"));
        assert_eq!(a.children()[1].name().unwrap().ns.as_deref(), Some("urn:1"));
    }

    #[test]
    fn undefined_default_ns_unset() {
        let doc = parse("<a xmlns=\"urn:1\"><b xmlns=\"\"/></a>").unwrap();
        let a = root_of(&doc);
        assert_eq!(a.children()[0].name().unwrap().ns, None);
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(root_of(&doc).string_value(), "<>&\"'AB");
    }

    #[test]
    fn entities_in_attributes() {
        let doc = parse("<a v=\"x&amp;y&#33;\"/>").unwrap();
        let a = root_of(&doc);
        assert_eq!(a.attribute(&QName::new("v")).unwrap().content().unwrap(), "x&y!");
    }

    #[test]
    fn cdata_sections() {
        let doc = parse("<a><![CDATA[<not-a-tag> & raw]]></a>").unwrap();
        assert_eq!(root_of(&doc).string_value(), "<not-a-tag> & raw");
    }

    #[test]
    fn cdata_merges_with_text() {
        let doc = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        let a = root_of(&doc);
        assert_eq!(a.children().len(), 1);
        assert_eq!(a.string_value(), "xyz");
    }

    #[test]
    fn whitespace_stripping_option() {
        let xml = "<a>\n  <b>1</b>\n  <c>2</c>\n</a>";
        let keep = parse(xml).unwrap();
        assert_eq!(root_of(&keep).children().len(), 5);
        let strip = parse_fragment(xml, ParseOptions { strip_whitespace: true }).unwrap();
        assert_eq!(root_of(&strip).children().len(), 2);
    }

    #[test]
    fn fragment_with_multiple_roots() {
        let doc = parse("<a/><b/>").unwrap();
        assert_eq!(doc.children().len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        for bad in [
            "<a>",                  // unterminated
            "<a></b>",              // mismatched tags
            "<a x=1/>",             // unquoted attribute
            "<a x=\"1\" x=\"2\"/>", // duplicate attribute
            "<p:a/>",               // undeclared prefix
            "<a>&nosuch;</a>",      // unknown entity
            "text only",            // no element
            "<a/><",                // trailing garbage
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn mixed_content_order_preserved() {
        let doc = parse("<a>one<b/>two<c/>three</a>").unwrap();
        let a = root_of(&doc);
        let kinds: Vec<_> = a.children().iter().map(|c| c.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text
            ]
        );
    }

    #[test]
    fn paper_figure4_sdo_datagraph_parses() {
        // The SDO datagraph shape from Figure 4 of the paper.
        let xml = r##"<sdo:datagraph xmlns:sdo="commonj.sdo">
            <changeSummary>
              <cus:CustomerProfile sdo:ref="#/sdo:datagraph/cus:CustomerProfile"
                  xmlns:cus="ld:CustomerProfile">
                <LAST_NAME>Carrey</LAST_NAME>
              </cus:CustomerProfile>
            </changeSummary>
            <cus:CustomerProfile xmlns:cus="ld:CustomerProfile">
              <LAST_NAME>Carey</LAST_NAME>
            </cus:CustomerProfile>
        </sdo:datagraph>"##;
        let doc = parse(xml).unwrap();
        let dg = root_of(&doc);
        assert_eq!(dg.name().unwrap().local, "datagraph");
        assert_eq!(dg.name().unwrap().ns.as_deref(), Some("commonj.sdo"));
    }
}
