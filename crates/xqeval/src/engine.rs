//! The engine: registries for functions, procedures, global variables,
//! and documents; the entry points for loading modules and evaluating
//! queries.
//!
//! ALDSP binds physical sources by registering *external* functions
//! (reads, pure) and *external procedures* (create/update/delete,
//! side-effecting) here — exactly the "set of external XQSE procedures
//! … automatically provided … as a callable means to modify relational
//! source data" of §III.A.

// The optimizer surface (capabilities, counters, cache handles) must
// degrade via Results, never panic: enforced at lint level.
#![deny(clippy::unwrap_used)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xdm::datetime::DateTime;
use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::Sequence;

use xqparser::ast::{Expr, FunctionDecl, Module, ProcedureDecl, QueryBody};
use xqparser::parser::parse_module;

use crate::cache::Lru;
use crate::context::Env;
use crate::eval::Evaluator;
use crate::fold;

/// A native (Rust) implementation bound to a QName/arity: the bridge
/// to ALDSP physical sources and other host functionality.
pub type ExternalFn = Rc<dyn Fn(&mut Env, Vec<Sequence>) -> XdmResult<Sequence>>;

/// A native batch implementation for a batchable source function: one
/// argument sequence per pending request, one response sequence per
/// request, positionally. The FLWOR evaluator flushes accumulated
/// loop iterations through this in one coalesced source round trip.
pub type BatchFn = Rc<dyn Fn(&mut Env, &[Sequence]) -> XdmResult<Vec<Sequence>>>;

/// Hook installed by the XQSE statement engine so that the expression
/// evaluator can call *user-defined readonly procedures* (which
/// require statement execution).
pub type ProcRunner =
    Rc<dyn Fn(&Engine, &ProcedureDecl, Vec<Sequence>, &mut Env) -> XdmResult<Sequence>>;

/// A registered function implementation.
#[derive(Clone)]
pub enum FunctionKind {
    /// A user-declared XQuery function.
    User(Rc<FunctionDecl>),
    /// A native implementation (assumed pure unless `updating`).
    External {
        /// The implementation.
        f: ExternalFn,
        /// True if the function produces updates (XUF updating
        /// function).
        updating: bool,
    },
}

/// Value classes a pushdown-capable source column accepts, mirroring
/// the indexable column types of the relational simulator. The FLWOR
/// rewrite uses this to decide whether a comparison key can be pushed
/// without changing XQuery comparison semantics (false negatives are
/// forbidden; candidates are always re-verified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColClass {
    /// Integral numeric column: numeric and untyped keys with an
    /// integral value are pushable.
    Integer,
    /// String column: string/untyped keys are pushable.
    String,
    /// Boolean column: boolean keys are pushable.
    Boolean,
}

/// Indexed point-select implementation: `(env, column, canonical key
/// lexical)` → matching rows as XDM elements.
pub type SourceSelectFn = Rc<dyn Fn(&mut Env, &str, &str) -> XdmResult<Sequence>>;

/// A filterable-source capability advertised for a registered arity-0
/// read function (§II.B "pushing computation to the sources"): the
/// mediator may replace `for $r in src() where $r/COL eq K return …`
/// with a call to `select`, which answers from the source's own
/// access paths (secondary indexes) instead of materializing the
/// whole table and filtering in the middle tier.
#[derive(Clone)]
pub struct SourceCapability {
    /// Columns the source can filter on, with their value class.
    pub columns: Vec<(String, ColClass)>,
    /// Indexed point-select: `(column, canonical key lexical)` →
    /// matching rows as XDM elements (same shape as the read function
    /// returns).
    pub select: SourceSelectFn,
    /// *Live* monotonic version of the underlying table (catalog
    /// metadata, never fault-injected) — caches validate against it.
    pub version: Rc<dyn Fn() -> u64>,
    /// Version of the snapshot the read function most recently
    /// *served*. Normally equals `version`; under breaker-open stale
    /// degradation it is the older snapshot version, so cache entries
    /// built from stale data are stamped stale and never revalidate.
    pub served_version: Rc<dyn Fn() -> u64>,
}

/// Optimizer observability: hit/miss/invalidation counters for the
/// join cache, the XDM materialization cache, and pushdown rewrites.
/// Cheap interior-mutability counters, snapshot via
/// [`Engine::opt_stats`], printed by `xqsh --explain`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OptStats {
    /// Join-cache hits (memoized index reused).
    pub join_hits: u64,
    /// Join-cache misses (index built).
    pub join_misses: u64,
    /// Join-cache entries discarded as stale (version/epoch moved).
    pub join_invalidations: u64,
    /// Materialization-cache hits (XDM tree reused).
    pub mat_hits: u64,
    /// Materialization-cache misses (tree rebuilt).
    pub mat_misses: u64,
    /// Materialization-cache flushes forced by update statements.
    pub mat_invalidations: u64,
    /// FLWOR where-clauses rewritten to source point-selects.
    pub pushdown_rewrites: u64,
    /// Optimize-gated reads answered via a secondary index.
    pub indexed_selects: u64,
    /// Prepared-plan cache hits (parse + prolog load skipped).
    pub plan_hits: u64,
    /// Prepared-plan cache misses (module parsed and analyzed).
    pub plan_misses: u64,
    /// Web-service requests observed at the mediator.
    pub ws_requests: u64,
    /// Web-service requests actually issued to the source access
    /// layer (handler attempts; the rest were coalesced).
    pub ws_issued: u64,
    /// Web-service requests answered without touching the source
    /// (per-evaluation memo, response cache, or in-batch dedup).
    pub ws_coalesced: u64,
    /// Batched web-service flushes (`call_many` round trips).
    pub ws_batches: u64,
    /// Crash-recovery passes run (`DataSpace::recover`).
    pub xa_recovery_runs: u64,
    /// In-doubt transactions found across recovery passes (begun, no
    /// commit decision journaled → presumed abort).
    pub xa_in_doubt: u64,
    /// Branch commits replayed for decided-but-incomplete transactions.
    pub xa_rolled_forward: u64,
    /// Branch rollbacks performed for in-doubt transactions.
    pub xa_rolled_back: u64,
    /// Branch replays skipped because the branch had already reached
    /// the target state (idempotent replay).
    pub xa_replays_skipped: u64,
    /// Requests shed by serving-pool admission control (queue full, or
    /// queue wait consumed the deadline) — they never reached a worker.
    pub budget_shed: u64,
    /// Requests that failed with `aldsp:CANCELLED` (external
    /// cancellation observed at a cooperative check point).
    pub budget_cancelled: u64,
    /// Requests that failed with `aldsp:DEADLINE_EXCEEDED`.
    pub budget_deadline: u64,
    /// Requests that failed with `aldsp:FUEL_EXHAUSTED`.
    pub budget_fuel: u64,
    /// Requests that failed with `aldsp:MEMORY_LIMIT`.
    pub budget_memory: u64,
    /// XDM node records allocated (construction + materializing
    /// copies) since the engine was created (or the counters reset).
    pub nodes_built: u64,
    /// Immutable subtrees adopted by reference ("grafted") into a
    /// constructed element/document instead of being deep-copied.
    pub subtrees_grafted: u64,
    /// Node records the grafts above saved us from allocating (the
    /// summed deep size of every grafted subtree).
    pub deep_copy_nodes_avoided: u64,
    /// Intern-table lookups that found an existing symbol (QName
    /// parts and repeated text/attribute values share one allocation).
    pub interned_hits: u64,
    /// FLWOR tuples advanced through the streaming pipeline (one per
    /// pull, whether or not the tuple survived its `where` filters).
    pub tuples_pulled: u64,
    /// Streams abandoned before exhaustion — an early-exit consumer
    /// (`exists`, `subsequence`, a positional predicate, a quantifier)
    /// decided its answer without draining the source.
    pub early_exits: u64,
    /// Source items an abandoned stream never materialized into
    /// tuples: work the eager evaluator would have done and the
    /// pipelined one skipped.
    pub items_never_built: u64,
}

impl OptStats {
    /// Fold another counter block into this one, field by field. The
    /// serving pool uses this to aggregate each worker's per-engine
    /// counters into the single totals line `xqsh --explain` prints.
    pub fn accumulate(&mut self, other: &OptStats) {
        self.join_hits += other.join_hits;
        self.join_misses += other.join_misses;
        self.join_invalidations += other.join_invalidations;
        self.mat_hits += other.mat_hits;
        self.mat_misses += other.mat_misses;
        self.mat_invalidations += other.mat_invalidations;
        self.pushdown_rewrites += other.pushdown_rewrites;
        self.indexed_selects += other.indexed_selects;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.ws_requests += other.ws_requests;
        self.ws_issued += other.ws_issued;
        self.ws_coalesced += other.ws_coalesced;
        self.ws_batches += other.ws_batches;
        self.xa_recovery_runs += other.xa_recovery_runs;
        self.xa_in_doubt += other.xa_in_doubt;
        self.xa_rolled_forward += other.xa_rolled_forward;
        self.xa_rolled_back += other.xa_rolled_back;
        self.xa_replays_skipped += other.xa_replays_skipped;
        self.budget_shed += other.budget_shed;
        self.budget_cancelled += other.budget_cancelled;
        self.budget_deadline += other.budget_deadline;
        self.budget_fuel += other.budget_fuel;
        self.budget_memory += other.budget_memory;
        self.nodes_built += other.nodes_built;
        self.subtrees_grafted += other.subtrees_grafted;
        self.deep_copy_nodes_avoided += other.deep_copy_nodes_avoided;
        self.interned_hits += other.interned_hits;
        self.tuples_pulled += other.tuples_pulled;
        self.early_exits += other.early_exits;
        self.items_never_built += other.items_never_built;
    }
}

/// Live (interior-mutability) counter block behind [`OptStats`].
/// Shared with the evaluator and with host source closures (the
/// introspected read functions count materialization hits/misses and
/// indexed selects through it).
#[derive(Default)]
pub struct OptCounters {
    /// See [`OptStats::join_hits`].
    pub join_hits: Cell<u64>,
    /// See [`OptStats::join_misses`].
    pub join_misses: Cell<u64>,
    /// See [`OptStats::join_invalidations`].
    pub join_invalidations: Cell<u64>,
    /// See [`OptStats::mat_hits`].
    pub mat_hits: Cell<u64>,
    /// See [`OptStats::mat_misses`].
    pub mat_misses: Cell<u64>,
    /// See [`OptStats::mat_invalidations`].
    pub mat_invalidations: Cell<u64>,
    /// See [`OptStats::pushdown_rewrites`].
    pub pushdown_rewrites: Cell<u64>,
    /// See [`OptStats::indexed_selects`].
    pub indexed_selects: Cell<u64>,
    /// See [`OptStats::plan_hits`].
    pub plan_hits: Cell<u64>,
    /// See [`OptStats::plan_misses`].
    pub plan_misses: Cell<u64>,
    /// See [`OptStats::ws_requests`].
    pub ws_requests: Cell<u64>,
    /// See [`OptStats::ws_issued`].
    pub ws_issued: Cell<u64>,
    /// See [`OptStats::ws_coalesced`].
    pub ws_coalesced: Cell<u64>,
    /// See [`OptStats::ws_batches`].
    pub ws_batches: Cell<u64>,
    /// See [`OptStats::xa_recovery_runs`].
    pub xa_recovery_runs: Cell<u64>,
    /// See [`OptStats::xa_in_doubt`].
    pub xa_in_doubt: Cell<u64>,
    /// See [`OptStats::xa_rolled_forward`].
    pub xa_rolled_forward: Cell<u64>,
    /// See [`OptStats::xa_rolled_back`].
    pub xa_rolled_back: Cell<u64>,
    /// See [`OptStats::xa_replays_skipped`].
    pub xa_replays_skipped: Cell<u64>,
    /// See [`OptStats::budget_shed`].
    pub budget_shed: Cell<u64>,
    /// See [`OptStats::budget_cancelled`].
    pub budget_cancelled: Cell<u64>,
    /// See [`OptStats::budget_deadline`].
    pub budget_deadline: Cell<u64>,
    /// See [`OptStats::budget_fuel`].
    pub budget_fuel: Cell<u64>,
    /// See [`OptStats::budget_memory`].
    pub budget_memory: Cell<u64>,
    /// See [`OptStats::tuples_pulled`].
    pub tuples_pulled: Cell<u64>,
    /// See [`OptStats::early_exits`].
    pub early_exits: Cell<u64>,
    /// See [`OptStats::items_never_built`].
    pub items_never_built: Cell<u64>,
}

impl OptCounters {
    /// Add one to a counter cell (convenience for closure call sites).
    pub fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Add `n` to a counter cell.
    pub fn add(cell: &Cell<u64>, n: u64) {
        cell.set(cell.get() + n);
    }
}

/// A query compiled once and executable many times: the parsed module,
/// its prolog already loaded into the engine, a constant-folded body,
/// and the statically resolved function/procedure bindings.
///
/// Obtained from [`Engine::prepare`]; executed with
/// [`Engine::execute_prepared`]. This is the paper-era mediation-tier
/// shape — data-service functions are compiled once at deployment and
/// served many times — applied to our `eval_query` path.
pub struct PreparedQuery {
    module: Rc<Module>,
    /// Constant-folded expression body (None for block/empty bodies,
    /// or when the plan was prepared without analysis).
    folded_body: Option<Expr>,
    /// Call sites resolved against the registries at prepare time.
    resolved: HashMap<(QName, usize), fold::ResolvedBinding>,
    /// *Initialized* global variable values computed by the prolog
    /// load, re-installed verbatim on every plan-cache hit
    /// (prolog-load-once semantics). External variables are
    /// deliberately absent: they are the ALDSP parameter mechanism
    /// and must read through to the engine's live globals map so
    /// [`Engine::set_global`] re-binds are observed by cached plans.
    globals: Vec<(QName, Sequence)>,
    /// Registry generation this plan was prepared against (the
    /// "prolog fingerprint" half of the cache key): a later external
    /// registration invalidates the plan.
    gen: u64,
}

impl PreparedQuery {
    /// The parsed module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The body this plan will evaluate: the constant-folded tree if
    /// analysis ran, otherwise the module's original expression body.
    pub fn body(&self) -> Option<&Expr> {
        self.folded_body.as_ref().or(match &self.module.body {
            QueryBody::Expr(e) => Some(e),
            _ => None,
        })
    }

    /// How many statically known call sites resolved at prepare time.
    pub fn resolved_binding_count(&self) -> usize {
        self.resolved.len()
    }
}

/// A registered procedure implementation.
#[derive(Clone)]
pub enum ProcKind {
    /// A user-declared XQSE procedure.
    User(Rc<ProcedureDecl>),
    /// A native implementation.
    External {
        /// The implementation.
        f: ExternalFn,
        /// Readonly procedures may be called from expressions.
        readonly: bool,
    },
}

/// The evaluation engine.
///
/// `Engine` is a cheap handle: cloning bumps one `Rc`, and every clone
/// shares the same registries, caches, counters, and knobs. The
/// streaming FLWOR pipeline relies on this — a lazy
/// [`Sequence`](xdm::sequence::Sequence) may outlive the evaluator
/// call that created it, so its pull source owns an `Engine` clone
/// instead of a borrow. All interior state already used
/// `Cell`/`RefCell`/`Rc` (the engine is single-threaded by design:
/// `!Send`/`!Sync`), so sharing the one `EngineInner` is behaviorally
/// identical to the previous by-value struct.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<EngineInner>,
}

/// The engine state proper; see [`Engine`] for the field-by-field
/// story. Private: all access goes through the handle's methods.
struct EngineInner {
    functions: RefCell<HashMap<(QName, usize), FunctionKind>>,
    procedures: RefCell<HashMap<(QName, usize), ProcKind>>,
    globals: RefCell<HashMap<QName, Sequence>>,
    documents: RefCell<HashMap<String, NodeHandle>>,
    proc_runner: RefCell<Option<ProcRunner>>,
    /// Fixed "current" instant for fn:current-date/dateTime —
    /// deterministic by design (tests and reproducible benchmarks).
    now: Cell<DateTime>,
    /// Enable declarative-core optimizations (hash-join memoization,
    /// predicate pushdown, materialization caching). Shared (`Rc`) so
    /// source closures registered at introspection time observe
    /// toggles live. The XQueryP-comparison experiments switch this
    /// off to model sequential-mode evaluation, where reordering is
    /// not permitted (paper §IV).
    optimize: Rc<Cell<bool>>,
    /// Whether the FLWOR hash-join rewrite is available. Separate from
    /// [`Engine::optimize`]: the join rewrite predates the
    /// pushdown/versioning layer, so the kill-switch
    /// (`set_optimize(false)`) keeps it — that restores exactly the
    /// pre-optimizer baseline. Sequential (XQueryP) evaluation and the
    /// E11 join ablation disable it explicitly.
    join_rewrite: Rc<Cell<bool>>,
    /// Thread-shareable mirrors of the optimize flag. Source layers
    /// that live behind `Arc` (the relational simulator's write path)
    /// register an `Arc<AtomicBool>` here; `set_optimize` fans out to
    /// them so optimize-gated fast paths on the storage side follow
    /// the engine toggle.
    opt_mirrors: RefCell<Vec<Arc<AtomicBool>>>,
    /// Pushdown capabilities by arity-0 read-function name.
    capabilities: RefCell<HashMap<QName, SourceCapability>>,
    /// Flush hooks for per-source materialization caches; invoked by
    /// [`Engine::invalidate_materialization`] when an update statement
    /// may have mutated cached trees in place.
    mat_flushers: RefCell<Vec<Rc<dyn Fn()>>>,
    /// Hooks notified by [`Engine::note_source_write`] whenever a
    /// statement may have written *some* source (procedure calls,
    /// update statements, datagraph submissions) — the cross-call
    /// companion of [`crate::Env::note_write`]. Web-service sources
    /// register an epoch bump here so their persistent read-through
    /// response caches stop serving pre-write responses on the fresh
    /// path (stale-read degradation still may).
    write_listeners: RefCell<Vec<Rc<dyn Fn()>>>,
    /// Whether the PR 4 executor layer (prepared-plan reuse + batched
    /// / memoized source access) is enabled. Separate from
    /// [`Engine::optimize`] so `XQSE_DISABLE_BATCH=1` restores exactly
    /// the PR 2 behavior while keeping pushdown/caching on; both
    /// flags must be on for the layer to engage.
    batch: Rc<Cell<bool>>,
    /// Bumped on every external function/procedure registration — the
    /// "prolog fingerprint" that invalidates cached plans prepared
    /// against an older registry.
    registry_gen: Cell<u64>,
    /// LRU cache of prepared plans, keyed by query source text.
    plan_cache: RefCell<Lru<String, Rc<PreparedQuery>>>,
    /// Batch entry points for batchable source functions (web-service
    /// operations), keyed like [`Engine::functions`].
    batchables: RefCell<HashMap<(QName, usize), BatchFn>>,
    /// Optimizer counters.
    opt: Rc<OptCounters>,
    /// Fast-path flag mirroring `budget.is_some()`: the evaluator hot
    /// loop reads this one `Cell<bool>` per step and skips all budget
    /// bookkeeping when no budget is installed, keeping the no-budget
    /// path within its 5% overhead guard.
    budget_active: Cell<bool>,
    /// Raw mirror of the `Arc` in `budget`, for the per-step hot
    /// path: reading `Option<Arc<_>>` out of a `RefCell` costs a
    /// borrow-flag round-trip per evaluation step, which the armed
    /// overhead guard can see. Null when no budget is installed;
    /// otherwise valid exactly as long as `budget` holds the owning
    /// `Arc` (both are updated together in [`Engine::force_budget`],
    /// and `Engine` is `!Sync`, so no other thread can swap them
    /// mid-read).
    budget_raw: Cell<*const crate::budget::Budget>,
    /// The budget of the request this engine is currently serving
    /// (installed per request by the serving pool or `xqsh` flags).
    budget: RefCell<Option<Arc<crate::budget::Budget>>>,
    /// Whether element/document constructors may *graft* (adopt by
    /// reference) already-materialized immutable subtrees instead of
    /// deep-copying them. Shared (`Rc`) so the evaluator observes
    /// toggles live; `XQSE_DISABLE_GRAFT=1` / [`Engine::set_graft`]
    /// restore the copy-always baseline for the E16 ablation and the
    /// CI kill-switch arm.
    graft: Rc<Cell<bool>>,
    /// Whether the evaluator may stream FLWOR tuples lazily (pipelined
    /// pull evaluation with early exits). Shared (`Rc`) so streams in
    /// flight observe toggles live; `XQSE_DISABLE_LAZY=1` /
    /// [`Engine::set_lazy`] restore fully eager evaluation for the
    /// E17 ablation and the lazy CI kill-switch arm.
    lazy: Rc<Cell<bool>>,
    /// Baseline snapshot of this thread's XDM construction counters,
    /// taken at engine creation (and on [`Engine::reset_opt_stats`]).
    /// [`Engine::opt_stats`] reports the delta since this baseline —
    /// valid because each engine evaluates on exactly one thread (the
    /// serving pool gives every worker a private engine).
    xdm_base: Cell<xdm::XdmStats>,
}

/// Default prepared-plan cache capacity: enough for every distinct
/// data-service function a realistic space serves, small enough that
/// eviction scans stay trivial.
const PLAN_CACHE_CAPACITY: usize = 64;

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with builtins only.
    pub fn new() -> Engine {
        Engine {
            inner: Rc::new(EngineInner {
                functions: RefCell::new(HashMap::new()),
                procedures: RefCell::new(HashMap::new()),
                globals: RefCell::new(HashMap::new()),
                documents: RefCell::new(HashMap::new()),
                proc_runner: RefCell::new(None),
                now: Cell::new(
                    DateTime::parse("2007-12-07T10:30:00").expect("valid literal"),
                ),
                // `XQSE_DISABLE_OPT=1` starts every engine in sequential
                // mode — the dual-mode CI runs use it to prove the whole
                // suite passes without the optimizer.
                optimize: Rc::new(Cell::new(
                    !matches!(std::env::var("XQSE_DISABLE_OPT").as_deref(), Ok("1")),
                )),
                // Deliberately NOT env-gated: the kill-switch restores the
                // pre-optimizer baseline, which had the join rewrite.
                join_rewrite: Rc::new(Cell::new(true)),
                opt_mirrors: RefCell::new(Vec::new()),
                capabilities: RefCell::new(HashMap::new()),
                mat_flushers: RefCell::new(Vec::new()),
                write_listeners: RefCell::new(Vec::new()),
                // `XQSE_DISABLE_BATCH=1` switches off the prepared-plan /
                // batched-source layer only, reproducing the PR 2
                // optimizer generation — the third dual-mode CI arm.
                batch: Rc::new(Cell::new(
                    !matches!(std::env::var("XQSE_DISABLE_BATCH").as_deref(), Ok("1")),
                )),
                registry_gen: Cell::new(0),
                plan_cache: RefCell::new(Lru::new(PLAN_CACHE_CAPACITY)),
                batchables: RefCell::new(HashMap::new()),
                opt: Rc::new(OptCounters::default()),
                budget_active: Cell::new(false),
                budget_raw: Cell::new(std::ptr::null()),
                budget: RefCell::new(None),
                // `XQSE_DISABLE_GRAFT=1` restores deep-copying element
                // construction everywhere — the E16 ablation and the
                // zero-copy CI kill-switch arm.
                graft: Rc::new(Cell::new(
                    !matches!(std::env::var("XQSE_DISABLE_GRAFT").as_deref(), Ok("1")),
                )),
                // `XQSE_DISABLE_LAZY=1` restores fully eager FLWOR
                // evaluation — the E17 ablation and the pipelined-lazy CI
                // kill-switch arm.
                lazy: Rc::new(Cell::new(
                    !matches!(std::env::var("XQSE_DISABLE_LAZY").as_deref(), Ok("1")),
                )),
                xdm_base: Cell::new(xdm::xdm_stats()),
            }),
        }
    }

    /// Install (or clear) the per-request budget this engine enforces.
    /// Also mirrors the budget into the thread-local slot the
    /// source-access layers read ([`crate::budget::current_budget`]).
    /// A no-op install when `XQSE_DISABLE_BUDGETS=1` (the kill switch)
    /// or when the budget has no limits (nothing to enforce — the
    /// caller keeps the `Arc` if it wants pure cancellation, which
    /// still works through [`Engine::set_budget`] by installing an
    /// unlimited budget explicitly via [`Engine::force_budget`]).
    pub fn set_budget(&self, budget: Option<Arc<crate::budget::Budget>>) {
        let budget = if crate::budget::budgets_enabled() { budget } else { None };
        self.force_budget(budget);
    }

    /// [`Engine::set_budget`] without the kill-switch gate: tests and
    /// the pool's cancellation path install unconditionally.
    pub fn force_budget(&self, budget: Option<Arc<crate::budget::Budget>>) {
        crate::budget::set_current_budget(budget.clone());
        self.inner.budget_active.set(budget.is_some());
        self.inner.budget_raw.set(
            budget.as_ref().map_or(std::ptr::null(), Arc::as_ptr),
        );
        *self.inner.budget.borrow_mut() = budget;
    }

    /// The installed budget as a plain borrow — the hot-path read
    /// behind [`Engine::budget_step`] and friends.
    ///
    /// SAFETY contract for callers: use the returned borrow
    /// immediately and do not call [`Engine::force_budget`] (which
    /// drops the owning `Arc`) while holding it.
    #[inline]
    fn budget_ref(&self) -> Option<&crate::budget::Budget> {
        let p = self.inner.budget_raw.get();
        if p.is_null() {
            None
        } else {
            // SAFETY: `budget_raw` is non-null only while the Arc in
            // `self.inner.budget` (set in the same force_budget call) keeps
            // the pointee alive, and `Engine` is `!Sync`, so nothing
            // can swap the budget concurrently with this read.
            unsafe { Some(&*p) }
        }
    }

    /// The budget currently installed on this engine, if any.
    pub fn budget(&self) -> Option<Arc<crate::budget::Budget>> {
        self.inner.budget.borrow().clone()
    }

    /// Is a budget installed? One `Cell` read — the evaluator's
    /// per-step fast path.
    #[inline]
    pub fn budget_active(&self) -> bool {
        self.inner.budget_active.get()
    }

    /// Hot-loop charge: one fuel unit (plus strided deadline /
    /// cancellation checks). No-op without an installed budget.
    #[inline]
    pub fn budget_step(&self) -> XdmResult<()> {
        match self.budget_ref() {
            Some(b) => b.step(),
            None => Ok(()),
        }
    }

    /// Coarse cooperative check (cancellation + deadline, unstrided).
    /// No-op without an installed budget.
    #[inline]
    pub fn budget_check(&self) -> XdmResult<()> {
        match self.budget_ref() {
            Some(b) => b.check(),
            None => Ok(()),
        }
    }

    /// Loop-head cooperative check: cancellation every call, the
    /// deadline strided (see [`crate::budget::Budget::loop_check`]).
    /// The statement interpreters call this at `while`/`iterate`
    /// heads. No-op without an installed budget.
    #[inline]
    pub fn budget_loop_check(&self) -> XdmResult<()> {
        match self.budget_ref() {
            Some(b) => b.loop_check(),
            None => Ok(()),
        }
    }

    /// Charge `units` of XDM allocation against the installed budget
    /// (node constructors). No-op without an installed budget.
    #[inline]
    pub fn budget_charge_memory(&self, units: u64) -> XdmResult<()> {
        match self.budget_ref() {
            Some(b) => b.charge_memory(units),
            None => Ok(()),
        }
    }

    /// Register an external (native) function. Bumps the registry
    /// generation: prepared plans from before this registration stop
    /// revalidating in the plan cache.
    pub fn register_external_function(
        &self,
        name: QName,
        arity: usize,
        f: ExternalFn,
    ) {
        self.inner.functions
            .borrow_mut()
            .insert((name, arity), FunctionKind::External { f, updating: false });
        self.inner.registry_gen.set(self.inner.registry_gen.get() + 1);
    }

    /// Register an external procedure (side-effecting unless
    /// `readonly`). Bumps the registry generation like
    /// [`Engine::register_external_function`].
    pub fn register_external_procedure(
        &self,
        name: QName,
        arity: usize,
        readonly: bool,
        f: ExternalFn,
    ) {
        self.inner.procedures
            .borrow_mut()
            .insert((name, arity), ProcKind::External { f, readonly });
        self.inner.registry_gen.set(self.inner.registry_gen.get() + 1);
    }

    /// Register a batch entry point for an already-registered external
    /// function: the FLWOR evaluator flushes accumulated iterations
    /// through it in one coalesced round trip (web-service sources).
    pub fn register_batchable_function(&self, name: QName, arity: usize, f: BatchFn) {
        self.inner.batchables.borrow_mut().insert((name, arity), f);
    }

    /// The batch entry point of a function, if it is batchable.
    pub fn batchable(&self, name: &QName, arity: usize) -> Option<BatchFn> {
        self.inner.batchables.borrow().get(&(name.clone(), arity)).cloned()
    }

    /// Bind a global variable (external variables, ALDSP parameters).
    pub fn set_global(&self, name: QName, value: Sequence) {
        self.inner.globals.borrow_mut().insert(name, value);
    }

    /// Look up a global variable.
    pub fn global(&self, name: &QName) -> Option<Sequence> {
        self.inner.globals.borrow().get(name).cloned()
    }

    /// Register a document for `fn:doc`.
    pub fn register_document(&self, uri: impl Into<String>, doc: NodeHandle) {
        self.inner.documents.borrow_mut().insert(uri.into(), doc);
    }

    /// Resolve a document registered for `fn:doc`.
    pub fn document(&self, uri: &str) -> Option<NodeHandle> {
        self.inner.documents.borrow().get(uri).cloned()
    }

    /// Install the statement-engine hook that runs user procedures.
    pub fn install_proc_runner(&self, runner: ProcRunner) {
        *self.inner.proc_runner.borrow_mut() = Some(runner);
    }

    /// The installed procedure runner, if any.
    pub fn proc_runner(&self) -> Option<ProcRunner> {
        self.inner.proc_runner.borrow().clone()
    }

    /// Fixed current dateTime.
    pub fn now(&self) -> DateTime {
        self.inner.now.get()
    }

    /// Override the engine clock (deterministic tests/benches).
    pub fn set_now(&self, now: DateTime) {
        self.inner.now.set(now);
    }

    /// Whether declarative optimizations are enabled.
    pub fn optimize_enabled(&self) -> bool {
        self.inner.optimize.get()
    }

    /// Toggle declarative optimizations (the XQueryP sequential-mode
    /// comparison disables them). This is the kill-switch for the
    /// whole performance layer: join memoization, predicate pushdown,
    /// indexed selects, and materialization caching all key off it.
    pub fn set_optimize(&self, on: bool) {
        self.inner.optimize.set(on);
        for m in self.inner.opt_mirrors.borrow().iter() {
            m.store(on, Ordering::Relaxed);
        }
    }

    /// A shared handle on the optimize flag. Source closures capture
    /// this at introspection time so `set_optimize` toggles their
    /// fast paths live.
    pub fn optimize_handle(&self) -> Rc<Cell<bool>> {
        self.inner.optimize.clone()
    }

    /// Register a thread-shareable mirror of the optimize flag (for
    /// `Arc`-held storage layers whose fast paths must follow
    /// [`Engine::set_optimize`]). The mirror is synchronized to the
    /// current flag value immediately.
    pub fn register_opt_mirror(&self, mirror: Arc<AtomicBool>) {
        mirror.store(self.inner.optimize.get(), Ordering::Relaxed);
        self.inner.opt_mirrors.borrow_mut().push(mirror);
    }

    /// Whether the batched/prepared executor layer is enabled (PR 4).
    /// `set_optimize(false)` also disables it — `optimize` stays the
    /// umbrella kill-switch for the whole performance stack.
    pub fn batch_enabled(&self) -> bool {
        self.inner.batch.get()
    }

    /// Toggle the batched/prepared executor layer independently of the
    /// umbrella flag (the `XQSE_DISABLE_BATCH=1` CI arm and the E13
    /// parse-per-call ablation use this to reproduce PR 2 behavior).
    pub fn set_batch(&self, on: bool) {
        self.inner.batch.set(on);
    }

    /// A shared handle on the batch flag (captured by source closures
    /// registered at introspection time).
    pub fn batch_handle(&self) -> Rc<Cell<bool>> {
        self.inner.batch.clone()
    }

    /// Are prepared plans cached and reused? Requires both the
    /// umbrella optimize flag and the batch-layer flag.
    pub fn plan_caching_enabled(&self) -> bool {
        self.inner.optimize.get() && self.inner.batch.get()
    }

    /// Resize the prepared-plan cache (shrinking evicts LRU entries).
    pub fn set_plan_cache_capacity(&self, cap: usize) {
        self.inner.plan_cache.borrow_mut().set_capacity(cap);
    }

    /// Whether the FLWOR hash-join rewrite is available (default: yes,
    /// even with `set_optimize(false)` — the rewrite is part of the
    /// pre-optimizer baseline).
    pub fn join_rewrite_enabled(&self) -> bool {
        self.inner.join_rewrite.get()
    }

    /// Toggle the hash-join rewrite independently of the optimizer
    /// kill-switch. Sequential (XQueryP) program runs disable it —
    /// reordering is not permitted in sequential mode (paper §IV) —
    /// and the E11 ablation uses it to isolate the join memoization's
    /// contribution.
    pub fn set_join_rewrite(&self, on: bool) {
        self.inner.join_rewrite.set(on);
    }

    /// Whether element/document constructors may adopt (graft)
    /// already-materialized immutable subtrees by reference instead of
    /// deep-copying them. Independent of the umbrella optimize flag:
    /// grafting is a construction-layer property, not a query rewrite,
    /// and the dual-mode CI arms toggle it separately.
    pub fn graft_enabled(&self) -> bool {
        self.inner.graft.get()
    }

    /// Toggle zero-copy subtree adoption (the E16 ablation and the
    /// `XQSE_DISABLE_GRAFT=1` CI arm restore the copy-always
    /// baseline through this).
    pub fn set_graft(&self, on: bool) {
        self.inner.graft.set(on);
    }

    /// A shared handle on the graft flag (captured by the evaluator).
    pub fn graft_handle(&self) -> Rc<Cell<bool>> {
        self.inner.graft.clone()
    }

    /// Whether FLWOR evaluation may stream tuples lazily (pipelined
    /// pull evaluation with early-exit consumers). Independent of the
    /// umbrella optimize flag: laziness is an evaluation-model
    /// property, not a query rewrite, and the dual-mode CI arms
    /// toggle it separately.
    pub fn lazy_enabled(&self) -> bool {
        self.inner.lazy.get()
    }

    /// Toggle pipelined lazy evaluation (the E17 ablation and the
    /// `XQSE_DISABLE_LAZY=1` CI arm restore the materialize-everything
    /// baseline through this).
    pub fn set_lazy(&self, on: bool) {
        self.inner.lazy.set(on);
    }

    /// A shared handle on the lazy flag (captured by the evaluator).
    pub fn lazy_handle(&self) -> Rc<Cell<bool>> {
        self.inner.lazy.clone()
    }

    /// Advertise a pushdown capability for a registered arity-0 read
    /// function.
    pub fn register_source_capability(&self, name: QName, cap: SourceCapability) {
        self.inner.capabilities.borrow_mut().insert(name, cap);
    }

    /// The pushdown capability of a read function, if advertised.
    pub fn source_capability(&self, name: &QName) -> Option<SourceCapability> {
        self.inner.capabilities.borrow().get(name).cloned()
    }

    /// Register a hook that flushes a per-source materialization
    /// cache.
    pub fn register_mat_flusher(&self, f: Rc<dyn Fn()>) {
        self.inner.mat_flushers.borrow_mut().push(f);
    }

    /// Flush every registered materialization cache and count one
    /// invalidation per flusher. Called by the statement engine after
    /// update statements, whose pending-update lists may mutate nodes
    /// that cached trees share.
    pub fn invalidate_materialization(&self) {
        for f in self.inner.mat_flushers.borrow().iter() {
            f();
        }
        let n = self.inner.mat_flushers.borrow().len() as u64;
        self.inner.opt.mat_invalidations.set(self.inner.opt.mat_invalidations.get() + n);
    }

    /// Register a hook to be notified on [`Engine::note_source_write`]
    /// (web-service read-through caches invalidate themselves here).
    pub fn register_write_listener(&self, f: Rc<dyn Fn()>) {
        self.inner.write_listeners.borrow_mut().push(f);
    }

    /// Notify every write listener that a statement may have written a
    /// source. Called by the statement engine alongside
    /// [`crate::Env::note_write`] (non-readonly procedure calls,
    /// update statements) and by the ALDSP tier after datagraph
    /// submissions.
    pub fn note_source_write(&self) {
        for f in self.inner.write_listeners.borrow().iter() {
            f();
        }
    }

    /// Record the outcome of one crash-recovery pass over the 2PC
    /// coordinator journal. The engine knows nothing of XA — these are
    /// plain totals the host (ALDSP tier) reports so `xqsh --explain`
    /// can surface recovery alongside the optimizer counters.
    pub fn note_recovery(
        &self,
        in_doubt: u64,
        rolled_forward: u64,
        rolled_back: u64,
        replays_skipped: u64,
    ) {
        let o = &self.inner.opt;
        OptCounters::bump(&o.xa_recovery_runs);
        OptCounters::add(&o.xa_in_doubt, in_doubt);
        OptCounters::add(&o.xa_rolled_forward, rolled_forward);
        OptCounters::add(&o.xa_rolled_back, rolled_back);
        OptCounters::add(&o.xa_replays_skipped, replays_skipped);
    }

    /// Snapshot of the optimizer counters.
    pub fn opt_stats(&self) -> OptStats {
        let xdm = xdm::xdm_stats().since(&self.inner.xdm_base.get());
        OptStats {
            join_hits: self.inner.opt.join_hits.get(),
            join_misses: self.inner.opt.join_misses.get(),
            join_invalidations: self.inner.opt.join_invalidations.get(),
            mat_hits: self.inner.opt.mat_hits.get(),
            mat_misses: self.inner.opt.mat_misses.get(),
            mat_invalidations: self.inner.opt.mat_invalidations.get(),
            pushdown_rewrites: self.inner.opt.pushdown_rewrites.get(),
            indexed_selects: self.inner.opt.indexed_selects.get(),
            plan_hits: self.inner.opt.plan_hits.get(),
            plan_misses: self.inner.opt.plan_misses.get(),
            ws_requests: self.inner.opt.ws_requests.get(),
            ws_issued: self.inner.opt.ws_issued.get(),
            ws_coalesced: self.inner.opt.ws_coalesced.get(),
            ws_batches: self.inner.opt.ws_batches.get(),
            xa_recovery_runs: self.inner.opt.xa_recovery_runs.get(),
            xa_in_doubt: self.inner.opt.xa_in_doubt.get(),
            xa_rolled_forward: self.inner.opt.xa_rolled_forward.get(),
            xa_rolled_back: self.inner.opt.xa_rolled_back.get(),
            xa_replays_skipped: self.inner.opt.xa_replays_skipped.get(),
            budget_shed: self.inner.opt.budget_shed.get(),
            budget_cancelled: self.inner.opt.budget_cancelled.get(),
            budget_deadline: self.inner.opt.budget_deadline.get(),
            budget_fuel: self.inner.opt.budget_fuel.get(),
            budget_memory: self.inner.opt.budget_memory.get(),
            nodes_built: xdm.nodes_built,
            subtrees_grafted: xdm.subtrees_grafted,
            deep_copy_nodes_avoided: xdm.deep_copy_nodes_avoided,
            interned_hits: xdm.interned_hits,
            tuples_pulled: self.inner.opt.tuples_pulled.get(),
            early_exits: self.inner.opt.early_exits.get(),
            items_never_built: self.inner.opt.items_never_built.get(),
        }
    }

    /// Reset the optimizer counters (benchmarks isolate phases).
    pub fn reset_opt_stats(&self) {
        let o = &self.inner.opt;
        o.join_hits.set(0);
        o.join_misses.set(0);
        o.join_invalidations.set(0);
        o.mat_hits.set(0);
        o.mat_misses.set(0);
        o.mat_invalidations.set(0);
        o.pushdown_rewrites.set(0);
        o.indexed_selects.set(0);
        o.plan_hits.set(0);
        o.plan_misses.set(0);
        o.ws_requests.set(0);
        o.ws_issued.set(0);
        o.ws_coalesced.set(0);
        o.ws_batches.set(0);
        o.xa_recovery_runs.set(0);
        o.xa_in_doubt.set(0);
        o.xa_rolled_forward.set(0);
        o.xa_rolled_back.set(0);
        o.xa_replays_skipped.set(0);
        o.budget_shed.set(0);
        o.budget_cancelled.set(0);
        o.budget_deadline.set(0);
        o.budget_fuel.set(0);
        o.budget_memory.set(0);
        o.tuples_pulled.set(0);
        o.early_exits.set(0);
        o.items_never_built.set(0);
        self.inner.xdm_base.set(xdm::xdm_stats());
    }

    /// Shared counter block for the evaluator and source closures.
    pub fn opt_counters(&self) -> Rc<OptCounters> {
        self.inner.opt.clone()
    }

    /// Look up a function by expanded name and arity.
    pub fn function(&self, name: &QName, arity: usize) -> Option<FunctionKind> {
        self.inner.functions.borrow().get(&(name.clone(), arity)).cloned()
    }

    /// Look up a procedure by expanded name and arity.
    pub fn procedure(&self, name: &QName, arity: usize) -> Option<ProcKind> {
        self.inner.procedures.borrow().get(&(name.clone(), arity)).cloned()
    }

    /// Parse a module and register its prolog declarations. Global
    /// variable initializers are evaluated immediately, in order.
    /// Returns the parsed module (the body is *not* executed here).
    pub fn load(&self, src: &str) -> XdmResult<Module> {
        let module = parse_module(src)?;
        self.load_prolog(&module)?;
        Ok(module)
    }

    /// Register a pre-parsed module's prolog.
    pub fn load_prolog(&self, module: &Module) -> XdmResult<()> {
        for f in &module.prolog.functions {
            let key = (f.name.clone(), f.params.len());
            if f.body.is_none() {
                // `external`: the host must have registered it
                // already; keep an existing registration.
                if self.inner.functions.borrow().contains_key(&key) {
                    continue;
                }
                return Err(XdmError::new(
                    ErrorCode::XPST0017,
                    format!(
                        "external function {}#{} has no host binding",
                        f.name,
                        f.params.len()
                    ),
                ));
            }
            self.inner.functions
                .borrow_mut()
                .insert(key, FunctionKind::User(Rc::new(f.clone())));
        }
        for p in &module.prolog.procedures {
            let key = (p.name.clone(), p.params.len());
            if p.body.is_none() {
                if self.inner.procedures.borrow().contains_key(&key) {
                    continue;
                }
                return Err(XdmError::new(
                    ErrorCode::XPST0017,
                    format!(
                        "external procedure {}#{} has no host binding",
                        p.name,
                        p.params.len()
                    ),
                ));
            }
            self.inner.procedures
                .borrow_mut()
                .insert(key, ProcKind::User(Rc::new(p.clone())));
        }
        // Global variables, in declaration order.
        for v in &module.prolog.variables {
            match &v.value {
                Some(init) => {
                    let mut env = Env::new();
                    let value = Evaluator::new(self).eval(init, &mut env)?;
                    if let Some(ty) = &v.ty {
                        ty.check(&value, &format!("declare variable ${}", v.name))?;
                    }
                    self.inner.globals.borrow_mut().insert(v.name.clone(), value);
                }
                None => {
                    if !self.inner.globals.borrow().contains_key(&v.name) {
                        return Err(XdmError::new(
                            ErrorCode::XPST0008,
                            format!("external variable ${} is unbound", v.name),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Prepare a query: parse, load the prolog, constant-fold the body
    /// and resolve its static call sites — once — and return a plan
    /// executable many times via [`Engine::execute_prepared`].
    ///
    /// With the plan cache enabled ([`Engine::plan_caching_enabled`]),
    /// plans are memoized by source text and revalidated against the
    /// registry generation ("prolog fingerprint"); a hit skips the
    /// parse and the prolog load entirely, re-installing the plan's
    /// own prolog declarations and captured *initialized* global
    /// values so the plan always executes against the prolog it was
    /// compiled with. External variables (ALDSP parameters) are not
    /// captured: they read through to the live globals map, so
    /// [`Engine::set_global`] re-binds between executions are
    /// honored without invalidating the plan. With
    /// the cache disabled this degenerates to parse-per-call (the
    /// PR 2 behavior) and skips the analysis pass.
    pub fn prepare(&self, src: &str) -> XdmResult<Rc<PreparedQuery>> {
        if !self.plan_caching_enabled() {
            return self.prepare_uncached(src, false);
        }
        let gen = self.inner.registry_gen.get();
        let hit = self.inner.plan_cache.borrow_mut().get(src).cloned();
        if let Some(pq) = hit {
            if pq.gen == gen {
                OptCounters::bump(&self.inner.opt.plan_hits);
                self.reinstall_prolog(&pq);
                return Ok(pq);
            }
        }
        OptCounters::bump(&self.inner.opt.plan_misses);
        let pq = self.prepare_uncached(src, true)?;
        self.inner.plan_cache.borrow_mut().insert(src.to_string(), pq.clone());
        Ok(pq)
    }

    fn prepare_uncached(&self, src: &str, analyze: bool) -> XdmResult<Rc<PreparedQuery>> {
        let module = parse_module(src)?;
        self.load_prolog(&module)?;
        let mut globals = Vec::new();
        for v in &module.prolog.variables {
            // Capture only *initialized* declarations. External
            // variables are the ALDSP parameter mechanism
            // ([`Engine::set_global`]); freezing their current value
            // into the plan would clobber a re-bind between
            // executions, so they read through to the live globals
            // map instead.
            if v.value.is_none() {
                continue;
            }
            if let Some(val) = self.inner.globals.borrow().get(&v.name) {
                globals.push((v.name.clone(), val.clone()));
            }
        }
        let (folded_body, resolved) = if analyze {
            match &module.body {
                QueryBody::Expr(e) => {
                    let folded = fold::fold_expr(self, e);
                    let resolved = fold::resolve_bindings(self, &folded);
                    (Some(folded), resolved)
                }
                _ => (None, HashMap::new()),
            }
        } else {
            (None, HashMap::new())
        };
        Ok(Rc::new(PreparedQuery {
            module: Rc::new(module),
            folded_body,
            resolved,
            globals,
            gen: self.inner.registry_gen.get(),
        }))
    }

    /// Re-install a cached plan's own prolog declarations and global
    /// values (cheap map inserts, no parsing, no initializer
    /// re-evaluation) so a plan-cache hit executes against the prolog
    /// it was compiled with even if another module shadowed it since.
    fn reinstall_prolog(&self, pq: &PreparedQuery) {
        for f in &pq.module.prolog.functions {
            if f.body.is_some() {
                self.inner.functions.borrow_mut().insert(
                    (f.name.clone(), f.params.len()),
                    FunctionKind::User(Rc::new(f.clone())),
                );
            }
        }
        for p in &pq.module.prolog.procedures {
            if p.body.is_some() {
                self.inner.procedures.borrow_mut().insert(
                    (p.name.clone(), p.params.len()),
                    ProcKind::User(Rc::new(p.clone())),
                );
            }
        }
        for (name, val) in &pq.globals {
            self.inner.globals.borrow_mut().insert(name.clone(), val.clone());
        }
    }

    /// Execute a prepared plan in a fresh dynamic context.
    pub fn execute_prepared(&self, pq: &PreparedQuery) -> XdmResult<Sequence> {
        let mut env = Env::new();
        self.execute_prepared_in(pq, &mut env)
    }

    /// Execute a prepared plan in a caller-provided context.
    pub fn execute_prepared_in(
        &self,
        pq: &PreparedQuery,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        match (&pq.folded_body, &pq.module.body) {
            (Some(e), _) => Evaluator::new(self).eval(e, env),
            (None, QueryBody::Expr(e)) => Evaluator::new(self).eval(e, env),
            (None, QueryBody::None) => Ok(Sequence::empty()),
            (None, QueryBody::Block(_)) => Err(XdmError::new(
                ErrorCode::XPST0003,
                "query body is an XQSE block; use the xqse statement engine",
            )),
        }
    }

    /// Load a module and evaluate its query body, which must be an
    /// expression (use the `xqse` crate for block bodies). With the
    /// plan cache enabled this routes through [`Engine::prepare`], so
    /// repeated evaluation of the same source text parses once.
    pub fn eval_query(&self, src: &str) -> XdmResult<Sequence> {
        if self.plan_caching_enabled() {
            let pq = self.prepare(src)?;
            return self.execute_prepared(&pq);
        }
        let module = self.load(src)?;
        match &module.body {
            QueryBody::Expr(e) => {
                let mut env = Env::new();
                Evaluator::new(self).eval(e, &mut env)
            }
            QueryBody::None => Ok(Sequence::empty()),
            QueryBody::Block(_) => Err(XdmError::new(
                ErrorCode::XPST0003,
                "query body is an XQSE block; use the xqse statement engine",
            )),
        }
    }

    /// Evaluate a standalone expression string with extra namespace
    /// bindings, in a fresh context.
    pub fn eval_expr_str(
        &self,
        src: &str,
        extra_ns: &[(&str, &str)],
    ) -> XdmResult<Sequence> {
        let expr = xqparser::parser::parse_expr(src, extra_ns)?;
        let mut env = Env::new();
        Evaluator::new(self).eval(&expr, &mut env)
    }

    /// Evaluate a parsed expression in a given context.
    pub fn eval_in(&self, expr: &xqparser::ast::Expr, env: &mut Env) -> XdmResult<Sequence> {
        Evaluator::new(self).eval(expr, env)
    }

    /// Call a registered function or readonly procedure by name.
    pub fn call(
        &self,
        name: &QName,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        Evaluator::new(self).call_function(name, args, env)
    }

    /// Like [`Engine::eval_query`], but the top-level result may be
    /// **lazy**: when the body is an eligible FLWOR chain, the
    /// returned sequence is a live pull stream, and the caller drains
    /// it through the fallible API (`Sequence::try_item`) — the
    /// streaming serializers in `xqsh` and the serving pool do exactly
    /// that, emitting output while tuples are still being produced.
    /// Mid-stream errors (including budget expiry charged per pulled
    /// tuple) surface from the drain, so callers of this entry MUST
    /// consume the result fallibly. Everything else — ineligible
    /// bodies, the kill switch, non-expression bodies — degrades to
    /// the eager [`Engine::eval_query`] result.
    pub fn eval_query_lazy(&self, src: &str) -> XdmResult<Sequence> {
        if self.plan_caching_enabled() {
            let pq = self.prepare(src)?;
            let mut env = Env::new();
            return self.execute_prepared_lazy_in(&pq, &mut env);
        }
        let module = self.load(src)?;
        match &module.body {
            QueryBody::Expr(e) => {
                let mut env = Env::new();
                Evaluator::new(self).eval_stream(e, &mut env)
            }
            QueryBody::None => Ok(Sequence::empty()),
            QueryBody::Block(_) => Err(XdmError::new(
                ErrorCode::XPST0003,
                "query body is an XQSE block; use the xqse statement engine",
            )),
        }
    }

    /// [`Engine::execute_prepared_in`] with a possibly-lazy result —
    /// see [`Engine::eval_query_lazy`] for the caller contract.
    pub fn execute_prepared_lazy_in(
        &self,
        pq: &PreparedQuery,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        match (&pq.folded_body, &pq.module.body) {
            (Some(e), _) => Evaluator::new(self).eval_stream(e, env),
            (None, QueryBody::Expr(e)) => Evaluator::new(self).eval_stream(e, env),
            (None, QueryBody::None) => Ok(Sequence::empty()),
            (None, QueryBody::Block(_)) => Err(XdmError::new(
                ErrorCode::XPST0003,
                "query body is an XQSE block; use the xqse statement engine",
            )),
        }
    }
}
