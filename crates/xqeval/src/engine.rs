//! The engine: registries for functions, procedures, global variables,
//! and documents; the entry points for loading modules and evaluating
//! queries.
//!
//! ALDSP binds physical sources by registering *external* functions
//! (reads, pure) and *external procedures* (create/update/delete,
//! side-effecting) here — exactly the "set of external XQSE procedures
//! … automatically provided … as a callable means to modify relational
//! source data" of §III.A.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use xdm::datetime::DateTime;
use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::Sequence;

use xqparser::ast::{FunctionDecl, Module, ProcedureDecl, QueryBody};
use xqparser::parser::parse_module;

use crate::context::Env;
use crate::eval::Evaluator;

/// A native (Rust) implementation bound to a QName/arity: the bridge
/// to ALDSP physical sources and other host functionality.
pub type ExternalFn = Rc<dyn Fn(&mut Env, Vec<Sequence>) -> XdmResult<Sequence>>;

/// Hook installed by the XQSE statement engine so that the expression
/// evaluator can call *user-defined readonly procedures* (which
/// require statement execution).
pub type ProcRunner =
    Rc<dyn Fn(&Engine, &ProcedureDecl, Vec<Sequence>, &mut Env) -> XdmResult<Sequence>>;

/// A registered function implementation.
#[derive(Clone)]
pub enum FunctionKind {
    /// A user-declared XQuery function.
    User(Rc<FunctionDecl>),
    /// A native implementation (assumed pure unless `updating`).
    External {
        /// The implementation.
        f: ExternalFn,
        /// True if the function produces updates (XUF updating
        /// function).
        updating: bool,
    },
}

/// A registered procedure implementation.
#[derive(Clone)]
pub enum ProcKind {
    /// A user-declared XQSE procedure.
    User(Rc<ProcedureDecl>),
    /// A native implementation.
    External {
        /// The implementation.
        f: ExternalFn,
        /// Readonly procedures may be called from expressions.
        readonly: bool,
    },
}

/// The evaluation engine.
pub struct Engine {
    functions: RefCell<HashMap<(QName, usize), FunctionKind>>,
    procedures: RefCell<HashMap<(QName, usize), ProcKind>>,
    globals: RefCell<HashMap<QName, Sequence>>,
    documents: RefCell<HashMap<String, NodeHandle>>,
    proc_runner: RefCell<Option<ProcRunner>>,
    /// Fixed "current" instant for fn:current-date/dateTime —
    /// deterministic by design (tests and reproducible benchmarks).
    now: Cell<DateTime>,
    /// Enable declarative-core optimizations (hash-join memoization).
    /// The XQueryP-comparison experiments switch this off to model
    /// sequential-mode evaluation, where reordering is not permitted
    /// (paper §IV).
    optimize: Cell<bool>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with builtins only.
    pub fn new() -> Engine {
        Engine {
            functions: RefCell::new(HashMap::new()),
            procedures: RefCell::new(HashMap::new()),
            globals: RefCell::new(HashMap::new()),
            documents: RefCell::new(HashMap::new()),
            proc_runner: RefCell::new(None),
            now: Cell::new(
                DateTime::parse("2007-12-07T10:30:00").expect("valid literal"),
            ),
            optimize: Cell::new(true),
        }
    }

    /// Register an external (native) function.
    pub fn register_external_function(
        &self,
        name: QName,
        arity: usize,
        f: ExternalFn,
    ) {
        self.functions
            .borrow_mut()
            .insert((name, arity), FunctionKind::External { f, updating: false });
    }

    /// Register an external procedure (side-effecting unless
    /// `readonly`).
    pub fn register_external_procedure(
        &self,
        name: QName,
        arity: usize,
        readonly: bool,
        f: ExternalFn,
    ) {
        self.procedures
            .borrow_mut()
            .insert((name, arity), ProcKind::External { f, readonly });
    }

    /// Bind a global variable (external variables, ALDSP parameters).
    pub fn set_global(&self, name: QName, value: Sequence) {
        self.globals.borrow_mut().insert(name, value);
    }

    /// Look up a global variable.
    pub fn global(&self, name: &QName) -> Option<Sequence> {
        self.globals.borrow().get(name).cloned()
    }

    /// Register a document for `fn:doc`.
    pub fn register_document(&self, uri: impl Into<String>, doc: NodeHandle) {
        self.documents.borrow_mut().insert(uri.into(), doc);
    }

    /// Resolve a document registered for `fn:doc`.
    pub fn document(&self, uri: &str) -> Option<NodeHandle> {
        self.documents.borrow().get(uri).cloned()
    }

    /// Install the statement-engine hook that runs user procedures.
    pub fn install_proc_runner(&self, runner: ProcRunner) {
        *self.proc_runner.borrow_mut() = Some(runner);
    }

    /// The installed procedure runner, if any.
    pub fn proc_runner(&self) -> Option<ProcRunner> {
        self.proc_runner.borrow().clone()
    }

    /// Fixed current dateTime.
    pub fn now(&self) -> DateTime {
        self.now.get()
    }

    /// Override the engine clock (deterministic tests/benches).
    pub fn set_now(&self, now: DateTime) {
        self.now.set(now);
    }

    /// Whether declarative optimizations are enabled.
    pub fn optimize_enabled(&self) -> bool {
        self.optimize.get()
    }

    /// Toggle declarative optimizations (the XQueryP sequential-mode
    /// comparison disables them).
    pub fn set_optimize(&self, on: bool) {
        self.optimize.set(on);
    }

    /// Look up a function by expanded name and arity.
    pub fn function(&self, name: &QName, arity: usize) -> Option<FunctionKind> {
        self.functions.borrow().get(&(name.clone(), arity)).cloned()
    }

    /// Look up a procedure by expanded name and arity.
    pub fn procedure(&self, name: &QName, arity: usize) -> Option<ProcKind> {
        self.procedures.borrow().get(&(name.clone(), arity)).cloned()
    }

    /// Parse a module and register its prolog declarations. Global
    /// variable initializers are evaluated immediately, in order.
    /// Returns the parsed module (the body is *not* executed here).
    pub fn load(&self, src: &str) -> XdmResult<Module> {
        let module = parse_module(src)?;
        self.load_prolog(&module)?;
        Ok(module)
    }

    /// Register a pre-parsed module's prolog.
    pub fn load_prolog(&self, module: &Module) -> XdmResult<()> {
        for f in &module.prolog.functions {
            let key = (f.name.clone(), f.params.len());
            if f.body.is_none() {
                // `external`: the host must have registered it
                // already; keep an existing registration.
                if self.functions.borrow().contains_key(&key) {
                    continue;
                }
                return Err(XdmError::new(
                    ErrorCode::XPST0017,
                    format!(
                        "external function {}#{} has no host binding",
                        f.name,
                        f.params.len()
                    ),
                ));
            }
            self.functions
                .borrow_mut()
                .insert(key, FunctionKind::User(Rc::new(f.clone())));
        }
        for p in &module.prolog.procedures {
            let key = (p.name.clone(), p.params.len());
            if p.body.is_none() {
                if self.procedures.borrow().contains_key(&key) {
                    continue;
                }
                return Err(XdmError::new(
                    ErrorCode::XPST0017,
                    format!(
                        "external procedure {}#{} has no host binding",
                        p.name,
                        p.params.len()
                    ),
                ));
            }
            self.procedures
                .borrow_mut()
                .insert(key, ProcKind::User(Rc::new(p.clone())));
        }
        // Global variables, in declaration order.
        for v in &module.prolog.variables {
            match &v.value {
                Some(init) => {
                    let mut env = Env::new();
                    let value = Evaluator::new(self).eval(init, &mut env)?;
                    if let Some(ty) = &v.ty {
                        ty.check(&value, &format!("declare variable ${}", v.name))?;
                    }
                    self.globals.borrow_mut().insert(v.name.clone(), value);
                }
                None => {
                    if !self.globals.borrow().contains_key(&v.name) {
                        return Err(XdmError::new(
                            ErrorCode::XPST0008,
                            format!("external variable ${} is unbound", v.name),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Load a module and evaluate its query body, which must be an
    /// expression (use the `xqse` crate for block bodies).
    pub fn eval_query(&self, src: &str) -> XdmResult<Sequence> {
        let module = self.load(src)?;
        match &module.body {
            QueryBody::Expr(e) => {
                let mut env = Env::new();
                Evaluator::new(self).eval(e, &mut env)
            }
            QueryBody::None => Ok(Sequence::empty()),
            QueryBody::Block(_) => Err(XdmError::new(
                ErrorCode::XPST0003,
                "query body is an XQSE block; use the xqse statement engine",
            )),
        }
    }

    /// Evaluate a standalone expression string with extra namespace
    /// bindings, in a fresh context.
    pub fn eval_expr_str(
        &self,
        src: &str,
        extra_ns: &[(&str, &str)],
    ) -> XdmResult<Sequence> {
        let expr = xqparser::parser::parse_expr(src, extra_ns)?;
        let mut env = Env::new();
        Evaluator::new(self).eval(&expr, &mut env)
    }

    /// Evaluate a parsed expression in a given context.
    pub fn eval_in(&self, expr: &xqparser::ast::Expr, env: &mut Env) -> XdmResult<Sequence> {
        Evaluator::new(self).eval(expr, env)
    }

    /// Call a registered function or readonly procedure by name.
    pub fn call(
        &self,
        name: &QName,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        Evaluator::new(self).call_function(name, args, env)
    }
}
