//! XQuery Update Facility pending update lists.
//!
//! Evaluating an updating expression does not change anything; it
//! produces **update primitives** collected on a pending update list
//! (PUL). The list is checked for incompatible updates (`XUDY0017`)
//! and then applied in the order prescribed by the XUF specification.
//! In XQSE, "execution of the update statement … constitutes a
//! snapshot, and all applied changes are visible to subsequent
//! statements and expressions" (§III.C.14) — the statement engine
//! opens a PUL, evaluates the updating expression into it, and applies
//! it at statement end.

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::{NodeHandle, NodeKind};
use xdm::qname::QName;

/// One update primitive.
#[derive(Debug, Clone)]
pub enum Update {
    /// `insert … into` (append).
    InsertInto {
        /// Target element/document.
        target: NodeHandle,
        /// Content nodes (already copied).
        content: Vec<NodeHandle>,
    },
    /// `insert … as first into`.
    InsertFirst {
        /// Target element/document.
        target: NodeHandle,
        /// Content nodes.
        content: Vec<NodeHandle>,
    },
    /// `insert … before`.
    InsertBefore {
        /// Sibling target.
        target: NodeHandle,
        /// Content nodes.
        content: Vec<NodeHandle>,
    },
    /// `insert … after`.
    InsertAfter {
        /// Sibling target.
        target: NodeHandle,
        /// Content nodes.
        content: Vec<NodeHandle>,
    },
    /// Attributes inserted into an element.
    InsertAttributes {
        /// Target element.
        target: NodeHandle,
        /// Attribute nodes.
        attrs: Vec<NodeHandle>,
    },
    /// `delete`.
    Delete {
        /// The node to detach.
        target: NodeHandle,
    },
    /// `replace node`.
    ReplaceNode {
        /// The node being replaced.
        target: NodeHandle,
        /// Replacement nodes.
        with: Vec<NodeHandle>,
    },
    /// `replace value of node`.
    ReplaceValue {
        /// The node whose value changes.
        target: NodeHandle,
        /// The new string value.
        value: String,
    },
    /// `rename node`.
    Rename {
        /// The element/attribute being renamed.
        target: NodeHandle,
        /// The new name.
        name: QName,
    },
}

impl Update {
    fn target(&self) -> &NodeHandle {
        match self {
            Update::InsertInto { target, .. }
            | Update::InsertFirst { target, .. }
            | Update::InsertBefore { target, .. }
            | Update::InsertAfter { target, .. }
            | Update::InsertAttributes { target, .. }
            | Update::Delete { target }
            | Update::ReplaceNode { target, .. }
            | Update::ReplaceValue { target, .. }
            | Update::Rename { target, .. } => target,
        }
    }
}

/// A pending update list.
#[derive(Debug, Clone, Default)]
pub struct Pul {
    updates: Vec<Update>,
}

impl Pul {
    /// An empty list.
    pub fn new() -> Pul {
        Pul::default()
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if no updates are pending.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The collected primitives.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Add a primitive, enforcing the XUDY0017-family compatibility
    /// rules: at most one `replace value of`, `replace node`, or
    /// `rename` per target node.
    pub fn add(&mut self, update: Update) -> XdmResult<()> {
        let conflict = match &update {
            Update::ReplaceValue { target, .. } => self.updates.iter().any(|u| {
                matches!(u, Update::ReplaceValue { target: t, .. } if t == target)
            }),
            Update::ReplaceNode { target, .. } => self.updates.iter().any(|u| {
                matches!(u, Update::ReplaceNode { target: t, .. } if t == target)
            }),
            Update::Rename { target, .. } => self
                .updates
                .iter()
                .any(|u| matches!(u, Update::Rename { target: t, .. } if t == target)),
            _ => false,
        };
        if conflict {
            return Err(XdmError::new(
                ErrorCode::XUDY0017,
                "incompatible updates: duplicate replace/rename on the same target",
            ));
        }
        self.updates.push(update);
        Ok(())
    }

    /// Merge another PUL into this one (used when an updating FLWOR
    /// accumulates updates from several iterations).
    pub fn merge(&mut self, other: Pul) -> XdmResult<()> {
        for u in other.updates {
            self.add(u)?;
        }
        Ok(())
    }

    /// Apply the list. Primitives are grouped and ordered as in XUF
    /// §3.2.2: inserts/renames/replace-values first, then replaces,
    /// then deletes — so that a delete of a target does not invalidate
    /// a sibling insert recorded earlier in the same snapshot.
    pub fn apply(self) -> XdmResult<()> {
        let mut replaces = Vec::new();
        let mut deletes = Vec::new();
        for u in &self.updates {
            match u {
                Update::InsertInto { target, content } => {
                    for c in content {
                        target.append_child(c)?;
                    }
                }
                Update::InsertFirst { target, content } => {
                    for c in content.iter().rev() {
                        target.insert_first_child(c)?;
                    }
                }
                Update::InsertBefore { target, content } => {
                    for c in content {
                        target.insert_before(c)?;
                    }
                }
                Update::InsertAfter { target, content } => {
                    for c in content.iter().rev() {
                        target.insert_after(c)?;
                    }
                }
                Update::InsertAttributes { target, attrs } => {
                    for a in attrs {
                        target.set_attribute(a)?;
                    }
                }
                Update::ReplaceValue { target, value } => {
                    target.replace_value(value)?;
                }
                Update::Rename { target, name } => {
                    target.rename(name.clone())?;
                }
                Update::ReplaceNode { .. } => replaces.push(u.clone()),
                Update::Delete { .. } => deletes.push(u.clone()),
            }
        }
        for u in replaces {
            if let Update::ReplaceNode { target, with } = u {
                target.replace_with(&with)?;
            }
        }
        for u in deletes {
            if let Update::Delete { target } = u {
                target.detach();
            }
        }
        Ok(())
    }

    /// Validate target node kinds eagerly (XUTY0008-family): inserts
    /// need element/document targets, renames need named nodes, etc.
    pub fn validate_target(update: &Update) -> XdmResult<()> {
        let kind = update.target().kind();
        let ok = match update {
            Update::InsertInto { .. } | Update::InsertFirst { .. } => {
                matches!(kind, NodeKind::Element | NodeKind::Document)
            }
            Update::InsertAttributes { .. } => kind == NodeKind::Element,
            Update::InsertBefore { .. } | Update::InsertAfter { .. } => {
                update.target().parent().is_some()
            }
            Update::Delete { .. } => true,
            Update::ReplaceNode { .. } => update.target().parent().is_some(),
            Update::ReplaceValue { .. } => kind != NodeKind::Document,
            Update::Rename { .. } => {
                matches!(kind, NodeKind::Element | NodeKind::Attribute)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(XdmError::new(
                ErrorCode::XUTY0008,
                format!("invalid target (kind {kind:?}) for update primitive"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::qname::QName;

    fn tree() -> NodeHandle {
        let root = NodeHandle::root_element(QName::new("r"));
        let arena = root.arena().clone();
        for name in ["a", "b", "c"] {
            let e = NodeHandle::new_element(&arena, QName::new(name));
            e.append_child(&NodeHandle::new_text(&arena, name)).unwrap();
            root.append_child(&e).unwrap();
        }
        root
    }

    fn names(root: &NodeHandle) -> Vec<String> {
        root.children().iter().map(|c| c.name().unwrap().local.to_string()).collect()
    }

    #[test]
    fn insert_variants_apply_in_order() {
        let root = tree();
        let arena = root.arena().clone();
        let mut pul = Pul::new();
        let x = NodeHandle::new_element(&arena, QName::new("x"));
        let y = NodeHandle::new_element(&arena, QName::new("y"));
        let z1 = NodeHandle::new_element(&arena, QName::new("z1"));
        let z2 = NodeHandle::new_element(&arena, QName::new("z2"));
        pul.add(Update::InsertInto { target: root.clone(), content: vec![x] }).unwrap();
        pul.add(Update::InsertFirst { target: root.clone(), content: vec![y] }).unwrap();
        let b = root.children()[1].clone();
        pul.add(Update::InsertBefore { target: b.clone(), content: vec![z1] }).unwrap();
        pul.add(Update::InsertAfter { target: b, content: vec![z2] }).unwrap();
        pul.apply().unwrap();
        assert_eq!(names(&root), vec!["y", "a", "z1", "b", "z2", "c", "x"]);
    }

    #[test]
    fn delete_applies_last() {
        // Insert-before a node that is also deleted in the same
        // snapshot: the insert must land (deletes run last).
        let root = tree();
        let arena = root.arena().clone();
        let b = root.children()[1].clone();
        let mut pul = Pul::new();
        let n = NodeHandle::new_element(&arena, QName::new("n"));
        pul.add(Update::Delete { target: b.clone() }).unwrap();
        pul.add(Update::InsertBefore { target: b, content: vec![n] }).unwrap();
        pul.apply().unwrap();
        assert_eq!(names(&root), vec!["a", "n", "c"]);
    }

    #[test]
    fn replace_value_and_rename() {
        let root = tree();
        let a = root.children()[0].clone();
        let mut pul = Pul::new();
        pul.add(Update::ReplaceValue { target: a.clone(), value: "new".into() })
            .unwrap();
        pul.add(Update::Rename { target: a.clone(), name: QName::new("renamed") })
            .unwrap();
        pul.apply().unwrap();
        assert_eq!(a.string_value(), "new");
        assert_eq!(a.name().unwrap().local, "renamed");
    }

    #[test]
    fn duplicate_replace_value_is_xudy0017() {
        let root = tree();
        let a = root.children()[0].clone();
        let mut pul = Pul::new();
        pul.add(Update::ReplaceValue { target: a.clone(), value: "1".into() }).unwrap();
        let err = pul
            .add(Update::ReplaceValue { target: a, value: "2".into() })
            .unwrap_err();
        assert!(err.is(ErrorCode::XUDY0017));
    }

    #[test]
    fn duplicate_rename_is_xudy0017() {
        let root = tree();
        let a = root.children()[0].clone();
        let mut pul = Pul::new();
        pul.add(Update::Rename { target: a.clone(), name: QName::new("x") }).unwrap();
        assert!(pul
            .add(Update::Rename { target: a, name: QName::new("y") })
            .is_err());
    }

    #[test]
    fn duplicate_delete_is_fine() {
        let root = tree();
        let a = root.children()[0].clone();
        let mut pul = Pul::new();
        pul.add(Update::Delete { target: a.clone() }).unwrap();
        pul.add(Update::Delete { target: a }).unwrap();
        pul.apply().unwrap();
        assert_eq!(names(&root), vec!["b", "c"]);
    }

    #[test]
    fn replace_node_applies() {
        let root = tree();
        let arena = root.arena().clone();
        let b = root.children()[1].clone();
        let r1 = NodeHandle::new_element(&arena, QName::new("r1"));
        let r2 = NodeHandle::new_element(&arena, QName::new("r2"));
        let mut pul = Pul::new();
        pul.add(Update::ReplaceNode { target: b, with: vec![r1, r2] }).unwrap();
        pul.apply().unwrap();
        assert_eq!(names(&root), vec!["a", "r1", "r2", "c"]);
    }

    #[test]
    fn validate_targets() {
        let root = tree();
        let arena = root.arena().clone();
        let t = NodeHandle::new_text(&arena, "t");
        root.append_child(&t).unwrap();
        // Insert into a text node is invalid.
        let bad = Update::InsertInto { target: t.clone(), content: vec![] };
        assert!(Pul::validate_target(&bad).is_err());
        // Rename a text node is invalid.
        let bad = Update::Rename { target: t, name: QName::new("x") };
        assert!(Pul::validate_target(&bad).is_err());
        // Replace a parentless node is invalid.
        let detached = NodeHandle::root_element(QName::new("d"));
        let bad = Update::ReplaceNode { target: detached, with: vec![] };
        assert!(Pul::validate_target(&bad).is_err());
    }

    #[test]
    fn merge_propagates_conflicts() {
        let root = tree();
        let a = root.children()[0].clone();
        let mut p1 = Pul::new();
        p1.add(Update::ReplaceValue { target: a.clone(), value: "1".into() }).unwrap();
        let mut p2 = Pul::new();
        p2.add(Update::ReplaceValue { target: a, value: "2".into() }).unwrap();
        assert!(p1.merge(p2).is_err());
    }
}
