//! A small, self-contained backtracking regular-expression engine for
//! the `fn:tokenize`, `fn:matches`, and `fn:replace` builtins.
//!
//! Supported syntax (the XML Schema regex subset these functions see
//! in practice): literals, `.`, escapes `\d \D \s \S \w \W \\ \. \* …`,
//! character classes `[a-z]`, `[^…]`, quantifiers `* + ? {m} {m,} {m,n}`
//! (greedy), alternation `|`, grouping `(…)`, anchors `^` and `$`.
//!
//! The engine compiles to a small NFA-ish AST and matches by
//! backtracking; patterns are tiny in this workload so worst-case
//! blowup is a non-issue.

use xdm::error::{ErrorCode, XdmError, XdmResult};

#[derive(Debug, Clone)]
enum Node {
    /// A literal char.
    Char(char),
    /// `.` — any char except newline.
    Any,
    /// A character class.
    Class { negated: bool, items: Vec<ClassItem> },
    /// `^`
    Start,
    /// `$`
    End,
    /// A group `(…)` of alternatives.
    Group(Vec<Vec<Node>>),
    /// A quantified node.
    Repeat { node: Box<Node>, min: u32, max: Option<u32> },
}

#[derive(Debug, Clone)]
enum ClassItem {
    Single(char),
    Range(char, char),
    Digit(bool),
    Space(bool),
    Word(bool),
}

/// A compiled regular expression.
///
/// ```
/// use xqeval::regex_lite::Regex;
/// let rx = Regex::compile(r"\d{3}-\d{4}").unwrap();
/// assert!(rx.is_match("call 555-1234 now"));
/// assert_eq!(
///     Regex::compile(" ").unwrap().tokenize("Michael Carey").unwrap(),
///     vec!["Michael", "Carey"]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    alts: Vec<Vec<Node>>,
}

fn rerr(msg: impl Into<String>) -> XdmError {
    XdmError::new(ErrorCode::FORX0002, format!("invalid regex: {}", msg.into()))
}

struct RxParser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> RxParser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> XdmResult<Vec<Vec<Node>>> {
        let mut alts = vec![self.parse_sequence()?];
        while self.peek() == Some('|') {
            self.next();
            alts.push(self.parse_sequence()?);
        }
        Ok(alts)
    }

    fn parse_sequence(&mut self) -> XdmResult<Vec<Node>> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            out.push(self.parse_quantifier(atom)?);
        }
        Ok(out)
    }

    fn parse_atom(&mut self) -> XdmResult<Node> {
        let c = self.next().ok_or_else(|| rerr("unexpected end"))?;
        Ok(match c {
            '.' => Node::Any,
            '^' => Node::Start,
            '$' => Node::End,
            '(' => {
                // Non-capturing prefix tolerated.
                if self.peek() == Some('?') {
                    self.next();
                    if self.peek() == Some(':') {
                        self.next();
                    } else {
                        return Err(rerr("unsupported group flag"));
                    }
                }
                let alts = self.parse_alternation()?;
                if self.next() != Some(')') {
                    return Err(rerr(format!("unbalanced group in {:?}", self.src)));
                }
                Node::Group(alts)
            }
            '[' => self.parse_class()?,
            '\\' => self.parse_escape()?,
            '*' | '+' | '?' => return Err(rerr(format!("dangling quantifier {c:?}"))),
            other => Node::Char(other),
        })
    }

    fn parse_escape(&mut self) -> XdmResult<Node> {
        let c = self.next().ok_or_else(|| rerr("dangling backslash"))?;
        Ok(match c {
            'd' => Node::Class { negated: false, items: vec![ClassItem::Digit(false)] },
            'D' => Node::Class { negated: false, items: vec![ClassItem::Digit(true)] },
            's' => Node::Class { negated: false, items: vec![ClassItem::Space(false)] },
            'S' => Node::Class { negated: false, items: vec![ClassItem::Space(true)] },
            'w' => Node::Class { negated: false, items: vec![ClassItem::Word(false)] },
            'W' => Node::Class { negated: false, items: vec![ClassItem::Word(true)] },
            'n' => Node::Char('\n'),
            'r' => Node::Char('\r'),
            't' => Node::Char('\t'),
            c @ ('\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}'
            | '|' | '^' | '$' | '-') => Node::Char(c),
            other => return Err(rerr(format!("unsupported escape \\{other}"))),
        })
    }

    fn parse_class(&mut self) -> XdmResult<Node> {
        let negated = if self.peek() == Some('^') {
            self.next();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let c = self.next().ok_or_else(|| rerr("unterminated class"))?;
            if c == ']' {
                if items.is_empty() {
                    // Leading ']' is a literal.
                    items.push(ClassItem::Single(']'));
                    continue;
                }
                return Ok(Node::Class { negated, items });
            }
            let lo = if c == '\\' {
                let e = self.next().ok_or_else(|| rerr("dangling backslash"))?;
                match e {
                    'd' => {
                        items.push(ClassItem::Digit(false));
                        continue;
                    }
                    's' => {
                        items.push(ClassItem::Space(false));
                        continue;
                    }
                    'w' => {
                        items.push(ClassItem::Word(false));
                        continue;
                    }
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                }
            } else {
                c
            };
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).copied() != Some(']')
                && self.chars.get(self.pos + 1).is_some()
            {
                self.next(); // '-'
                let hi = self.next().ok_or_else(|| rerr("unterminated range"))?;
                if hi < lo {
                    return Err(rerr(format!("bad range {lo}-{hi}")));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Single(lo));
            }
        }
    }

    fn parse_quantifier(&mut self, node: Node) -> XdmResult<Node> {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.next();
                (0, None)
            }
            Some('+') => {
                self.next();
                (1, None)
            }
            Some('?') => {
                self.next();
                (0, Some(1))
            }
            Some('{') => {
                self.next();
                let mut m = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    m.push(self.next().unwrap());
                }
                let min: u32 = m.parse().map_err(|_| rerr("bad {m,n}"))?;
                let max = if self.peek() == Some(',') {
                    self.next();
                    let mut n = String::new();
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        n.push(self.next().unwrap());
                    }
                    if n.is_empty() { None } else { Some(n.parse().map_err(|_| rerr("bad {m,n}"))?) }
                } else {
                    Some(min)
                };
                if self.next() != Some('}') {
                    return Err(rerr("unterminated {m,n}"));
                }
                if let Some(mx) = max {
                    if mx < min {
                        return Err(rerr("max < min in {m,n}"));
                    }
                }
                (min, max)
            }
            _ => return Ok(node),
        };
        if matches!(node, Node::Start | Node::End) {
            return Err(rerr("quantifier on anchor"));
        }
        Ok(Node::Repeat { node: Box::new(node), min, max })
    }
}

fn class_matches(items: &[ClassItem], negated: bool, c: char) -> bool {
    let hit = items.iter().any(|it| match it {
        ClassItem::Single(x) => *x == c,
        ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
        ClassItem::Digit(neg) => c.is_ascii_digit() != *neg,
        ClassItem::Space(neg) => c.is_whitespace() != *neg,
        ClassItem::Word(neg) => (c.is_alphanumeric() || c == '_') != *neg,
    });
    hit != negated
}

impl Regex {
    /// Compile a pattern.
    pub fn compile(pattern: &str) -> XdmResult<Regex> {
        let mut p = RxParser { chars: pattern.chars().collect(), pos: 0, src: pattern };
        let alts = p.parse_alternation()?;
        if p.pos != p.chars.len() {
            // p.pos is a *character* index; re-render the remainder
            // from the char vector rather than byte-slicing.
            let rest: String = p.chars[p.pos..].iter().collect();
            return Err(rerr(format!("trailing {rest:?}")));
        }
        Ok(Regex { alts })
    }

    /// Does the pattern match anywhere in `text` (fn:matches
    /// semantics)?
    pub fn is_match(&self, text: &str) -> bool {
        self.find_at_any(&text.chars().collect::<Vec<_>>()).is_some()
    }

    fn find_at_any(&self, chars: &[char]) -> Option<(usize, usize)> {
        for start in 0..=chars.len() {
            if let Some(end) = self.match_alts(&self.alts, chars, start) {
                return Some((start, end));
            }
        }
        None
    }

    fn match_alts(&self, alts: &[Vec<Node>], chars: &[char], pos: usize) -> Option<usize> {
        for alt in alts {
            if let Some(end) = self.match_seq(alt, 0, chars, pos) {
                return Some(end);
            }
        }
        None
    }

    fn match_seq(
        &self,
        seq: &[Node],
        idx: usize,
        chars: &[char],
        pos: usize,
    ) -> Option<usize> {
        let Some(node) = seq.get(idx) else { return Some(pos) };
        match node {
            Node::Char(c) => {
                if chars.get(pos) == Some(c) {
                    self.match_seq(seq, idx + 1, chars, pos + 1)
                } else {
                    None
                }
            }
            Node::Any => {
                if matches!(chars.get(pos), Some(c) if *c != '\n') {
                    self.match_seq(seq, idx + 1, chars, pos + 1)
                } else {
                    None
                }
            }
            Node::Class { negated, items } => {
                if matches!(chars.get(pos), Some(c) if class_matches(items, *negated, *c)) {
                    self.match_seq(seq, idx + 1, chars, pos + 1)
                } else {
                    None
                }
            }
            Node::Start => {
                if pos == 0 {
                    self.match_seq(seq, idx + 1, chars, pos)
                } else {
                    None
                }
            }
            Node::End => {
                if pos == chars.len() {
                    self.match_seq(seq, idx + 1, chars, pos)
                } else {
                    None
                }
            }
            Node::Group(alts) => {
                // Match each alternative followed by the remainder of
                // the sequence, flattened into one concatenation so
                // backtracking works across the group boundary.
                let rest = &seq[idx + 1..];
                for alt in alts {
                    let mut combined: Vec<Node> = alt.clone();
                    combined.extend_from_slice(rest);
                    if let Some(end) = self.match_seq(&combined, 0, chars, pos) {
                        return Some(end);
                    }
                }
                None
            }
            Node::Repeat { node, min, max } => {
                self.match_repeat(node, *min, *max, seq, idx, chars, pos)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn match_repeat(
        &self,
        node: &Node,
        min: u32,
        max: Option<u32>,
        seq: &[Node],
        idx: usize,
        chars: &[char],
        pos: usize,
    ) -> Option<usize> {
        // Greedy: collect all reachable end positions, try longest
        // first.
        let mut ends = vec![pos];
        let mut cur = pos;
        let limit = max.unwrap_or(u32::MAX);
        let single = std::slice::from_ref(node);
        for _ in 0..limit {
            match self.match_seq(single, 0, chars, cur) {
                Some(next) if next > cur || ends.len() as u32 <= min => {
                    // Zero-width repeats are cut off to avoid loops.
                    if next == cur {
                        break;
                    }
                    ends.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        if (ends.len() as u32) <= min && min > 0 {
            // Not enough repetitions (note: ends includes the 0-rep).
            if (ends.len() as u32 - 1) < min {
                return None;
            }
        }
        for (count, end) in ends.iter().enumerate().rev() {
            if (count as u32) < min {
                break;
            }
            if let Some(fin) = self.match_seq(seq, idx + 1, chars, *end) {
                return Some(fin);
            }
        }
        None
    }

    /// Split `text` on non-overlapping matches (fn:tokenize). A match
    /// of zero length is an error per the F&O spec.
    pub fn tokenize(&self, text: &str) -> XdmResult<Vec<String>> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        let mut token_start = 0;
        let mut pos = 0;
        while pos <= chars.len() {
            let mut matched = None;
            if let Some(end) = self.match_alts(&self.alts, &chars, pos) {
                if end == pos {
                    return Err(rerr("pattern matches zero-length string"));
                }
                matched = Some(end);
            }
            match matched {
                Some(end) => {
                    out.push(chars[token_start..pos].iter().collect());
                    token_start = end;
                    pos = end;
                }
                None => pos += 1,
            }
        }
        out.push(chars[token_start..].iter().collect());
        Ok(out)
    }

    /// Replace every match with `replacement` (no capture groups —
    /// `$n` is rejected, matching our documented subset).
    pub fn replace(&self, text: &str, replacement: &str) -> XdmResult<String> {
        if replacement.contains('$') {
            return Err(rerr("capture-group replacement not supported"));
        }
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::new();
        let mut pos = 0;
        while pos < chars.len() {
            match self.match_alts(&self.alts, &chars, pos) {
                Some(end) if end > pos => {
                    out.push_str(replacement);
                    pos = end;
                }
                Some(_) => {
                    return Err(rerr("pattern matches zero-length string"));
                }
                None => {
                    out.push(chars[pos]);
                    pos += 1;
                }
            }
        }
        // A trailing zero-width match is possible but rejected above.
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(p: &str) -> Regex {
        Regex::compile(p).unwrap()
    }

    #[test]
    fn literal_and_any() {
        assert!(rx("abc").is_match("xxabcxx"));
        assert!(!rx("abc").is_match("abx"));
        assert!(rx("a.c").is_match("azc"));
        assert!(!rx("a.c").is_match("a\nc"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(rx("[a-c]+").is_match("bbb"));
        assert!(!rx("^[a-c]+$").is_match("abd"));
        assert!(rx("[^0-9]").is_match("x"));
        assert!(!rx("[^0-9]").is_match("5"));
        assert!(rx("\\d{3}").is_match("abc123"));
        assert!(rx("\\s").is_match("a b"));
        assert!(rx("\\w+").is_match("hello_world"));
        assert!(rx("\\.").is_match("a.b"));
        assert!(!rx("\\.").is_match("ab"));
    }

    #[test]
    fn quantifiers() {
        assert!(rx("^ab*c$").is_match("ac"));
        assert!(rx("^ab*c$").is_match("abbbc"));
        assert!(rx("^ab+c$").is_match("abc"));
        assert!(!rx("^ab+c$").is_match("ac"));
        assert!(rx("^ab?c$").is_match("ac"));
        assert!(!rx("^ab?c$").is_match("abbc"));
        assert!(rx("^a{2,3}$").is_match("aa"));
        assert!(rx("^a{2,3}$").is_match("aaa"));
        assert!(!rx("^a{2,3}$").is_match("aaaa"));
        assert!(rx("^a{2}$").is_match("aa"));
        assert!(rx("^a{2,}$").is_match("aaaaa"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(rx("^(cat|dog)s?$").is_match("cats"));
        assert!(rx("^(cat|dog)s?$").is_match("dog"));
        assert!(!rx("^(cat|dog)s?$").is_match("cow"));
        assert!(rx("^(ab)+$").is_match("ababab"));
        assert!(!rx("^(ab)+$").is_match("aba"));
    }

    #[test]
    fn greedy_with_backtracking() {
        assert!(rx("^a.*c$").is_match("abcabc"));
        assert!(rx("^.*b$").is_match("aaab"));
    }

    #[test]
    fn tokenize_like_paper() {
        // fn:tokenize(fn:data($emp1/Name), ' ') — the use-case-3 call.
        let t = rx(" ").tokenize("Michael Carey").unwrap();
        assert_eq!(t, vec!["Michael", "Carey"]);
        let t = rx(",\\s*").tokenize("a, b,c").unwrap();
        assert_eq!(t, vec!["a", "b", "c"]);
        let t = rx(" ").tokenize("single").unwrap();
        assert_eq!(t, vec!["single"]);
        let t = rx(" ").tokenize("").unwrap();
        assert_eq!(t, vec![""]);
    }

    #[test]
    fn tokenize_rejects_zero_width() {
        assert!(rx("a*").tokenize("bab").is_err());
    }

    #[test]
    fn replace_basics() {
        assert_eq!(rx("o").replace("foo", "0").unwrap(), "f00");
        assert_eq!(rx("\\d+").replace("a1b22c", "#").unwrap(), "a#b#c");
        assert!(rx("x").replace("y", "$1").is_err());
    }

    #[test]
    fn compile_errors() {
        for bad in ["(", "a)", "[", "*a", "a{3,2}", "\\q", "a{,}", "^*"] {
            assert!(Regex::compile(bad).is_err(), "should reject {bad:?}");
        }
    }
}
