//! Streaming FLWOR evaluation — the pull pipeline behind lazy
//! sequences.
//!
//! [`FlworStream`] walks a `for`/`let`/`where` clause chain like an
//! odometer: each `for` clause holds its source sequence and a cursor,
//! and producing the next output item advances the innermost cursor
//! that still has items, refilling the clauses below it. Tuples are
//! therefore *pulled* one at a time by whoever consumes the resulting
//! [`Sequence`] — a pager, an `exists()` probe, or the incremental
//! serializer — instead of being materialized as the eager
//! `eval_flwor` tuple vectors.
//!
//! The stream owns everything it needs to run after the originating
//! `eval` call returns: a cheap [`Engine`] handle, a forked [`Env`]
//! snapshot of the visible bindings, and a clone of the clause/return
//! AST. Eligibility (no `order by`, no pending-update list, none of
//! the eager rewrites claiming the shape) is decided up front by
//! `Evaluator::eval_lazy`; this module assumes the chain qualifies.
//!
//! Budget accounting: every tuple pulled charges one fuel/deadline
//! step through [`Engine::budget_step`], on top of the steps the
//! clause and return expressions charge themselves, so a paused or
//! abandoned stream can never out-run the budget its request started
//! with.

use xdm::error::XdmResult;
use xdm::sequence::{Item, ItemSource, Sequence};
use xqparser::ast::{Expr, FlworClause};

use crate::context::Env;
use crate::engine::{Engine, OptCounters};
use crate::eval::Evaluator;

/// Per-clause iteration state. Only `for` clauses carry a cursor;
/// `let` and `where` slots stay [`Slot::Inert`].
enum Slot {
    Inert,
    For { seq: Sequence, idx: usize },
}

/// A pull source producing the items of a `for`/`let`/`where`/`return`
/// chain one tuple at a time. See the module docs.
pub(crate) struct FlworStream {
    engine: Engine,
    env: Env,
    clauses: Vec<FlworClause>,
    ret: Expr,
    slots: Vec<Slot>,
    /// Number of clauses currently entered; each entered clause owns
    /// exactly one scope on `env`, pushed on entry, popped on
    /// backtrack.
    depth: usize,
    started: bool,
    /// True once the consumer has seen the end of the stream (or a
    /// terminal error): a fully drained stream is not an early exit.
    done: bool,
    /// Return-value items of the current tuple not yet handed out.
    pending: Option<Sequence>,
    pending_idx: usize,
}

impl FlworStream {
    fn new(
        engine: &Engine,
        clauses: &[FlworClause],
        ret: &Expr,
        env: &Env,
    ) -> FlworStream {
        FlworStream {
            engine: engine.clone(),
            env: env.fork_for_stream(),
            clauses: clauses.to_vec(),
            ret: ret.clone(),
            slots: (0..clauses.len()).map(|_| Slot::Inert).collect(),
            depth: 0,
            started: false,
            done: false,
            pending: None,
            pending_idx: 0,
        }
    }

    /// Enter clauses `from..`, binding the first item of every `for`.
    /// Returns false when the pipeline is exhausted (some outer `for`
    /// ran dry while refilling).
    fn fill_from(&mut self, from: usize) -> XdmResult<bool> {
        let mut i = from;
        while i < self.clauses.len() {
            if self.enter_clause(i)? {
                i += 1;
            } else {
                match self.backtrack()? {
                    Some(j) => i = j,
                    None => return Ok(false),
                }
            }
        }
        Ok(true)
    }

    /// Enter clause `i` against the current bindings. Returns false on
    /// a dead end: an empty `for` source or a false `where`.
    fn enter_clause(&mut self, i: usize) -> XdmResult<bool> {
        match &self.clauses[i] {
            FlworClause::For { var, pos, source } => {
                let seq =
                    Evaluator::new(&self.engine).eval_lazy(source, &mut self.env)?;
                match seq.try_item(0)? {
                    Some(item) => {
                        self.env.push_scope();
                        self.env.bind(var.clone(), Sequence::one(item));
                        if let Some(p) = pos {
                            self.env.bind(p.clone(), Sequence::one(Item::integer(1)));
                        }
                        self.slots[i] = Slot::For { seq, idx: 0 };
                        self.depth = i + 1;
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
            FlworClause::Let { var, ty, value } => {
                // Let values are forced eagerly: a bound variable can
                // flow into arbitrary downstream expressions, and only
                // the stream's own choke points may hold un-forced
                // lazy sequences (see DESIGN §11).
                let v = Evaluator::new(&self.engine).eval(value, &mut self.env)?;
                if let Some(ty) = ty {
                    ty.check(&v, &format!("let ${var}"))?;
                }
                self.env.push_scope();
                self.env.bind(var.clone(), v);
                self.slots[i] = Slot::Inert;
                self.depth = i + 1;
                Ok(true)
            }
            FlworClause::Where(cond) => {
                // `effective_boolean` on a lazy condition pulls at
                // most two items — a nested stream short-circuits.
                let b = Evaluator::new(&self.engine)
                    .eval_lazy(cond, &mut self.env)?
                    .effective_boolean()?;
                self.env.push_scope();
                self.slots[i] = Slot::Inert;
                self.depth = i + 1;
                Ok(b)
            }
            FlworClause::OrderBy(_) => unreachable!(
                "order by is screened out by the streamability gate"
            ),
        }
    }

    /// Pop entered clauses innermost-first until some `for` cursor can
    /// advance; rebind it and return the clause index to resume
    /// filling from. `None` when every `for` is exhausted.
    fn backtrack(&mut self) -> XdmResult<Option<usize>> {
        while self.depth > 0 {
            let j = self.depth - 1;
            self.env.pop_scope();
            self.depth = j;
            if let Slot::For { seq, idx } = &mut self.slots[j] {
                match seq.try_item(*idx + 1)? {
                    Some(item) => {
                        *idx += 1;
                        let position = *idx as i64 + 1;
                        let FlworClause::For { var, pos, .. } = &self.clauses[j]
                        else {
                            unreachable!("for slot on a non-for clause")
                        };
                        self.env.push_scope();
                        self.env.bind(var.clone(), Sequence::one(item));
                        if let Some(p) = pos {
                            self.env
                                .bind(p.clone(), Sequence::one(Item::integer(position)));
                        }
                        self.depth = j + 1;
                        return Ok(Some(j + 1));
                    }
                    None => self.slots[j] = Slot::Inert,
                }
            }
        }
        Ok(None)
    }

    fn advance(&mut self) -> XdmResult<Option<Item>> {
        loop {
            if let Some(p) = &self.pending {
                if let Some(item) = p.try_item(self.pending_idx)? {
                    self.pending_idx += 1;
                    return Ok(Some(item));
                }
                self.pending = None;
            }
            let have = if self.started {
                match self.backtrack()? {
                    Some(j) => self.fill_from(j)?,
                    None => false,
                }
            } else {
                self.started = true;
                self.fill_from(0)?
            };
            if !have {
                return Ok(None);
            }
            // One fuel/deadline step per pulled tuple, so early-exit
            // consumers are charged for exactly the work they caused.
            self.engine.budget_step()?;
            OptCounters::bump(&self.engine.opt_counters().tuples_pulled);
            self.pending = Some(
                Evaluator::new(&self.engine).eval_lazy(&self.ret, &mut self.env)?,
            );
            self.pending_idx = 0;
        }
    }
}

impl ItemSource for FlworStream {
    fn next_item(&mut self) -> XdmResult<Option<Item>> {
        if self.done {
            return Ok(None);
        }
        let r = self.advance();
        if !matches!(r, Ok(Some(_))) {
            // Exhausted or errored: either way the consumer saw this
            // stream to its end, so dropping it is not an early exit.
            self.done = true;
        }
        r
    }
}

impl Drop for FlworStream {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let opt = self.engine.opt_counters();
        OptCounters::bump(&opt.early_exits);
        // Count what the early exit verifiably skipped: items whose
        // existence is already known (eager or fused sources) but that
        // were never consumed. Live lazy sources of unknown length are
        // not guessed at, so this is a lower bound.
        let mut skipped: u64 = 0;
        for slot in &self.slots {
            if let Slot::For { seq, idx } = slot {
                if let Some(n) = seq.known_len() {
                    skipped += n.saturating_sub(*idx + 1) as u64;
                }
            }
        }
        if let Some(p) = &self.pending {
            if let Some(n) = p.known_len() {
                skipped += n.saturating_sub(self.pending_idx) as u64;
            }
        }
        OptCounters::add(&opt.items_never_built, skipped);
    }
}

/// Wrap an eligible FLWOR chain as a lazy [`Sequence`].
pub(crate) fn flwor_stream(
    engine: &Engine,
    clauses: &[FlworClause],
    ret: &Expr,
    env: &Env,
) -> Sequence {
    Sequence::lazy(Box::new(FlworStream::new(engine, clauses, ret, env)))
}
