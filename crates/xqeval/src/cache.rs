//! A small bounded LRU map, shared by the prepared-plan cache and the
//! web-service response cache.
//!
//! Recency is a monotone tick stamped on every access; eviction scans
//! for the minimum stamp. That makes eviction O(len) — deliberate:
//! both users are small (tens of plans, thousands of responses) and
//! evict rarely, so a linked-list LRU would buy nothing but unsafe
//! code or index juggling. Capacity 0 disables storage entirely
//! (every insert evicts itself), which keeps callers branch-free.
//!
//! Values stored through any of these caches must be fully
//! materialized. Pipelined lazy sequences (DESIGN.md §11) carry
//! single-consumer pull state, so caching one would replay a
//! half-drained stream to later hits; the evaluator forces laziness
//! at its `eval` boundary before anything reaches a cache, and the
//! join-cache insert carries a debug assertion to that effect.

#![deny(clippy::unwrap_used)]

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used map with a fixed capacity.
#[derive(Debug)]
pub struct Lru<K: Eq + Hash + Clone, V> {
    map: HashMap<K, (u64, V)>,
    tick: u64,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru { map: HashMap::new(), tick: 0, cap }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resize; shrinking evicts least-recently-used entries down to
    /// the new capacity. Returns the number of evictions performed.
    pub fn set_capacity(&mut self, cap: usize) -> usize {
        self.cap = cap;
        let mut evicted = 0;
        while self.map.len() > self.cap {
            if self.evict_oldest().is_none() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// Look up a key, marking it most-recently-used on a hit.
    ///
    /// Borrow-generic like [`HashMap::get`] so hot paths (the plan
    /// cache probing by `&str`) never allocate an owned key just to
    /// check for a hit; only a miss's insert pays for the owned key.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.0 = tick;
                Some(&slot.1)
            }
            None => None,
        }
    }

    /// Peek without touching recency (used by stale-read fallbacks,
    /// which must not keep a dead entry warm).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|(_, v)| v)
    }

    /// Insert (or replace) a key, evicting the least-recently-used
    /// entry if the cache is over capacity. Returns the evicted key,
    /// if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        if self.map.len() > self.cap {
            self.evict_oldest()
        } else {
            None
        }
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    fn evict_oldest(&mut self) -> Option<K> {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (tick, _))| *tick)
            .map(|(k, _)| k.clone())?;
        self.map.remove(&victim);
        Some(victim)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // "a" is now warm
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some("b"));
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"b"), None);
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.peek(&"a"), Some(&1));
        // "a" was only peeked, so it is still the LRU victim.
        assert_eq!(lru.insert("c", 3), Some("a"));
    }

    #[test]
    fn replace_does_not_evict() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.insert("a", 1), Some("a"));
        assert!(lru.is_empty());
    }

    #[test]
    fn shrink_evicts_lru_first() {
        let mut lru = Lru::new(4);
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            lru.insert(*k, i);
        }
        lru.get(&"a");
        assert_eq!(lru.set_capacity(2), 2);
        assert_eq!(lru.len(), 2);
        assert!(lru.peek(&"a").is_some(), "recently used survives");
        assert!(lru.peek(&"d").is_some(), "newest survives");
    }
}
