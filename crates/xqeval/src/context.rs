//! The dynamic context: variable scopes, focus, pending updates, trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xdm::types::SequenceType;

use crate::update::Pul;

/// The focus: context item, position, and size (`.`, `fn:position()`,
/// `fn:last()`).
#[derive(Debug, Clone)]
pub struct Focus {
    /// The context item.
    pub item: Item,
    /// 1-based position.
    pub position: usize,
    /// The size of the focus sequence.
    pub size: usize,
}

/// The dynamic evaluation context.
///
/// Variable bindings live in a stack of frames; XQSE block variables
/// are *assignable* and marked as such, while XQuery `for`/`let`
/// bindings are read-only (the paper, §III.B.5: "Block variables
/// differ from let variables in that they can be assigned").
pub struct Env {
    frames: Vec<Frame>,
    /// The current focus, if any.
    pub focus: Option<Focus>,
    /// Open pending-update list: present only inside an XQSE update
    /// statement (or an ALDSP-managed update operation). Updating
    /// expressions fail with `XUST0001` when this is `None`.
    pub pul: Option<Pul>,
    /// The `fn:trace` sink, shared so callers can inspect it.
    pub trace: Rc<RefCell<Vec<String>>>,
    /// Memoized hash-join indexes, keyed by (source-expression
    /// address, key-path fingerprint). Entries are *version-stamped*
    /// (see [`crate::eval::CacheStamp`]): an entry over a
    /// capability-bearing source revalidates against the source's
    /// table version, and an entry over an opaque source against
    /// [`Env::write_epoch`] — so statements that did not write the
    /// underlying source keep their indexes across statement
    /// boundaries.
    pub join_cache: HashMap<(usize, u64), Rc<crate::eval::JoinCacheEntry>>,
    /// Per-evaluation web-service memo: responses keyed by
    /// `service\u{2}operation\u{1}request…` fingerprint. Identical
    /// requests inside one evaluation (a FLWOR or an `iterate` body)
    /// hit this memo instead of the resilience/breaker path. Cleared
    /// whenever a statement may have produced side effects (same
    /// policy as the epoch-stamped join cache).
    pub ws_memo: HashMap<String, Sequence>,
    /// Bumped by the XQSE engine whenever a statement *may* have
    /// produced side effects whose extent it cannot attribute to a
    /// specific source (procedure calls, web-service submissions).
    /// Epoch-stamped join-cache entries from earlier statements then
    /// fail revalidation.
    pub write_epoch: u64,
}

struct Frame {
    vars: HashMap<QName, Binding>,
}

#[derive(Debug, Clone)]
struct Binding {
    value: Option<Sequence>,
    assignable: bool,
    /// Declared type of a block variable; assignments are checked
    /// against it (paper §III.B.6).
    ty: Option<SequenceType>,
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

impl Env {
    /// An empty context.
    pub fn new() -> Env {
        Env {
            frames: vec![Frame { vars: HashMap::new() }],
            focus: None,
            pul: None,
            trace: Rc::new(RefCell::new(Vec::new())),
            join_cache: HashMap::new(),
            ws_memo: HashMap::new(),
            write_epoch: 0,
        }
    }

    /// Drop every memoized join index *and* advance the write epoch —
    /// the heavy hammer for statements whose effects the engine cannot
    /// attribute (node-level updates may have mutated trees the cached
    /// indexes share).
    pub fn invalidate_caches(&mut self) {
        self.join_cache.clear();
        self.ws_memo.clear();
        self.write_epoch += 1;
    }

    /// Record that a statement may have written *some* source without
    /// mutating already-materialized trees (external procedure calls).
    /// Epoch-stamped cache entries stop revalidating; version-stamped
    /// entries over sources the statement did not touch survive — this
    /// is the precise cross-statement retention of ISSUE 2. The WS
    /// memo is cleared too: a procedure may have changed what a
    /// service would answer.
    pub fn note_write(&mut self) {
        self.ws_memo.clear();
        self.write_epoch += 1;
    }

    /// Push a read-only (expression) scope.
    pub fn push_scope(&mut self) {
        self.frames.push(Frame { vars: HashMap::new() });
    }

    /// Push an XQSE block scope (declared variables are assignable).
    pub fn push_block_scope(&mut self) {
        self.frames.push(Frame { vars: HashMap::new() });
    }

    /// Pop the innermost scope.
    pub fn pop_scope(&mut self) {
        debug_assert!(self.frames.len() > 1, "cannot pop the root scope");
        self.frames.pop();
    }

    /// Bind a read-only variable (for/let/function parameters).
    pub fn bind(&mut self, name: QName, value: Sequence) {
        self.frames
            .last_mut()
            .expect("at least one frame")
            .vars
            .insert(name, Binding { value: Some(value), assignable: false, ty: None });
    }

    /// Declare an XQSE block variable, optionally initialized and
    /// optionally typed (implicitly `item()*` when untyped).
    pub fn declare_block_var(
        &mut self,
        name: QName,
        value: Option<Sequence>,
        ty: Option<SequenceType>,
    ) {
        self.frames
            .last_mut()
            .expect("at least one frame")
            .vars
            .insert(name, Binding { value, assignable: true, ty });
    }

    /// Look up a variable; uninitialized block variables raise
    /// `XQSE0002` ("Any reference to such a variable … is an error
    /// until it has been initially assigned to", §III.B.5).
    pub fn lookup(&self, name: &QName) -> XdmResult<Sequence> {
        for frame in self.frames.iter().rev() {
            if let Some(b) = frame.vars.get(name) {
                return match &b.value {
                    Some(v) => Ok(v.clone()),
                    None => Err(XdmError::new(
                        ErrorCode::XQSE0002,
                        format!("block variable ${name} referenced before assignment"),
                    )),
                };
            }
        }
        Err(XdmError::new(
            ErrorCode::XPST0008,
            format!("undefined variable ${name}"),
        ))
    }

    /// Is the variable bound at all (used by `set` validation)?
    pub fn is_declared(&self, name: &QName) -> bool {
        self.frames.iter().rev().any(|f| f.vars.contains_key(name))
    }

    /// Assign to a block variable (`set $x := …`). Only variables
    /// declared by a block variable declaration may be assigned
    /// (`XQSE0001` otherwise).
    pub fn assign(&mut self, name: &QName, value: Sequence) -> XdmResult<()> {
        for frame in self.frames.iter_mut().rev() {
            if let Some(b) = frame.vars.get_mut(name) {
                if !b.assignable {
                    return Err(XdmError::new(
                        ErrorCode::XQSE0001,
                        format!(
                            "${name} is not a block variable and cannot be assigned"
                        ),
                    ));
                }
                if let Some(ty) = &b.ty {
                    ty.check(&value, &format!("set ${name}"))?;
                }
                b.value = Some(value);
                return Ok(());
            }
        }
        Err(XdmError::new(
            ErrorCode::XQSE0001,
            format!("assignment to undeclared variable ${name}"),
        ))
    }

    /// Emit a trace message (fn:trace and the XQSE engine's own
    /// diagnostics).
    pub fn emit_trace(&self, msg: impl Into<String>) {
        self.trace.borrow_mut().push(msg.into());
    }

    /// Snapshot of the trace buffer.
    pub fn trace_messages(&self) -> Vec<String> {
        self.trace.borrow().clone()
    }

    /// Run `f` with a fresh focus, restoring the previous one after.
    pub fn with_focus<R>(
        &mut self,
        focus: Focus,
        f: impl FnOnce(&mut Env) -> XdmResult<R>,
    ) -> XdmResult<R> {
        let saved = self.focus.take();
        self.focus = Some(focus);
        let out = f(self);
        self.focus = saved;
        out
    }

    /// The number of live frames (used by tests to verify balanced
    /// push/pop even across errors).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// An owned snapshot of this context for a detached pull stream
    /// (the lazy FLWOR pipeline evaluates its clauses *after* the
    /// creating `eval` call has returned, so it cannot borrow `self`).
    ///
    /// The snapshot sees exactly the bindings visible here — frames
    /// are flattened innermost-wins into one read-only frame — plus
    /// the current focus and write epoch. The trace sink is shared
    /// (`fn:trace` from streamed tuples still reaches the caller's
    /// buffer). Deliberately NOT carried over: the open PUL (streams
    /// are only created when no update list is open), and the
    /// join/ws memo caches (they key by expression address and are
    /// rebuilt privately by the stream; sharing would need `RefCell`
    /// plumbing for no measured win).
    pub fn fork_for_stream(&self) -> Env {
        let mut vars: HashMap<QName, Binding> = HashMap::new();
        for frame in &self.frames {
            // Later (inner) frames overwrite: shadowing preserved.
            for (name, b) in &frame.vars {
                vars.insert(name.clone(), b.clone());
            }
        }
        Env {
            frames: vec![Frame { vars }],
            focus: self.focus.clone(),
            pul: None,
            trace: self.trace.clone(),
            join_cache: HashMap::new(),
            ws_memo: HashMap::new(),
            write_epoch: self.write_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: &str) -> QName {
        QName::new(n)
    }

    #[test]
    fn bind_and_lookup() {
        let mut env = Env::new();
        env.bind(q("x"), Sequence::one(Item::integer(1)));
        assert_eq!(env.lookup(&q("x")).unwrap().len(), 1);
        assert!(env.lookup(&q("y")).is_err());
    }

    #[test]
    fn shadowing_and_scope_pop() {
        let mut env = Env::new();
        env.bind(q("x"), Sequence::one(Item::integer(1)));
        env.push_scope();
        env.bind(q("x"), Sequence::one(Item::integer(2)));
        assert_eq!(
            env.lookup(&q("x")).unwrap().items()[0],
            Item::integer(2)
        );
        env.pop_scope();
        assert_eq!(
            env.lookup(&q("x")).unwrap().items()[0],
            Item::integer(1)
        );
    }

    #[test]
    fn let_variables_are_not_assignable() {
        let mut env = Env::new();
        env.bind(q("x"), Sequence::one(Item::integer(1)));
        let err = env.assign(&q("x"), Sequence::empty()).unwrap_err();
        assert!(err.is(ErrorCode::XQSE0001));
    }

    #[test]
    fn block_variables_are_assignable() {
        let mut env = Env::new();
        env.push_block_scope();
        env.declare_block_var(q("x"), None, None);
        // Reference before assignment is XQSE0002.
        let err = env.lookup(&q("x")).unwrap_err();
        assert!(err.is(ErrorCode::XQSE0002));
        env.assign(&q("x"), Sequence::one(Item::integer(5))).unwrap();
        assert_eq!(env.lookup(&q("x")).unwrap().items()[0], Item::integer(5));
    }

    #[test]
    fn assignment_to_undeclared_fails() {
        let mut env = Env::new();
        let err = env.assign(&q("nope"), Sequence::empty()).unwrap_err();
        assert!(err.is(ErrorCode::XQSE0001));
    }

    #[test]
    fn assignment_crosses_expression_scopes() {
        // A `set` inside a while body assigns the block variable of
        // the enclosing block.
        let mut env = Env::new();
        env.push_block_scope();
        env.declare_block_var(q("acc"), Some(Sequence::empty()), None);
        env.push_scope(); // e.g. loop-internal expression scope
        env.assign(&q("acc"), Sequence::one(Item::integer(1))).unwrap();
        env.pop_scope();
        assert_eq!(env.lookup(&q("acc")).unwrap().len(), 1);
    }

    #[test]
    fn focus_restoration() {
        let mut env = Env::new();
        assert!(env.focus.is_none());
        env.with_focus(
            Focus { item: Item::integer(1), position: 1, size: 1 },
            |env| {
                assert!(env.focus.is_some());
                Ok(())
            },
        )
        .unwrap();
        assert!(env.focus.is_none());
    }

    #[test]
    fn trace_collects() {
        let env = Env::new();
        env.emit_trace("one");
        env.emit_trace("two");
        assert_eq!(env.trace_messages(), vec!["one", "two"]);
    }
}
