//! The builtin function library (`fn:` and `xs:` namespaces).
//!
//! [`dispatch`] resolves a call by expanded name and arity and either
//! executes it (`Some(result)`) or reports that the name is not a
//! builtin (`None`), in which case the evaluator consults the user /
//! external registries.

use std::cmp::Ordering;

use xdm::atomic::{to_f64, AtomicType, AtomicValue};
use xdm::decimal::Decimal;
use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeKind;
use xdm::qname::{QName, FN_NS, XS_NS};
use xdm::sequence::{Item, Sequence};

use crate::context::Env;
use crate::engine::Engine;
use crate::regex_lite::Regex;

/// Try to execute a builtin. `None` means "not a builtin".
pub fn dispatch(
    engine: &Engine,
    env: &mut Env,
    name: &QName,
    args: Vec<Sequence>,
) -> Option<XdmResult<Sequence>> {
    match name.ns.as_deref() {
        Some(FN_NS) => dispatch_fn(engine, env, &name.local, args),
        Some(XS_NS) => Some(xs_constructor(&name.local, args)),
        _ => None,
    }
}

fn err(code: ErrorCode, msg: impl Into<String>) -> XdmError {
    XdmError::new(code, msg)
}

fn one_string(seq: &Sequence, what: &str) -> XdmResult<String> {
    match seq.atomized().as_slice() {
        [] => Ok(String::new()),
        [a] => Ok(a.string_value()),
        _ => Err(err(ErrorCode::XPTY0004, format!("{what}: expected a single string"))),
    }
}

fn one_atomic(seq: &Sequence, what: &str) -> XdmResult<AtomicValue> {
    let atoms = seq.atomized();
    match atoms.as_slice() {
        [a] => Ok(a.clone()),
        other => Err(err(
            ErrorCode::XPTY0004,
            format!("{what}: expected exactly one atomic value, got {}", other.len()),
        )),
    }
}

fn opt_atomic(seq: &Sequence, what: &str) -> XdmResult<Option<AtomicValue>> {
    let atoms = seq.atomized();
    match atoms.as_slice() {
        [] => Ok(None),
        [a] => Ok(Some(a.clone())),
        other => Err(err(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one atomic value, got {}", other.len()),
        )),
    }
}

fn one_integer(seq: &Sequence, what: &str) -> XdmResult<i64> {
    match one_atomic(seq, what)?.cast_to(AtomicType::Integer)? {
        AtomicValue::Integer(i) => Ok(i),
        _ => unreachable!(),
    }
}

// Shared with the evaluator's streaming `fn:subsequence` interceptor,
// which must replicate the builtin's window arithmetic exactly.
pub(crate) fn one_double(seq: &Sequence, what: &str) -> XdmResult<f64> {
    to_f64(&one_atomic(seq, what)?)
}

fn str_seq(s: String) -> Sequence {
    Sequence::one(Item::string(s))
}

fn bool_seq(b: bool) -> Sequence {
    Sequence::one(Item::boolean(b))
}

fn int_seq(i: i64) -> Sequence {
    Sequence::one(Item::integer(i))
}

fn context_item(env: &Env, what: &str) -> XdmResult<Item> {
    env.focus
        .as_ref()
        .map(|f| f.item.clone())
        .ok_or_else(|| err(ErrorCode::XPDY0002, format!("{what}: no context item")))
}

fn atomic_total_cmp(a: &AtomicValue, b: &AtomicValue) -> XdmResult<Ordering> {
    match a.value_compare(b)? {
        Some(o) => Ok(o),
        None => Ok(Ordering::Equal), // NaN handling in min/max below
    }
}

#[allow(clippy::too_many_lines)]
fn dispatch_fn(
    engine: &Engine,
    env: &mut Env,
    local: &str,
    mut args: Vec<Sequence>,
) -> Option<XdmResult<Sequence>> {
    let arity = args.len();
    let result: XdmResult<Sequence> = match (local, arity) {
        // ---------------------------------------------------- accessors
        ("data", 1) => Ok(args[0]
            .atomized()
            .into_iter()
            .map(Item::Atomic)
            .collect()),
        ("string", 0) => (|| {
            let it = context_item(env, "fn:string")?;
            Ok(str_seq(it.string_value()))
        })(),
        ("string", 1) => args[0].string_value().map(str_seq),
        ("string-length", 0) => (|| {
            let it = context_item(env, "fn:string-length")?;
            Ok(int_seq(it.string_value().chars().count() as i64))
        })(),
        ("string-length", 1) => {
            one_string(&args[0], "fn:string-length")
                .map(|s| int_seq(s.chars().count() as i64))
        }
        ("node-name", 1) => (|| {
            match args[0].zero_or_one()? {
                None => Ok(Sequence::empty()),
                Some(Item::Node(n)) => Ok(match n.name() {
                    Some(q) => Sequence::one(Item::Atomic(AtomicValue::QName(q))),
                    None => Sequence::empty(),
                }),
                Some(_) => Err(err(ErrorCode::XPTY0004, "fn:node-name expects a node")),
            }
        })(),
        ("local-name", 1) | ("name", 1) => (|| {
            match args[0].zero_or_one()? {
                None => Ok(str_seq(String::new())),
                Some(Item::Node(n)) => Ok(str_seq(match n.name() {
                    Some(q) => {
                        if local == "name" {
                            q.lexical()
                        } else {
                            q.local.to_string()
                        }
                    }
                    None => String::new(),
                })),
                Some(_) => Err(err(ErrorCode::XPTY0004, "expected a node")),
            }
        })(),
        ("namespace-uri", 1) => (|| {
            match args[0].zero_or_one()? {
                None => Ok(str_seq(String::new())),
                Some(Item::Node(n)) => Ok(str_seq(
                    n.name().and_then(|q| q.ns).map(String::from).unwrap_or_default(),
                )),
                Some(_) => Err(err(ErrorCode::XPTY0004, "expected a node")),
            }
        })(),
        ("root", 1) => (|| {
            match args[0].zero_or_one()? {
                None => Ok(Sequence::empty()),
                Some(Item::Node(n)) => Ok(Sequence::one(Item::Node(n.root()))),
                Some(_) => Err(err(ErrorCode::XPTY0004, "fn:root expects a node")),
            }
        })(),
        // ---------------------------------------------------- sequences
        ("empty", 1) => Ok(bool_seq(args[0].is_empty())),
        ("exists", 1) => Ok(bool_seq(!args[0].is_empty())),
        ("count", 1) => Ok(int_seq(args[0].len() as i64)),
        ("position", 0) => (|| {
            let f = env.focus.as_ref().ok_or_else(|| {
                err(ErrorCode::XPDY0002, "fn:position: no context")
            })?;
            Ok(int_seq(f.position as i64))
        })(),
        ("last", 0) => (|| {
            let f = env
                .focus
                .as_ref()
                .ok_or_else(|| err(ErrorCode::XPDY0002, "fn:last: no context"))?;
            Ok(int_seq(f.size as i64))
        })(),
        ("distinct-values", 1) => {
            let mut seen: Vec<AtomicValue> = Vec::new();
            for a in args[0].atomized() {
                let dup = seen.iter().any(|s| {
                    matches!(s.value_compare(&a), Ok(Some(Ordering::Equal)))
                });
                if !dup {
                    seen.push(a);
                }
            }
            Ok(seen.into_iter().map(Item::Atomic).collect())
        },
        ("insert-before", 3) => (|| {
            let pos = one_integer(&args[1], "fn:insert-before")?.max(1) as usize;
            let mut items: Vec<Item> = args[0].items().to_vec();
            let at = (pos - 1).min(items.len());
            let ins: Vec<Item> = args[2].items().to_vec();
            items.splice(at..at, ins);
            Ok(Sequence::from_items(items))
        })(),
        ("remove", 2) => (|| {
            let pos = one_integer(&args[1], "fn:remove")?;
            let items: Vec<Item> = args[0]
                .items()
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as i64 + 1) != pos)
                .map(|(_, it)| it.clone())
                .collect();
            Ok(Sequence::from_items(items))
        })(),
        ("reverse", 1) => {
            let mut items: Vec<Item> = args[0].items().to_vec();
            items.reverse();
            Ok(Sequence::from_items(items))
        }
        ("subsequence", 2) | ("subsequence", 3) => (|| {
            let start = one_double(&args[1], "fn:subsequence")?.round();
            let len = if arity == 3 {
                one_double(&args[2], "fn:subsequence")?.round()
            } else {
                f64::INFINITY
            };
            let items: Vec<Item> = args[0]
                .items()
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = *i as f64 + 1.0;
                    p >= start && p < start + len
                })
                .map(|(_, it)| it.clone())
                .collect();
            Ok(Sequence::from_items(items))
        })(),
        ("index-of", 2) => (|| {
            let needle = one_atomic(&args[1], "fn:index-of")?;
            let mut out = Vec::new();
            for (i, a) in args[0].atomized().into_iter().enumerate() {
                if matches!(a.value_compare(&needle), Ok(Some(Ordering::Equal))) {
                    out.push(Item::integer(i as i64 + 1));
                }
            }
            Ok(Sequence::from_items(out))
        })(),
        ("zero-or-one", 1) => match args[0].len() {
            0 | 1 => Ok(args.remove(0)),
            _ => Err(err(ErrorCode::FORG0003, "fn:zero-or-one: more than one item")),
        },
        ("one-or-more", 1) => match args[0].len() {
            0 => Err(err(ErrorCode::FORG0004, "fn:one-or-more: empty sequence")),
            _ => Ok(args.remove(0)),
        },
        ("exactly-one", 1) => match args[0].len() {
            1 => Ok(args.remove(0)),
            n => Err(err(
                ErrorCode::FORG0005,
                format!("fn:exactly-one: got {n} items"),
            )),
        },
        ("unordered", 1) => Ok(args.remove(0)),
        ("deep-equal", 2) => (|| {
            let (a, b) = (&args[0], &args[1]);
            if a.len() != b.len() {
                return Ok(bool_seq(false));
            }
            for (x, y) in a.iter().zip(b.iter()) {
                let eq = match (x, y) {
                    (Item::Node(nx), Item::Node(ny)) => nx.deep_equal(ny),
                    (Item::Atomic(ax), Item::Atomic(ay)) => {
                        matches!(ax.value_compare(ay), Ok(Some(Ordering::Equal)))
                    }
                    _ => false,
                };
                if !eq {
                    return Ok(bool_seq(false));
                }
            }
            Ok(bool_seq(true))
        })(),
        // --------------------------------------------------- aggregates
        ("sum", 1) | ("sum", 2) => (|| {
            let atoms = args[0].atomized();
            if atoms.is_empty() {
                return if arity == 2 {
                    Ok(args[1]
                        .atomized()
                        .into_iter()
                        .map(Item::Atomic)
                        .collect())
                } else {
                    Ok(int_seq(0))
                };
            }
            numeric_fold(&atoms, "fn:sum", |acc, v| acc.checked_add(v))
        })(),
        ("avg", 1) => (|| {
            let atoms = args[0].atomized();
            if atoms.is_empty() {
                return Ok(Sequence::empty());
            }
            let n = atoms.len() as i64;
            let total = numeric_fold(&atoms, "fn:avg", |acc, v| acc.checked_add(v))?;
            let total = one_atomic(&total, "fn:avg")?;
            match total {
                AtomicValue::Double(d) => {
                    Ok(Sequence::one(Item::double(d / n as f64)))
                }
                AtomicValue::Integer(i) => Ok(Sequence::one(Item::Atomic(
                    AtomicValue::Decimal(
                        Decimal::from_i64(i).checked_div(Decimal::from_i64(n))?,
                    ),
                ))),
                AtomicValue::Decimal(d) => Ok(Sequence::one(Item::Atomic(
                    AtomicValue::Decimal(d.checked_div(Decimal::from_i64(n))?),
                ))),
                other => Err(err(
                    ErrorCode::FORG0006,
                    format!("fn:avg over non-numeric {}", other.type_of()),
                )),
            }
        })(),
        ("min", 1) | ("max", 1) => (|| {
            let atoms = coerce_comparable(args[0].atomized())?;
            if atoms.is_empty() {
                return Ok(Sequence::empty());
            }
            let want = if local == "min" { Ordering::Less } else { Ordering::Greater };
            let mut best = atoms[0].clone();
            for a in &atoms[1..] {
                // NaN poisons min/max.
                if matches!(a, AtomicValue::Double(d) if d.is_nan()) {
                    return Ok(Sequence::one(Item::double(f64::NAN)));
                }
                if atomic_total_cmp(a, &best)? == want {
                    best = a.clone();
                }
            }
            Ok(Sequence::one(Item::Atomic(best)))
        })(),
        // ------------------------------------------------------ numeric
        ("abs", 1) => (|| {
            match opt_atomic(&args[0], "fn:abs")? {
                None => Ok(Sequence::empty()),
                Some(AtomicValue::Integer(i)) => Ok(int_seq(i.abs())),
                Some(AtomicValue::Decimal(d)) => {
                    Ok(Sequence::one(Item::Atomic(AtomicValue::Decimal(d.abs()))))
                }
                Some(v) => Ok(Sequence::one(Item::double(to_f64(&v)?.abs()))),
            }
        })(),
        ("floor", 1) | ("ceiling", 1) | ("round", 1) => (|| {
            match opt_atomic(&args[0], local)? {
                None => Ok(Sequence::empty()),
                Some(AtomicValue::Integer(i)) => Ok(int_seq(i)),
                Some(AtomicValue::Decimal(d)) => {
                    let r = match local {
                        "floor" => d.floor(),
                        "ceiling" => d.ceiling(),
                        _ => d.round(),
                    };
                    Ok(Sequence::one(Item::Atomic(AtomicValue::Decimal(r))))
                }
                Some(v) => {
                    let d = to_f64(&v)?;
                    let r = match local {
                        "floor" => d.floor(),
                        "ceiling" => d.ceil(),
                        _ => {
                            // fn:round: half rounds toward +INF.
                            (d + 0.5).floor()
                        }
                    };
                    Ok(Sequence::one(Item::double(r)))
                }
            }
        })(),
        ("number", 0) | ("number", 1) => (|| {
            let v = if arity == 0 {
                Some(context_item(env, "fn:number")?.atomize())
            } else {
                opt_atomic(&args[0], "fn:number")?
            };
            let d = match v {
                None => f64::NAN,
                Some(a) => match a.cast_to(AtomicType::Double) {
                    Ok(AtomicValue::Double(d)) => d,
                    _ => f64::NAN,
                },
            };
            Ok(Sequence::one(Item::double(d)))
        })(),
        // ------------------------------------------------------ strings
        ("concat", n) if n >= 2 => (|| {
            let mut out = String::new();
            for a in &args {
                out.push_str(&one_string(a, "fn:concat")?);
            }
            Ok(str_seq(out))
        })(),
        ("string-join", 2) => (|| {
            let sep = one_string(&args[1], "fn:string-join")?;
            let parts: Vec<String> =
                args[0].atomized().iter().map(|a| a.string_value()).collect();
            Ok(str_seq(parts.join(&sep)))
        })(),
        ("substring", 2) | ("substring", 3) => (|| {
            let s = one_string(&args[0], "fn:substring")?;
            let chars: Vec<char> = s.chars().collect();
            let start = one_double(&args[1], "fn:substring")?.round();
            let len = if arity == 3 {
                one_double(&args[2], "fn:substring")?.round()
            } else {
                f64::INFINITY
            };
            let out: String = chars
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = *i as f64 + 1.0;
                    p >= start && p < start + len
                })
                .map(|(_, c)| *c)
                .collect();
            Ok(str_seq(out))
        })(),
        ("upper-case", 1) => one_string(&args[0], local).map(|s| str_seq(s.to_uppercase())),
        ("lower-case", 1) => one_string(&args[0], local).map(|s| str_seq(s.to_lowercase())),
        ("contains", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let t = one_string(&args[1], local)?;
            Ok(bool_seq(s.contains(&t)))
        })(),
        ("starts-with", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let t = one_string(&args[1], local)?;
            Ok(bool_seq(s.starts_with(&t)))
        })(),
        ("ends-with", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let t = one_string(&args[1], local)?;
            Ok(bool_seq(s.ends_with(&t)))
        })(),
        ("substring-before", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let t = one_string(&args[1], local)?;
            Ok(str_seq(s.find(&t).map(|i| s[..i].to_string()).unwrap_or_default()))
        })(),
        ("substring-after", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let t = one_string(&args[1], local)?;
            Ok(str_seq(
                s.find(&t)
                    .map(|i| s[i + t.len()..].to_string())
                    .unwrap_or_default(),
            ))
        })(),
        ("normalize-space", 0) | ("normalize-space", 1) => (|| {
            let s = if arity == 0 {
                context_item(env, local)?.string_value()
            } else {
                one_string(&args[0], local)?
            };
            Ok(str_seq(s.split_whitespace().collect::<Vec<_>>().join(" ")))
        })(),
        ("translate", 3) => (|| {
            let s = one_string(&args[0], local)?;
            let from: Vec<char> = one_string(&args[1], local)?.chars().collect();
            let to: Vec<char> = one_string(&args[2], local)?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|f| *f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(str_seq(out))
        })(),
        ("tokenize", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let p = one_string(&args[1], local)?;
            let rx = Regex::compile(&p)?;
            if s.is_empty() {
                return Ok(Sequence::empty());
            }
            Ok(rx.tokenize(&s)?.into_iter().map(Item::string).collect())
        })(),
        ("matches", 2) => (|| {
            let s = one_string(&args[0], local)?;
            let p = one_string(&args[1], local)?;
            Ok(bool_seq(Regex::compile(&p)?.is_match(&s)))
        })(),
        ("replace", 3) => (|| {
            let s = one_string(&args[0], local)?;
            let p = one_string(&args[1], local)?;
            let r = one_string(&args[2], local)?;
            Ok(str_seq(Regex::compile(&p)?.replace(&s, &r)?))
        })(),
        ("string-to-codepoints", 1) => (|| {
            let s = one_string(&args[0], local)?;
            Ok(s.chars().map(|c| Item::integer(c as i64)).collect())
        })(),
        ("codepoints-to-string", 1) => (|| {
            let mut out = String::new();
            for a in args[0].atomized() {
                let cp = match a.cast_to(AtomicType::Integer)? {
                    AtomicValue::Integer(i) => i,
                    _ => unreachable!(),
                };
                let c = u32::try_from(cp)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| {
                        err(ErrorCode::FORG0001, format!("bad codepoint {cp}"))
                    })?;
                out.push(c);
            }
            Ok(str_seq(out))
        })(),
        // ------------------------------------------------------ boolean
        ("not", 1) => args[0].effective_boolean().map(|b| bool_seq(!b)),
        ("boolean", 1) => args[0].effective_boolean().map(bool_seq),
        ("true", 0) => Ok(bool_seq(true)),
        ("false", 0) => Ok(bool_seq(false)),
        // -------------------------------------------------- error/trace
        ("error", 0) => Err(XdmError::new(ErrorCode::FOER0000, "fn:error()")),
        ("error", 1) | ("error", 2) | ("error", 3) => (|| {
            let code = match opt_atomic(&args[0], "fn:error")? {
                Some(AtomicValue::QName(q)) => q,
                None => ErrorCode::FOER0000.qname(),
                Some(other) => {
                    return Err(err(
                        ErrorCode::XPTY0004,
                        format!("fn:error: code must be xs:QName, got {}", other.type_of()),
                    ))
                }
            };
            let msg = if arity >= 2 {
                one_string(&args[1], "fn:error")?
            } else {
                String::new()
            };
            let diagnostics = if arity == 3 {
                args[2].iter().map(|i| i.string_value()).collect()
            } else {
                Vec::new()
            };
            Err(XdmError::with_code(code, msg).diagnostics(diagnostics))
        })(),
        ("trace", 1) | ("trace", 2) => (|| {
            let rendered: Vec<String> =
                args[0].iter().map(|i| i.string_value()).collect();
            let label = if arity == 2 {
                one_string(&args[1], "fn:trace")?
            } else {
                String::new()
            };
            if label.is_empty() {
                env.emit_trace(rendered.join(" "));
            } else {
                env.emit_trace(format!("{label}: {}", rendered.join(" ")));
            }
            Ok(args[0].clone())
        })(),
        // ------------------------------------------------------- QNames
        ("QName", 2) => (|| {
            let ns = one_string(&args[0], "fn:QName")?;
            let lex = one_string(&args[1], "fn:QName")?;
            let q = QName::parse_lexical(&lex)
                .ok_or_else(|| err(ErrorCode::FORG0001, format!("bad QName {lex:?}")))?;
            Ok(Sequence::one(Item::Atomic(AtomicValue::QName(QName {
                prefix: q.prefix,
                ns: if ns.is_empty() { None } else { Some(ns.into()) },
                local: q.local,
            }))))
        })(),
        ("local-name-from-QName", 1) => (|| {
            match opt_atomic(&args[0], local)? {
                None => Ok(Sequence::empty()),
                Some(AtomicValue::QName(q)) => Ok(str_seq(q.local.to_string())),
                Some(_) => Err(err(ErrorCode::XPTY0004, "expected xs:QName")),
            }
        })(),
        ("namespace-uri-from-QName", 1) => (|| {
            match opt_atomic(&args[0], local)? {
                None => Ok(Sequence::empty()),
                Some(AtomicValue::QName(q)) => {
                    Ok(str_seq(q.ns.map(String::from).unwrap_or_default()))
                }
                Some(_) => Err(err(ErrorCode::XPTY0004, "expected xs:QName")),
            }
        })(),
        // ---------------------------------------------------- documents
        ("doc", 1) => (|| {
            let uri = one_string(&args[0], "fn:doc")?;
            match engine.document(&uri) {
                Some(d) => Ok(Sequence::one(Item::Node(d))),
                None => Err(err(
                    ErrorCode::FORG0001,
                    format!("fn:doc: no document registered at {uri:?}"),
                )),
            }
        })(),
        ("doc-available", 1) => (|| {
            let uri = one_string(&args[0], "fn:doc-available")?;
            Ok(bool_seq(engine.document(&uri).is_some()))
        })(),
        // -------------------------------------------------------- dates
        ("current-dateTime", 0) => Ok(Sequence::one(Item::Atomic(
            AtomicValue::DateTime(engine.now()),
        ))),
        ("current-date", 0) => Ok(Sequence::one(Item::Atomic(AtomicValue::Date(
            engine.now().date,
        )))),
        ("year-from-date", 1) | ("month-from-date", 1) | ("day-from-date", 1) => {
            (|| {
                let d = match opt_atomic(&args[0], local)? {
                    None => return Ok(Sequence::empty()),
                    Some(AtomicValue::Date(d)) => d,
                    Some(other) => match other.cast_to(AtomicType::Date) {
                        Ok(AtomicValue::Date(d)) => d,
                        _ => {
                            return Err(err(
                                ErrorCode::XPTY0004,
                                format!("{local} expects xs:date"),
                            ))
                        }
                    },
                };
                Ok(int_seq(match local {
                    "year-from-date" => d.year as i64,
                    "month-from-date" => d.month as i64,
                    _ => d.day as i64,
                }))
            })()
        }
        ("year-from-dateTime", 1)
        | ("month-from-dateTime", 1)
        | ("day-from-dateTime", 1)
        | ("hours-from-dateTime", 1)
        | ("minutes-from-dateTime", 1)
        | ("seconds-from-dateTime", 1) => (|| {
            let dt = match opt_atomic(&args[0], local)? {
                None => return Ok(Sequence::empty()),
                Some(AtomicValue::DateTime(dt)) => dt,
                Some(other) => match other.cast_to(AtomicType::DateTime) {
                    Ok(AtomicValue::DateTime(dt)) => dt,
                    _ => {
                        return Err(err(
                            ErrorCode::XPTY0004,
                            format!("{local} expects xs:dateTime"),
                        ))
                    }
                },
            };
            Ok(int_seq(match local {
                "year-from-dateTime" => dt.date.year as i64,
                "month-from-dateTime" => dt.date.month as i64,
                "day-from-dateTime" => dt.date.day as i64,
                "hours-from-dateTime" => dt.hour as i64,
                "minutes-from-dateTime" => dt.minute as i64,
                _ => dt.second as i64,
            }))
        })(),
        ("compare", 2) => (|| {
            let (a, b) = (
                opt_atomic(&args[0], "fn:compare")?,
                opt_atomic(&args[1], "fn:compare")?,
            );
            match (a, b) {
                (Some(x), Some(y)) => Ok(int_seq(
                    match x.string_value().cmp(&y.string_value()) {
                        Ordering::Less => -1,
                        Ordering::Equal => 0,
                        Ordering::Greater => 1,
                    },
                )),
                _ => Ok(Sequence::empty()),
            }
        })(),
        _ => return None,
    };
    Some(result)
}

/// Coerce untyped atomics to double for aggregation order (per F&O).
fn coerce_comparable(atoms: Vec<AtomicValue>) -> XdmResult<Vec<AtomicValue>> {
    atoms
        .into_iter()
        .map(|a| match a {
            AtomicValue::Untyped(_) => a.cast_to(AtomicType::Double),
            other => Ok(other),
        })
        .collect()
}

/// Numeric fold with decimal exactness and double contagion.
fn numeric_fold(
    atoms: &[AtomicValue],
    what: &str,
    f: impl Fn(Decimal, Decimal) -> XdmResult<Decimal>,
) -> XdmResult<Sequence> {
    let any_double = atoms.iter().any(|a| {
        matches!(a, AtomicValue::Double(_)) || matches!(a, AtomicValue::Untyped(_))
    });
    if any_double {
        let mut acc = 0.0f64;
        for a in atoms {
            acc += to_f64(a)?;
        }
        return Ok(Sequence::one(Item::double(acc)));
    }
    let all_integer = atoms.iter().all(|a| matches!(a, AtomicValue::Integer(_)));
    let mut acc = Decimal::ZERO;
    for a in atoms {
        let d = match a {
            AtomicValue::Integer(i) => Decimal::from_i64(*i),
            AtomicValue::Decimal(d) => *d,
            other => {
                return Err(err(
                    ErrorCode::FORG0006,
                    format!("{what} over non-numeric {}", other.type_of()),
                ))
            }
        };
        acc = f(acc, d)?;
    }
    if all_integer {
        Ok(int_seq(acc.trunc_i64()?))
    } else {
        Ok(Sequence::one(Item::Atomic(AtomicValue::Decimal(acc))))
    }
}

/// `xs:TYPE(value)` constructor functions: cast with empty-sequence
/// propagation.
fn xs_constructor(local: &str, args: Vec<Sequence>) -> XdmResult<Sequence> {
    if args.len() != 1 {
        return Err(err(
            ErrorCode::XPST0017,
            format!("xs:{local} takes exactly one argument"),
        ));
    }
    let target = AtomicType::from_local(local).ok_or_else(|| {
        err(ErrorCode::XPST0017, format!("unknown constructor xs:{local}"))
    })?;
    match opt_atomic(&args[0], &format!("xs:{local}"))? {
        None => Ok(Sequence::empty()),
        Some(a) => Ok(Sequence::one(Item::Atomic(a.cast_to(target)?))),
    }
}

/// Check whether a node matches a kind test from a sequence-type-ish
/// position. Shared by evaluator path steps and `instance of`.
pub fn node_kind_name(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Document => "document-node()",
        NodeKind::Element => "element()",
        NodeKind::Attribute => "attribute()",
        NodeKind::Text => "text()",
        NodeKind::Comment => "comment()",
        NodeKind::Pi => "processing-instruction()",
    }
}
