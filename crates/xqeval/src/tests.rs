//! Evaluator test suite: expressions end to end through parser +
//! engine, including the paper-adjacent behaviours (joins, updates,
//! readonly-procedure enforcement).

use std::rc::Rc;

use xdm::atomic::AtomicValue;
use xdm::error::ErrorCode;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use xmlparse::{parse, serialize, serialize_sequence};

use crate::context::Env;
use crate::engine::Engine;
use crate::update::Pul;

fn ev(src: &str) -> Sequence {
    Engine::new().eval_expr_str(src, &[]).unwrap()
}

fn ev_err(src: &str) -> xdm::error::XdmError {
    Engine::new().eval_expr_str(src, &[]).unwrap_err()
}

fn as_string(seq: &Sequence) -> String {
    serialize_sequence(seq)
}

fn ints(seq: &Sequence) -> Vec<i64> {
    seq.atomized()
        .iter()
        .map(|a| match a {
            AtomicValue::Integer(i) => *i,
            other => panic!("not an integer: {other:?}"),
        })
        .collect()
}

// -------------------------------------------------------------- basics

#[test]
fn arithmetic() {
    assert_eq!(ints(&ev("1 + 2 * 3")), vec![7]);
    assert_eq!(ints(&ev("(1 + 2) * 3")), vec![9]);
    assert_eq!(ints(&ev("7 idiv 2")), vec![3]);
    assert_eq!(ints(&ev("7 mod 2")), vec![1]);
    assert_eq!(as_string(&ev("7 div 2")), "3.5");
    assert_eq!(as_string(&ev("1 div 4")), "0.25");
    assert_eq!(ints(&ev("-(3)")), vec![-3]);
    assert_eq!(as_string(&ev("0.1 + 0.2")), "0.3"); // exact decimals
    assert_eq!(as_string(&ev("1e0 div 0e0")), "INF");
}

#[test]
fn arithmetic_with_empty_is_empty() {
    assert!(ev("() + 1").is_empty());
    assert!(ev("1 * ()").is_empty());
    assert!(ev("-()").is_empty());
}

#[test]
fn arithmetic_errors() {
    assert!(ev_err("1 div 0").is(ErrorCode::FOAR0001));
    assert!(ev_err("1 idiv 0").is(ErrorCode::FOAR0001));
    assert!(ev_err("'a' + 1").is(ErrorCode::XPTY0004));
    assert!(ev_err("9223372036854775807 + 1").is(ErrorCode::FOAR0002));
}

#[test]
fn untyped_arithmetic_becomes_double() {
    // Node content is untyped; arithmetic coerces via double.
    let out = ev("<n>4</n> + 1");
    assert_eq!(as_string(&out), "5");
    assert!(matches!(out.atomized()[0], AtomicValue::Double(_)));
}

#[test]
fn comparisons_general_existential() {
    assert_eq!(as_string(&ev("(1, 2, 3) = 2")), "true");
    assert_eq!(as_string(&ev("(1, 2, 3) = 9")), "false");
    assert_eq!(as_string(&ev("(1, 2) != (1, 2)")), "true"); // existential!
    assert_eq!(as_string(&ev("() = 1")), "false");
    assert_eq!(as_string(&ev("(1, 5) > (4, 4)")), "true");
}

#[test]
fn comparisons_value() {
    assert_eq!(as_string(&ev("1 eq 1")), "true");
    assert_eq!(as_string(&ev("1 lt 2")), "true");
    assert_eq!(as_string(&ev("'a' lt 'b'")), "true");
    assert!(ev("() eq 1").is_empty());
    assert!(ev_err("(1,2) eq 1").is(ErrorCode::XPTY0004));
}

#[test]
fn logic_and_ebv() {
    assert_eq!(as_string(&ev("1 and 'x'")), "true");
    assert_eq!(as_string(&ev("0 or ()")), "false");
    assert_eq!(as_string(&ev("fn:not(0)")), "true");
    // Short-circuit: the error operand is never evaluated.
    assert_eq!(as_string(&ev("fn:false() and (1 div 0)")), "false");
    assert_eq!(as_string(&ev("fn:true() or (1 div 0)")), "true");
}

#[test]
fn ranges_and_sequences() {
    assert_eq!(ints(&ev("1 to 5")), vec![1, 2, 3, 4, 5]);
    assert!(ev("5 to 1").is_empty());
    assert_eq!(ints(&ev("(1, (2, 3), ())")), vec![1, 2, 3]);
}

#[test]
fn if_expression() {
    assert_eq!(ints(&ev("if (1 lt 2) then 10 else 20")), vec![10]);
    assert_eq!(ints(&ev("if (()) then 10 else 20")), vec![20]);
}

// --------------------------------------------------------------- FLWOR

#[test]
fn flwor_for_let_where_return() {
    assert_eq!(
        ints(&ev("for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x * 10")),
        vec![20, 40]
    );
    assert_eq!(
        ints(&ev("for $x in (1, 2) let $y := $x + 10 return $y")),
        vec![11, 12]
    );
}

#[test]
fn flwor_positional_variable() {
    assert_eq!(
        as_string(&ev("for $x at $i in ('a', 'b') return fn:concat($i, $x)")),
        "1a 2b"
    );
}

#[test]
fn flwor_nested_for_cross_product() {
    assert_eq!(
        ints(&ev("for $x in (1, 2), $y in (10, 20) return $x + $y")),
        vec![11, 21, 12, 22]
    );
}

#[test]
fn flwor_order_by() {
    assert_eq!(ints(&ev("for $x in (3, 1, 2) order by $x return $x")), vec![1, 2, 3]);
    assert_eq!(
        ints(&ev("for $x in (3, 1, 2) order by $x descending return $x")),
        vec![3, 2, 1]
    );
    // empty least vs greatest (the key is empty for $x = 0).
    let key = "(if ($x = 0) then () else $x)";
    assert_eq!(
        ints(&ev(&format!(
            "for $x in (2, 0, 1) order by {key} return $x"
        ))),
        vec![0, 1, 2]
    );
    assert_eq!(
        ints(&ev(&format!(
            "for $x in (2, 0, 1) order by {key} empty greatest return $x"
        ))),
        vec![1, 2, 0]
    );
}

#[test]
fn flwor_order_by_two_keys() {
    assert_eq!(
        as_string(&ev(
            "for $x in ('b1', 'a2', 'a1') \
             order by fn:substring($x, 1, 1), fn:substring($x, 2, 1) descending \
             return $x"
        )),
        "a2 a1 b1"
    );
}

#[test]
fn flwor_let_type_check() {
    assert!(ev_err("for $x in 1 let $y as xs:string := 5 return $y")
        .is(ErrorCode::XPTY0004));
}

#[test]
fn quantified_expressions() {
    assert_eq!(as_string(&ev("some $x in (1, 2, 3) satisfies $x gt 2")), "true");
    assert_eq!(as_string(&ev("every $x in (1, 2, 3) satisfies $x gt 2")), "false");
    assert_eq!(as_string(&ev("every $x in () satisfies fn:false()")), "true");
    assert_eq!(as_string(&ev("some $x in () satisfies fn:true()")), "false");
    assert_eq!(
        as_string(&ev("some $x in (1, 2), $y in (2, 3) satisfies $x eq $y")),
        "true"
    );
}

#[test]
fn typeswitch_dispatch() {
    assert_eq!(
        as_string(&ev(
            "typeswitch (5) case xs:string return 'str' \
             case xs:integer return 'int' default return 'other'"
        )),
        "int"
    );
    assert_eq!(
        as_string(&ev(
            "typeswitch (<a/>) case element() return 'elem' default return 'other'"
        )),
        "elem"
    );
    assert_eq!(
        as_string(&ev(
            "typeswitch ('x') case $i as xs:integer return $i \
             default $d return fn:concat($d, '!')"
        )),
        "x!"
    );
}

// ---------------------------------------------------------------- paths

#[test]
fn paths_over_constructed_trees() {
    let src = "<o><i><n>1</n></i><i><n>2</n></i></o>/i/n";
    assert_eq!(as_string(&ev(src)), "<n>1</n><n>2</n>");
}

#[test]
fn attribute_axis() {
    assert_eq!(as_string(&ev("fn:data(<e a=\"7\"/>/@a)")), "7");
    assert!(ev("<e/>/@nope").is_empty());
}

#[test]
fn descendant_axis() {
    assert_eq!(as_string(&ev("fn:count(<a><b><c/></b><c/></a>//c)")), "2");
}

#[test]
fn predicates_positional_and_boolean() {
    assert_eq!(ints(&ev("(10, 20, 30)[2]")), vec![20]);
    assert_eq!(ints(&ev("(10, 20, 30)[. gt 15]")), vec![20, 30]);
    assert_eq!(ints(&ev("(10, 20, 30)[fn:position() lt 3]")), vec![10, 20]);
    assert_eq!(ints(&ev("(10, 20, 30)[fn:last()]")), vec![30]);
    // The paper's tokenize()[1] pattern.
    assert_eq!(as_string(&ev("fn:tokenize('Michael Carey', ' ')[2]")), "Carey");
}

#[test]
fn path_predicates_with_position() {
    assert_eq!(as_string(&ev("<r><x>a</x><x>b</x><x>c</x></r>/x[2]")), "<x>b</x>");
}

#[test]
fn parent_and_sibling_axes() {
    let q = "for $c in <r><a/><b/><c/></r>/b \
             return fn:local-name($c/following-sibling::*)";
    assert_eq!(as_string(&ev(q)), "c");
    let q = "for $c in <r><a/><b/></r>/b return fn:local-name($c/..)";
    assert_eq!(as_string(&ev(q)), "r");
}

#[test]
fn path_document_order_and_dedup() {
    let q = "for $r in <r><a/><b/></r> return fn:count(($r/a, $r/a) | $r/b)";
    assert_eq!(as_string(&ev(q)), "2");
}

#[test]
fn wildcard_and_kind_steps() {
    assert_eq!(as_string(&ev("fn:count(<r><a/><b/></r>/*)")), "2");
    assert_eq!(as_string(&ev("fn:string(<r>hi<a/></r>/text())")), "hi");
}

#[test]
fn set_operators_on_nodes() {
    let q = "for $r in <r><a/><b/><c/></r> \
             let $all := $r/*, $bs := $r/b \
             return fn:count($all except $bs)";
    assert_eq!(as_string(&ev(q)), "2");
    let q = "for $r in <r><a/><b/></r> return fn:count($r/* intersect $r/b)";
    assert_eq!(as_string(&ev(q)), "1");
}

#[test]
fn node_identity_comparisons() {
    assert_eq!(as_string(&ev("for $r in <r><a/></r> return $r/a is $r/a")), "true");
    assert_eq!(as_string(&ev("<a/> is <a/>")), "false");
    assert_eq!(
        as_string(&ev("for $r in <r><a/><b/></r> return $r/a << $r/b")),
        "true"
    );
}

// --------------------------------------------------------- constructors

#[test]
fn direct_constructor_shapes() {
    assert_eq!(as_string(&ev("<a x=\"1\">hi</a>")), "<a x=\"1\">hi</a>");
    assert_eq!(as_string(&ev("<a>{1 + 1}</a>")), "<a>2</a>");
    assert_eq!(as_string(&ev("<a>{1, 2, 3}</a>")), "<a>1 2 3</a>");
    assert_eq!(as_string(&ev("<a b=\"{2 + 3}\"/>")), "<a b=\"5\"/>");
    assert_eq!(as_string(&ev("<a>x{0}y</a>")), "<a>x0y</a>");
}

#[test]
fn constructor_copies_content_nodes() {
    // Content nodes are copied: the constructed child is a different
    // node identity from the original.
    let q = "for $n in <n>v</n> return (<w>{$n}</w>/n is $n)";
    assert_eq!(as_string(&ev(q)), "false");
}

#[test]
fn computed_constructors_build_nodes() {
    assert_eq!(as_string(&ev("element foo { 1 + 1 }")), "<foo>2</foo>");
    assert_eq!(as_string(&ev("element { fn:concat('a', 'b') } { }")), "<ab/>");
    assert_eq!(
        as_string(&ev("element e { attribute id { 7 }, 'body' }")),
        "<e id=\"7\">body</e>"
    );
    assert_eq!(as_string(&ev("document { <r/> }")), "<r/>");
}

#[test]
fn attribute_after_content_is_error() {
    assert!(ev_err("element e { 'body', attribute id { 7 } }").is(ErrorCode::XPTY0004));
}

#[test]
fn constructed_namespaces_serialize() {
    let q = "<t:a xmlns:t=\"urn:t\"><t:b/></t:a>";
    assert_eq!(as_string(&ev(q)), "<t:a xmlns:t=\"urn:t\"><t:b/></t:a>");
}

// ------------------------------------------------------------ functions

#[test]
fn builtin_function_coverage() {
    // strings
    assert_eq!(as_string(&ev("fn:concat('a', 1, 'b')")), "a1b");
    assert_eq!(as_string(&ev("fn:string-join(('a','b','c'), '-')")), "a-b-c");
    assert_eq!(as_string(&ev("fn:substring('hello', 2, 3)")), "ell");
    assert_eq!(as_string(&ev("fn:upper-case('aBc')")), "ABC");
    assert_eq!(as_string(&ev("fn:contains('hello', 'ell')")), "true");
    assert_eq!(as_string(&ev("fn:starts-with('hello', 'he')")), "true");
    assert_eq!(as_string(&ev("fn:substring-before('a=b', '=')")), "a");
    assert_eq!(as_string(&ev("fn:substring-after('a=b', '=')")), "b");
    assert_eq!(as_string(&ev("fn:normalize-space('  a   b ')")), "a b");
    assert_eq!(as_string(&ev("fn:translate('abc', 'abc', 'xyz')")), "xyz");
    assert_eq!(as_string(&ev("fn:string-length('héllo')")), "5");
    // sequences
    assert_eq!(as_string(&ev("fn:count((1,2,3))")), "3");
    assert_eq!(as_string(&ev("fn:empty(())")), "true");
    assert_eq!(as_string(&ev("fn:exists(())")), "false");
    assert_eq!(ints(&ev("fn:reverse((1,2,3))")), vec![3, 2, 1]);
    assert_eq!(ints(&ev("fn:distinct-values((1, 2, 1, 3))")), vec![1, 2, 3]);
    assert_eq!(ints(&ev("fn:insert-before((1,3), 2, 2)")), vec![1, 2, 3]);
    assert_eq!(ints(&ev("fn:remove((1,2,3), 2)")), vec![1, 3]);
    assert_eq!(ints(&ev("fn:subsequence((1,2,3,4), 2, 2)")), vec![2, 3]);
    assert_eq!(ints(&ev("fn:index-of((10,20,10), 10)")), vec![1, 3]);
    // aggregates
    assert_eq!(as_string(&ev("fn:sum((1,2,3))")), "6");
    assert_eq!(as_string(&ev("fn:sum(())")), "0");
    assert_eq!(as_string(&ev("fn:avg((1,2,3,4))")), "2.5");
    assert_eq!(as_string(&ev("fn:min((3,1,2))")), "1");
    assert_eq!(as_string(&ev("fn:max(('a','c','b'))")), "c");
    // numerics
    assert_eq!(as_string(&ev("fn:abs(-5)")), "5");
    assert_eq!(as_string(&ev("fn:floor(2.7)")), "2");
    assert_eq!(as_string(&ev("fn:ceiling(2.1)")), "3");
    assert_eq!(as_string(&ev("fn:round(2.5)")), "3");
    assert_eq!(as_string(&ev("fn:round(-2.5)")), "-2");
    assert_eq!(as_string(&ev("fn:number('12.5')")), "12.5");
    assert_eq!(as_string(&ev("fn:number('zzz')")), "NaN");
    // cardinality
    assert!(ev_err("fn:zero-or-one((1,2))").is(ErrorCode::FORG0003));
    assert!(ev_err("fn:one-or-more(())").is(ErrorCode::FORG0004));
    assert!(ev_err("fn:exactly-one(())").is(ErrorCode::FORG0005));
    // regex family
    assert_eq!(as_string(&ev("fn:matches('abc123', '[0-9]+')")), "true");
    assert_eq!(as_string(&ev("fn:replace('a1b2', '[0-9]', '#')")), "a#b#");
    assert_eq!(as_string(&ev("fn:tokenize('one two', ' ')")), "one two");
    // deep-equal
    assert_eq!(
        as_string(&ev("fn:deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)")),
        "true"
    );
    assert_eq!(as_string(&ev("fn:deep-equal(<a>1</a>, <a>2</a>)")), "false");
    // codepoints
    assert_eq!(as_string(&ev("fn:codepoints-to-string((104, 105))")), "hi");
    assert_eq!(ints(&ev("fn:string-to-codepoints('hi')")), vec![104, 105]);
    // QNames
    assert_eq!(
        as_string(&ev("fn:local-name-from-QName(fn:QName('urn:x', 'p:l'))")),
        "l"
    );
    // dates (engine-fixed clock)
    assert_eq!(as_string(&ev("fn:current-date()")), "2007-12-07");
}

#[test]
fn fn_error_and_codes() {
    let e = ev_err("fn:error()");
    assert!(e.is(ErrorCode::FOER0000));
    let e = ev_err("fn:error(xs:QName('OOPS'), 'went wrong')");
    assert_eq!(e.code, QName::new("OOPS"));
    assert_eq!(e.message, "went wrong");
    let e = ev_err("fn:error(xs:QName('E'), 'm', ('d1', 'd2'))");
    assert_eq!(e.diagnostics, vec!["d1", "d2"]);
}

#[test]
fn fn_trace_collects_into_env() {
    let engine = Engine::new();
    let expr = xqparser::parser::parse_expr("fn:trace('ping')", &[]).unwrap();
    let mut env = Env::new();
    let out = engine.eval_in(&expr, &mut env).unwrap();
    assert_eq!(as_string(&out), "ping");
    assert_eq!(env.trace_messages(), vec!["ping"]);
}

#[test]
fn user_functions_and_recursion() {
    let engine = Engine::new();
    engine
        .load(
            "declare function local:fact($n as xs:integer) as xs:integer { \
               if ($n le 1) then 1 else $n * local:fact($n - 1) \
             };",
        )
        .unwrap();
    let out = engine.eval_expr_str("local:fact(10)", &[]).unwrap();
    assert_eq!(ints(&out), vec![3628800]);
}

#[test]
fn user_function_type_checks() {
    let engine = Engine::new();
    engine
        .load("declare function local:f($n as xs:integer) as xs:string { $n };")
        .unwrap();
    assert!(engine
        .eval_expr_str("local:f(1)", &[])
        .unwrap_err()
        .is(ErrorCode::XPTY0004));
    assert!(engine
        .eval_expr_str("local:f('x')", &[])
        .unwrap_err()
        .is(ErrorCode::XPTY0004));
}

#[test]
fn external_functions_bind_sources() {
    let engine = Engine::new();
    let name = QName::with_ns("urn:src", "numbers");
    engine.register_external_function(
        name,
        0,
        Rc::new(|_env, _args| {
            Ok(Sequence::from_items(vec![Item::integer(5), Item::integer(6)]))
        }),
    );
    let out = engine
        .eval_expr_str("fn:sum(s:numbers())", &[("s", "urn:src")])
        .unwrap();
    assert_eq!(ints(&out), vec![11]);
}

#[test]
fn unknown_function_is_xpst0017() {
    assert!(ev_err("fn:nosuch(1)").is(ErrorCode::XPST0017));
    assert!(ev_err("fn:count()").is(ErrorCode::XPST0017));
}

#[test]
fn side_effecting_procedure_rejected_in_expressions() {
    let engine = Engine::new();
    let name = QName::with_ns("urn:p", "mutate");
    engine.register_external_procedure(
        name,
        0,
        false, // not readonly
        Rc::new(|_env, _args| Ok(Sequence::empty())),
    );
    let err = engine
        .eval_expr_str("p:mutate()", &[("p", "urn:p")])
        .unwrap_err();
    assert!(err.is(ErrorCode::XQSE0004));
}

#[test]
fn readonly_external_procedure_callable_from_expression() {
    let engine = Engine::new();
    let name = QName::with_ns("urn:p", "pure");
    engine.register_external_procedure(
        name,
        1,
        true,
        Rc::new(|_env, args| Ok(args.into_iter().next().unwrap())),
    );
    let out = engine.eval_expr_str("p:pure(42)", &[("p", "urn:p")]).unwrap();
    assert_eq!(ints(&out), vec![42]);
}

// ------------------------------------------------------- types & casts

#[test]
fn instance_of_and_treat_as() {
    assert_eq!(as_string(&ev("5 instance of xs:integer")), "true");
    assert_eq!(as_string(&ev("5 instance of xs:string")), "false");
    assert_eq!(as_string(&ev("(1,2) instance of xs:integer+")), "true");
    assert_eq!(as_string(&ev("() instance of empty-sequence()")), "true");
    assert_eq!(as_string(&ev("<a/> instance of element(a)")), "true");
    assert_eq!(as_string(&ev("<a/> instance of element(b)")), "false");
    assert_eq!(ints(&ev("5 treat as xs:integer")), vec![5]);
    assert!(ev_err("'x' treat as xs:integer").is(ErrorCode::XPDY0050));
}

#[test]
fn cast_and_castable() {
    assert_eq!(ints(&ev("'42' cast as xs:integer")), vec![42]);
    assert_eq!(as_string(&ev("'42' castable as xs:integer")), "true");
    assert_eq!(as_string(&ev("'x' castable as xs:integer")), "false");
    assert!(ev("() cast as xs:integer?").is_empty());
    assert!(ev_err("() cast as xs:integer").is(ErrorCode::XPTY0004));
    assert_eq!(as_string(&ev("'2007-12-07' cast as xs:date")), "2007-12-07");
}

// ------------------------------------------------------------- updates

#[test]
fn updating_expression_outside_statement_is_xust0001() {
    let e = ev_err("delete node <a/>");
    assert!(e.is(ErrorCode::XUST0001));
    let e = ev_err("for $x in <r><a/></r> return delete node $x/a");
    assert!(e.is(ErrorCode::XUST0001));
}

#[test]
fn updates_with_open_pul_accumulate_and_apply() {
    let engine = Engine::new();
    let doc = parse("<r><a>1</a><b>2</b></r>").unwrap();
    let root = doc.children()[0].clone();
    engine.register_document("mem:doc", doc);
    let mut env = Env::new();
    env.pul = Some(Pul::new());
    let expr = xqparser::parser::parse_expr(
        "(delete node fn:doc('mem:doc')/r/a, \
          replace value of node fn:doc('mem:doc')/r/b with 'two')",
        &[],
    )
    .unwrap();
    engine.eval_in(&expr, &mut env).unwrap();
    // Nothing applied yet: snapshot semantics.
    assert_eq!(serialize(&root), "<r><a>1</a><b>2</b></r>");
    let pul = env.pul.take().unwrap();
    assert_eq!(pul.len(), 2);
    pul.apply().unwrap();
    assert_eq!(serialize(&root), "<r><b>two</b></r>");
}

#[test]
fn insert_variants_through_expressions() {
    let engine = Engine::new();
    let doc = parse("<r><mid/></r>").unwrap();
    let root = doc.children()[0].clone();
    engine.register_document("mem:d", doc);
    let mut env = Env::new();
    env.pul = Some(Pul::new());
    let expr = xqparser::parser::parse_expr(
        "(insert node <last/> into fn:doc('mem:d')/r, \
          insert node <first/> as first into fn:doc('mem:d')/r, \
          insert node <pre/> before fn:doc('mem:d')/r/mid, \
          insert node attribute flag { 'y' } into fn:doc('mem:d')/r)",
        &[],
    )
    .unwrap();
    engine.eval_in(&expr, &mut env).unwrap();
    env.pul.take().unwrap().apply().unwrap();
    assert_eq!(serialize(&root), "<r flag=\"y\"><first/><pre/><mid/><last/></r>");
}

#[test]
fn rename_through_expression() {
    let engine = Engine::new();
    let doc = parse("<r><old/></r>").unwrap();
    let root = doc.children()[0].clone();
    engine.register_document("mem:r", doc);
    let mut env = Env::new();
    env.pul = Some(Pul::new());
    let expr =
        xqparser::parser::parse_expr("rename node fn:doc('mem:r')/r/old as 'new'", &[])
            .unwrap();
    engine.eval_in(&expr, &mut env).unwrap();
    env.pul.take().unwrap().apply().unwrap();
    assert_eq!(serialize(&root), "<r><new/></r>");
}

#[test]
fn transform_expression_copies() {
    // copy-modify-return leaves the original untouched.
    let q = "for $orig in <e><k>1</k></e> \
             let $new := (copy $c := $orig modify \
                            replace value of node $c/k with '9' \
                          return $c) \
             return (fn:string($orig/k), fn:string($new/k))";
    assert_eq!(as_string(&ev(q)), "1 9");
}

// ------------------------------------------------ join optimization

fn join_engine(n: usize) -> Engine {
    let engine = Engine::new();
    // Two "tables" as external functions.
    let customers: Vec<Item> = (0..n)
        .map(|i| {
            let doc = parse(&format!("<C><CID>{i}</CID><NAME>c{i}</NAME></C>")).unwrap();
            Item::Node(doc.children()[0].clone())
        })
        .collect();
    let cards: Vec<Item> = (0..n)
        .map(|i| {
            let doc = parse(&format!("<K><CID>{i}</CID><NUM>n{i}</NUM></K>")).unwrap();
            Item::Node(doc.children()[0].clone())
        })
        .collect();
    let c = Sequence::from_items(customers);
    let k = Sequence::from_items(cards);
    engine.register_external_function(
        QName::with_ns("urn:db", "CUSTOMER"),
        0,
        Rc::new(move |_e, _a| Ok(c.clone())),
    );
    engine.register_external_function(
        QName::with_ns("urn:db", "CARD"),
        0,
        Rc::new(move |_e, _a| Ok(k.clone())),
    );
    engine
}

const JOIN_Q: &str = "for $c in db:CUSTOMER() \
     return fn:count(for $k in db:CARD() \
                     where $c/CID eq $k/CID \
                     return $k)";

#[test]
fn hash_join_and_nested_loop_agree() {
    let engine = join_engine(30);
    let fast = engine.eval_expr_str(JOIN_Q, &[("db", "urn:db")]).unwrap();
    engine.set_optimize(false);
    let slow = engine.eval_expr_str(JOIN_Q, &[("db", "urn:db")]).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.len(), 30);
    assert!(fast.atomized().iter().all(|a| a.string_value() == "1"));
}

#[test]
fn join_with_general_comparison_also_optimized() {
    let engine = join_engine(10);
    let q = "for $c in db:CUSTOMER() \
             return fn:count(for $k in db:CARD() where $k/CID = $c/CID return $k)";
    let fast = engine.eval_expr_str(q, &[("db", "urn:db")]).unwrap();
    assert_eq!(fast.len(), 10);
    assert!(fast.atomized().iter().all(|a| a.string_value() == "1"));
}

// ----------------------------------------------------- global variables

#[test]
fn global_variables_and_externals() {
    let engine = Engine::new();
    engine.set_global(QName::new("ext"), Sequence::one(Item::integer(5)));
    engine
        .load("declare variable $base := 10; declare variable $ext external;")
        .unwrap();
    let out = engine.eval_expr_str("$base + $ext", &[]).unwrap();
    assert_eq!(ints(&out), vec![15]);
}

#[test]
fn unbound_external_variable_fails_at_load() {
    let engine = Engine::new();
    let err = engine.load("declare variable $missing external;").unwrap_err();
    assert!(err.is(ErrorCode::XPST0008));
}

#[test]
fn eval_query_runs_expression_bodies() {
    let engine = Engine::new();
    let out = engine
        .eval_query(
            "declare function local:sq($n) { $n * $n }; \
             fn:sum(for $i in 1 to 4 return local:sq($i))",
        )
        .unwrap();
    assert_eq!(ints(&out), vec![30]);
}

#[test]
fn eval_query_rejects_block_bodies() {
    let engine = Engine::new();
    let err = engine.eval_query("{ return value 1; }").unwrap_err();
    assert!(err.message.contains("XQSE"));
}

// ------------------------------------------------------ figure 3 shape

#[test]
fn figure3_style_integration_query() {
    // A miniature of the paper's getProfile(): two sources + nesting
    // + a "web service" call.
    let engine = join_engine(3);
    engine.register_external_function(
        QName::with_ns("urn:ws", "rating"),
        1,
        Rc::new(|_e, args| {
            let name = args[0].string_value()?;
            Ok(Sequence::one(Item::string(format!("rated:{name}"))))
        }),
    );
    let q = "for $c in db:CUSTOMER() \
             return <Profile>\
                      <Name>{fn:data($c/NAME)}</Name>\
                      <Cards>{for $k in db:CARD() \
                              where $c/CID eq $k/CID \
                              return <Card>{fn:data($k/NUM)}</Card>}</Cards>\
                      <Rating>{ws:rating(fn:data($c/NAME))}</Rating>\
                    </Profile>";
    let out = engine
        .eval_expr_str(q, &[("db", "urn:db"), ("ws", "urn:ws")])
        .unwrap();
    assert_eq!(out.len(), 3);
    let first = serialize_sequence(&Sequence::one(out.items()[0].clone()));
    assert_eq!(
        first,
        "<Profile><Name>c0</Name><Cards><Card>n0</Card></Cards>\
         <Rating>rated:c0</Rating></Profile>"
    );
}

#[test]
fn date_accessor_functions() {
    assert_eq!(as_string(&ev("fn:year-from-date(xs:date('2007-12-07'))")), "2007");
    assert_eq!(as_string(&ev("fn:month-from-date(xs:date('2007-12-07'))")), "12");
    assert_eq!(as_string(&ev("fn:day-from-date(xs:date('2007-12-07'))")), "7");
    assert_eq!(
        as_string(&ev("fn:hours-from-dateTime(xs:dateTime('2007-12-07T10:30:05'))")),
        "10"
    );
    assert_eq!(
        as_string(&ev("fn:minutes-from-dateTime(xs:dateTime('2007-12-07T10:30:05'))")),
        "30"
    );
    assert_eq!(
        as_string(&ev("fn:seconds-from-dateTime(xs:dateTime('2007-12-07T10:30:05'))")),
        "5"
    );
    // Untyped coercion from node content (the ORDER_DATE case).
    assert_eq!(as_string(&ev("fn:year-from-date(<d>2008-02-29</d>)")), "2008");
    assert!(ev("fn:year-from-date(())").is_empty());
    assert!(ev_err("fn:year-from-date(5)").is(ErrorCode::XPTY0004));
}

#[test]
fn fn_compare() {
    assert_eq!(as_string(&ev("fn:compare('a', 'b')")), "-1");
    assert_eq!(as_string(&ev("fn:compare('b', 'a')")), "1");
    assert_eq!(as_string(&ev("fn:compare('a', 'a')")), "0");
    assert!(ev("fn:compare((), 'a')").is_empty());
}

#[test]
fn reverse_axis_positions() {
    // Positions on reverse axes count outward from the context node:
    // ancestor::*[1] is the parent, not the root.
    let q = "for $c in <a><b><c/></b></a>//c \
             return fn:local-name($c/ancestor::*[1])";
    assert_eq!(as_string(&ev(q)), "b");
    let q = "for $c in <a><b><c/></b></a>//c \
             return fn:local-name($c/ancestor::*[2])";
    assert_eq!(as_string(&ev(q)), "a");
    // preceding-sibling::*[1] is the nearest preceding sibling.
    let q = "for $c in <r><a/><b/><c/></r>/c \
             return fn:local-name($c/preceding-sibling::*[1])";
    assert_eq!(as_string(&ev(q)), "b");
}

#[test]
fn chained_predicates_refocus() {
    // The second predicate sees the position among survivors of the
    // first.
    assert_eq!(ints(&ev("(1 to 10)[. mod 2 = 0][2]")), vec![4]);
    assert_eq!(ints(&ev("(1 to 10)[2][1]")), vec![2]);
    assert!(ev("(1 to 10)[2][2]").is_empty());
}

#[test]
fn predicate_inside_predicate() {
    let q = "<r><g><v>1</v><v>2</v></g><g><v>3</v></g></r>/g[v[2]]/v[1]";
    assert_eq!(as_string(&ev(q)), "<v>1</v>");
}

#[test]
fn self_axis_with_name_test_filters() {
    let q = "fn:count(<r><a/><b/></r>/*/self::a)";
    assert_eq!(as_string(&ev(q)), "1");
}

#[test]
fn arity_overloading_resolution() {
    // fn:substring 2-arg vs 3-arg; fn:error 0..3 handled elsewhere.
    assert_eq!(as_string(&ev("fn:substring('abcdef', 3)")), "cdef");
    assert_eq!(as_string(&ev("fn:substring('abcdef', 3, 2)")), "cd");
}

#[test]
fn external_function_error_propagates() {
    let engine = Engine::new();
    engine.register_external_function(
        QName::with_ns("urn:x", "boom"),
        0,
        Rc::new(|_e, _a| {
            Err(xdm::error::XdmError::new(
                xdm::error::ErrorCode::DSP0004,
                "source offline",
            ))
        }),
    );
    let err = engine.eval_expr_str("fn:count(x:boom())", &[("x", "urn:x")]).unwrap_err();
    assert!(err.is(ErrorCode::DSP0004));
    assert!(err.message.contains("source offline"));
}

#[test]
fn join_cache_invalidation_sees_fresh_data() {
    use std::cell::RefCell;
    // A mutable "table" behind an external function: after
    // invalidate_caches, the next evaluation must observe the change.
    let engine = Engine::new();
    let rows: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(vec![1, 2]));
    let r2 = rows.clone();
    engine.register_external_function(
        QName::with_ns("urn:t", "rows"),
        0,
        Rc::new(move |_e, _a| {
            Ok(r2.borrow()
                .iter()
                .map(|i| {
                    Item::Node(
                        parse(&format!("<R><K>{i}</K></R>")).unwrap().children()[0]
                            .clone(),
                    )
                })
                .collect())
        }),
    );
    let q = "fn:count(for $k in (1, 2, 3) \
             return (for $r in t:rows() where $r/K = $k return $r))";
    let expr = xqparser::parser::parse_expr(q, &[("t", "urn:t")]).unwrap();
    let mut env = Env::new();
    let before = engine.eval_in(&expr, &mut env).unwrap();
    assert_eq!(as_string(&before), "2");
    rows.borrow_mut().push(3);
    // Without invalidation the memoized index would be stale within
    // the same Env; the XQSE engine calls this at statement
    // boundaries.
    env.invalidate_caches();
    let after = engine.eval_in(&expr, &mut env).unwrap();
    assert_eq!(as_string(&after), "3");
}

// ---------------------------------------------------------------
// Prepared-plan cache (PR 4).
// ---------------------------------------------------------------

#[test]
fn prepare_caches_plans_by_source_text() {
    let engine = Engine::new();
    let src = "declare variable $n := 4; $n * $n";
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "16");
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "16");
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "16");
    let s = engine.opt_stats();
    assert_eq!(s.plan_misses, 1, "parsed once");
    assert_eq!(s.plan_hits, 2, "re-executed from cache twice");
}

#[test]
fn plan_cache_hit_reinstalls_the_plans_own_prolog() {
    // Two modules declare the same function differently; alternating
    // between them must never execute the wrong body.
    let engine = Engine::new();
    let m1 = "declare function local:f() { 1 }; local:f()";
    let m2 = "declare function local:f() { 2 }; local:f()";
    for _ in 0..3 {
        assert_eq!(as_string(&engine.eval_query(m1).unwrap()), "1");
        assert_eq!(as_string(&engine.eval_query(m2).unwrap()), "2");
    }
    assert_eq!(engine.opt_stats().plan_misses, 2);
    assert_eq!(engine.opt_stats().plan_hits, 4);
}

#[test]
fn registering_externals_invalidates_cached_plans() {
    let engine = Engine::new();
    let src = "fn:count(x:rows())";
    engine.register_external_function(
        QName::with_ns("urn:x", "rows"),
        0,
        Rc::new(|_e, _a| Ok(Sequence::one(Item::integer(1)))),
    );
    let expr_src = "declare namespace x = \"urn:x\"; fn:count(x:rows())";
    assert_eq!(as_string(&engine.eval_query(expr_src).unwrap()), "1");
    // Re-registering bumps the registry generation: the cached plan's
    // pre-resolved bindings are stale, so the next prepare re-compiles.
    engine.register_external_function(
        QName::with_ns("urn:x", "rows"),
        0,
        Rc::new(|_e, _a| {
            Ok(vec![Item::integer(1), Item::integer(2)].into_iter().collect())
        }),
    );
    assert_eq!(as_string(&engine.eval_query(expr_src).unwrap()), "2");
    assert_eq!(engine.opt_stats().plan_misses, 2, "generation bump re-prepared");
    let _ = src;
}

#[test]
fn plan_cache_disabled_with_batch_kill_switch() {
    let engine = Engine::new();
    engine.set_batch(false);
    let src = "1 + 1";
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "2");
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "2");
    let s = engine.opt_stats();
    assert_eq!(s.plan_hits, 0);
    assert_eq!(s.plan_misses, 0, "kill switch bypasses the cache entirely");
}

#[test]
fn plan_cache_capacity_is_bounded() {
    let engine = Engine::new();
    engine.set_plan_cache_capacity(2);
    for i in 0..4 {
        let src = format!("{i} + {i}");
        engine.eval_query(&src).unwrap();
    }
    // Re-running the oldest source misses (it was evicted)…
    engine.eval_query("0 + 0").unwrap();
    assert_eq!(engine.opt_stats().plan_misses, 5);
    // …while the newest still hits.
    engine.eval_query("3 + 3").unwrap();
    assert_eq!(engine.opt_stats().plan_hits, 1);
}

#[test]
fn rebinding_external_variable_is_seen_by_cached_plans() {
    // External variables are the ALDSP parameter mechanism: the same
    // prepared plan is executed many times with different bindings.
    // A plan-cache hit must read the *live* binding, not a value
    // frozen at prepare time.
    let engine = Engine::new();
    let x = QName::new("x");
    engine.set_global(x.clone(), Sequence::one(Item::integer(1)));
    let src = "declare variable $x external; $x + 0";
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "1");
    engine.set_global(x, Sequence::one(Item::integer(2)));
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "2");
    let s = engine.opt_stats();
    assert_eq!(s.plan_misses, 1, "compiled once");
    assert_eq!(s.plan_hits, 1, "the re-bind did not invalidate the plan");
}

#[test]
fn cached_plans_mix_initialized_and_external_variables() {
    // Initialized declarations are captured and re-installed verbatim
    // on a hit; external ones read through — both in one prolog.
    let engine = Engine::new();
    let p = QName::new("p");
    engine.set_global(p.clone(), Sequence::one(Item::integer(10)));
    let src = "declare variable $k := 7; declare variable $p external; $k + $p";
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "17");
    engine.set_global(p, Sequence::one(Item::integer(20)));
    assert_eq!(as_string(&engine.eval_query(src).unwrap()), "27");
}

#[test]
fn prepared_constant_folding_matches_unfolded_result() {
    let engine = Engine::new();
    let src = "(1 + 2 * 3) = 7";
    let cached = engine.eval_query(src).unwrap();
    engine.set_batch(false);
    let plain = engine.eval_query(src).unwrap();
    assert_eq!(as_string(&cached), as_string(&plain));
    assert_eq!(as_string(&cached), "true");
}

// ----------------------------------------------- streaming / lazy eval

#[test]
fn subsequence_page_early_exits_the_stream() {
    let engine = Engine::new();
    let out = engine
        .eval_query("subsequence(for $i in 1 to 10000 return $i * 2, 1, 5)")
        .unwrap();
    assert_eq!(ints(&out), vec![2, 4, 6, 8, 10]);
    let s = engine.opt_stats();
    assert_eq!(s.tuples_pulled, 5, "only the page's tuples are produced");
    assert_eq!(s.early_exits, 1);
    assert_eq!(s.items_never_built, 9995);
}

#[test]
fn exists_probe_pulls_one_tuple() {
    let engine = Engine::new();
    let out = engine
        .eval_query("exists(for $i in 1 to 100000 where $i mod 2 eq 0 return $i)")
        .unwrap();
    assert_eq!(as_string(&out), "true");
    let s = engine.opt_stats();
    assert_eq!(s.tuples_pulled, 1, "the first surviving tuple decides");
    assert_eq!(s.early_exits, 1);
}

#[test]
fn empty_probe_pulls_one_tuple() {
    let engine = Engine::new();
    let out = engine
        .eval_query("empty(for $i in 1 to 100000 return $i)")
        .unwrap();
    assert_eq!(as_string(&out), "false");
    assert_eq!(engine.opt_stats().tuples_pulled, 1);
}

#[test]
fn count_comparison_stops_at_the_cutoff() {
    let engine = Engine::new();
    let out = engine
        .eval_query("count(for $i in 1 to 100000 return $i) gt 3")
        .unwrap();
    assert_eq!(as_string(&out), "true");
    let s = engine.opt_stats();
    // floor(3) + 2 pulls decide every comparison against 3.
    assert_eq!(s.tuples_pulled, 5);
    assert_eq!(s.early_exits, 1);
    // Exact counts still come out right below the cutoff.
    let out = engine
        .eval_query("count(for $i in 1 to 4 return $i) eq 7")
        .unwrap();
    assert_eq!(as_string(&out), "false");
}

#[test]
fn positional_predicates_pull_a_bounded_prefix() {
    let engine = Engine::new();
    let out = engine
        .eval_query("(for $i in 1 to 100000 return $i * $i)[3]")
        .unwrap();
    assert_eq!(ints(&out), vec![9]);
    assert_eq!(engine.opt_stats().tuples_pulled, 3);

    engine.reset_opt_stats();
    let out = engine
        .eval_query("(for $i in 1 to 100000 return $i)[position() le 4]")
        .unwrap();
    assert_eq!(ints(&out), vec![1, 2, 3, 4]);
    assert_eq!(engine.opt_stats().tuples_pulled, 4);
}

#[test]
fn quantifiers_short_circuit_the_stream() {
    let engine = Engine::new();
    let out = engine
        .eval_query("some $x in (for $i in 1 to 100000 return $i) satisfies $x eq 3")
        .unwrap();
    assert_eq!(as_string(&out), "true");
    assert_eq!(engine.opt_stats().tuples_pulled, 3);
}

#[test]
fn kill_switch_restores_eager_evaluation() {
    let engine = Engine::new();
    engine.set_lazy(false);
    let out = engine
        .eval_query("subsequence(for $i in 1 to 1000 return $i, 1, 5)")
        .unwrap();
    assert_eq!(ints(&out), vec![1, 2, 3, 4, 5]);
    let s = engine.opt_stats();
    assert_eq!(s.tuples_pulled, 0, "no stream engages with lazy off");
    assert_eq!(s.early_exits, 0);
    assert_eq!(s.items_never_built, 0);
}

#[test]
fn errors_inside_the_consumed_window_still_raise() {
    let engine = Engine::new();
    let err = engine
        .eval_query("subsequence(for $i in (0, 2) return 10 idiv $i, 1, 1)")
        .unwrap_err();
    assert!(err.is(ErrorCode::FOAR0001), "got {err:?}");
}

#[test]
fn errors_past_the_early_exit_are_never_evaluated() {
    // Documented deviation (DESIGN §11): the eager engine drains the
    // whole chain and hits the division by zero; the lazy engine stops
    // at the window's edge and never evaluates the poisoned tuple.
    let engine = Engine::new();
    let out = engine
        .eval_query("subsequence(for $i in (1, 2, 0, 4) return 10 idiv $i, 1, 2)")
        .unwrap();
    assert_eq!(ints(&out), vec![10, 5]);
    engine.set_lazy(false);
    let err = engine
        .eval_query("subsequence(for $i in (1, 2, 0, 4) return 10 idiv $i, 1, 2)")
        .unwrap_err();
    assert!(err.is(ErrorCode::FOAR0001));
}

#[test]
fn lazy_entry_point_returns_a_pull_stream() {
    let engine = Engine::new();
    let seq = engine
        .eval_query_lazy("for $i in 1 to 5 return $i + 1")
        .unwrap();
    assert!(seq.is_lazy());
    assert_eq!(engine.opt_stats().tuples_pulled, 0, "nothing pulled yet");
    let mut got = Vec::new();
    let mut i = 0;
    while let Some(item) = seq.try_item(i).unwrap() {
        got.push(item.string_value());
        i += 1;
    }
    assert_eq!(got, vec!["2", "3", "4", "5", "6"]);
    assert_eq!(engine.opt_stats().tuples_pulled, 5);
    assert_eq!(engine.opt_stats().early_exits, 0, "a drained stream is not an early exit");
}

#[test]
fn nested_streams_compose() {
    // The inner chain feeds the outer `for` as a lazy source; paging
    // the outer output pulls both pipelines only as far as the page.
    let engine = Engine::new();
    let out = engine
        .eval_query(
            "subsequence(for $x in (for $i in 1 to 10000 return $i * 10) \
             where $x ge 30 return $x, 1, 2)",
        )
        .unwrap();
    assert_eq!(ints(&out), vec![30, 40]);
    let s = engine.opt_stats();
    assert!(s.tuples_pulled < 20, "pulled {}", s.tuples_pulled);
}

#[test]
fn order_by_falls_back_to_eager() {
    let engine = Engine::new();
    let out = engine
        .eval_query(
            "subsequence(for $i in (3, 1, 2) order by $i descending return $i, 1, 2)",
        )
        .unwrap();
    assert_eq!(ints(&out), vec![3, 2]);
    assert_eq!(engine.opt_stats().tuples_pulled, 0, "sorts are a barrier");
}

#[test]
fn streamed_flwor_matches_eager_output() {
    // Value parity both kill-switch ways across a grab-bag of shapes.
    let queries = [
        "for $i in 1 to 20 where $i mod 3 eq 0 return $i",
        "for $i in 1 to 5, $j in 1 to 3 return $i * 10 + $j",
        "for $i at $p in (10, 20, 30) return $p + $i",
        "for $i in 1 to 10 let $d := $i * 2 where $d gt 10 return $d",
        "subsequence(for $i in 1 to 50 return <n>{$i}</n>, 5, 3)",
    ];
    for q in queries {
        let lazy_engine = Engine::new();
        let eager_engine = Engine::new();
        eager_engine.set_lazy(false);
        let a = serialize_sequence(&lazy_engine.eval_query(q).unwrap());
        let b = serialize_sequence(&eager_engine.eval_query(q).unwrap());
        assert_eq!(a, b, "lazy/eager divergence for {q}");
    }
}
