//! Per-request resource budgets: wall-clock deadline, evaluation fuel,
//! and an XDM allocation ceiling, carried in a `Send + Sync`
//! cancellation token.
//!
//! XQSE makes the mediation tier Turing-complete — `while`/`iterate`
//! loops and procedure calls mean a single request can run forever or
//! fan out unboundedly into sources. The serving pool (`aldsp::pool`)
//! therefore attaches a [`Budget`] to each admitted request and
//! threads it through three layers:
//!
//! 1. the expression evaluator's hot loop charges one **fuel** unit
//!    per evaluation step (`Evaluator::eval`) and the XQSE/XQueryP
//!    `while`/`iterate` interpreters check at every loop head;
//! 2. node constructors charge **memory** units per constructed node;
//! 3. the resilience layer clamps per-source-call timeouts to the
//!    budget's remaining **deadline**, so retries and backoff never
//!    outlive the request, and the journaled 2PC coordinator checks
//!    for cancellation at every pre-decision protocol point.
//!
//! Exhaustion surfaces as XQSE-catchable errors in the ALDSP error
//! namespace (`aldsp:DEADLINE_EXCEEDED`, `aldsp:FUEL_EXHAUSTED`,
//! `aldsp:MEMORY_LIMIT`, `aldsp:CANCELLED`) so a data-service script
//! can degrade gracefully in `try`/`catch` (paper §III.D). The budget
//! is all atomics: a client (or the pool) may [`Budget::cancel`] from
//! another thread and the serving worker observes it cooperatively at
//! the next check point.
//!
//! Deadlines are expressed against a pluggable [`BudgetClock`] — the
//! chaos tests hand in the resilience layer's *virtual* clock so
//! deadline expiry is deterministic; `xqsh` uses real elapsed time.
//!
//! The whole subsystem has a kill switch: `XQSE_DISABLE_BUDGETS=1`
//! (same convention as `XQSE_DISABLE_OPT`/`XQSE_DISABLE_BATCH`) makes
//! every installation site a no-op, restoring pre-budget behavior.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use xdm::error::{XdmError, XdmResult};
use xdm::qname::QName;

/// Namespace URI of the ALDSP infrastructure error codes. Budget
/// errors are raised from the evaluator layer, below the `aldsp`
/// crate, so the namespace is duplicated here; `aldsp::errors`
/// asserts the two stay identical.
pub const ALDSP_ERR_NS: &str = "urn:aldsp:errors";

/// Millisecond reading of "now" for deadline accounting. Virtual in
/// tests (an atomic counter advanced by the resilience layer), real
/// elapsed time in `xqsh`.
pub type BudgetClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Sentinel for "no limit" on an atomic budget dimension.
const UNLIMITED: u64 = u64::MAX;

/// Deadline checks in [`Budget::step`] run every `STRIDE` steps: a
/// clock read per evaluation step would tax the hot loop for no
/// precision gain (coarse-grained sites — loop heads, source calls,
/// 2PC protocol points — check unstrided).
const DEADLINE_STRIDE: u64 = 64;

/// Is the budget subsystem enabled? `XQSE_DISABLE_BUDGETS=1` turns
/// every installation site into a no-op (the kill switch restoring
/// pre-budget behavior). Read per call, matching the
/// `XQSE_SERVE_WORKERS` convention.
pub fn budgets_enabled() -> bool {
    !matches!(std::env::var("XQSE_DISABLE_BUDGETS").as_deref(), Ok("1"))
}

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The request's wall-clock deadline passed.
    Deadline,
    /// The request's evaluation-step allowance ran out.
    Fuel,
    /// The request's XDM allocation ceiling was hit.
    Memory,
    /// The request was cancelled externally ([`Budget::cancel`]).
    Cancelled,
}

impl BudgetExceeded {
    /// The local part of the XQSE-catchable error QName.
    pub fn local(&self) -> &'static str {
        match self {
            BudgetExceeded::Deadline => "DEADLINE_EXCEEDED",
            BudgetExceeded::Fuel => "FUEL_EXHAUSTED",
            BudgetExceeded::Memory => "MEMORY_LIMIT",
            BudgetExceeded::Cancelled => "CANCELLED",
        }
    }

    /// The error code as a QName in [`ALDSP_ERR_NS`].
    pub fn qname(&self) -> QName {
        QName::with_ns(ALDSP_ERR_NS, self.local())
    }

    /// Build the typed [`XdmError`] for this exhaustion.
    pub fn error(&self, message: impl Into<String>) -> XdmError {
        XdmError::with_code(self.qname(), message)
    }
}

/// The per-request budget/cancellation token.
///
/// All state is atomic, so one `Arc<Budget>` can be shared between
/// the serving worker executing the request, the admission layer that
/// stamped it, and a client thread that may cancel it. Fuel and
/// memory are charged by the single worker thread evaluating the
/// request; cross-thread access to those is read-mostly (a concurrent
/// reader may miss one in-flight charge, which is harmless).
pub struct Budget {
    clock: BudgetClock,
    /// Absolute deadline in clock ms; [`UNLIMITED`] = none.
    deadline_ms: AtomicU64,
    /// Remaining evaluation steps; [`UNLIMITED`] = no limit.
    fuel: AtomicU64,
    /// Remaining XDM allocation units; [`UNLIMITED`] = no limit.
    memory: AtomicU64,
    cancelled: AtomicBool,
    /// Total steps charged (drives the strided deadline check and the
    /// overhead guard's step accounting).
    steps: AtomicU64,
    /// Loop-head checks taken (drives [`Budget::loop_check`]'s
    /// deadline stride, independent of the step stride).
    loop_checks: AtomicU64,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline_ms", &self.deadline_ms.load(Ordering::Relaxed))
            .field("fuel", &self.fuel.load(Ordering::Relaxed))
            .field("memory", &self.memory.load(Ordering::Relaxed))
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .field("steps", &self.steps.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits and a null clock — only
    /// [`Budget::cancel`] can interrupt it.
    pub fn unlimited() -> Budget {
        Budget::with_clock(Arc::new(|| 0))
    }

    /// A limitless budget reading deadlines off `clock`.
    pub fn with_clock(clock: BudgetClock) -> Budget {
        Budget {
            clock,
            deadline_ms: AtomicU64::new(UNLIMITED),
            fuel: AtomicU64::new(UNLIMITED),
            memory: AtomicU64::new(UNLIMITED),
            cancelled: AtomicBool::new(false),
            steps: AtomicU64::new(0),
            loop_checks: AtomicU64::new(0),
        }
    }

    /// Set the deadline `ms` milliseconds from the clock's current
    /// reading (builder style).
    pub fn deadline_in(self, ms: u64) -> Budget {
        let now = (self.clock)();
        self.deadline_ms.store(now.saturating_add(ms), Ordering::Relaxed);
        self
    }

    /// Limit evaluation fuel to `steps` (builder style).
    pub fn limit_fuel(self, steps: u64) -> Budget {
        self.fuel.store(steps, Ordering::Relaxed);
        self
    }

    /// Limit XDM allocation to `units` (builder style).
    pub fn limit_memory(self, units: u64) -> Budget {
        self.memory.store(units, Ordering::Relaxed);
        self
    }

    /// True when any dimension is limited. Unlimited budgets are not
    /// worth installing unless cancellation is wanted.
    pub fn is_limited(&self) -> bool {
        self.deadline_ms.load(Ordering::Relaxed) != UNLIMITED
            || self.fuel.load(Ordering::Relaxed) != UNLIMITED
            || self.memory.load(Ordering::Relaxed) != UNLIMITED
    }

    /// Cancel the request: every subsequent check on any thread fails
    /// with `aldsp:CANCELLED`.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`Budget::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The clock this budget reads deadlines from.
    pub fn clock(&self) -> BudgetClock {
        self.clock.clone()
    }

    /// Milliseconds left until the deadline: `None` when no deadline
    /// is set, `Some(0)` when it already passed.
    pub fn remaining_ms(&self) -> Option<u64> {
        let deadline = self.deadline_ms.load(Ordering::Relaxed);
        if deadline == UNLIMITED {
            return None;
        }
        Some(deadline.saturating_sub((self.clock)()))
    }

    /// Remaining fuel, `None` when unlimited.
    pub fn remaining_fuel(&self) -> Option<u64> {
        match self.fuel.load(Ordering::Relaxed) {
            UNLIMITED => None,
            n => Some(n),
        }
    }

    /// Remaining memory units, `None` when unlimited.
    pub fn remaining_memory(&self) -> Option<u64> {
        match self.memory.load(Ordering::Relaxed) {
            UNLIMITED => None,
            n => Some(n),
        }
    }

    /// Evaluation steps charged so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Which dimension (if any) is exhausted right now, without
    /// charging anything. Cancellation dominates, then deadline.
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(BudgetExceeded::Cancelled);
        }
        match self.remaining_ms() {
            Some(0) => Some(BudgetExceeded::Deadline),
            _ => None,
        }
    }

    /// Coarse-grained cooperative check: cancellation and deadline,
    /// unstrided. Loop heads, source-call admission, and 2PC protocol
    /// points call this.
    pub fn check(&self) -> XdmResult<()> {
        match self.exceeded() {
            None => Ok(()),
            Some(why) => Err(self.exceed_error(why)),
        }
    }

    /// Loop-head cooperative check: cancellation on every call, the
    /// deadline every [`DEADLINE_STRIDE`]th call. The clock read is
    /// the expensive part of a budget check on a tight interpreter
    /// loop, and the deadline's resolution is a millisecond anyway —
    /// striding it keeps an armed budget inside the overhead guard's
    /// envelope while cancellation stays responsive per iteration.
    /// Unstrided checks ([`Budget::check`]) remain on source-call
    /// admission and 2PC protocol points, where exactness matters.
    #[inline]
    pub fn loop_check(&self) -> XdmResult<()> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.exceed_error(BudgetExceeded::Cancelled));
        }
        // Single-writer counter, like `steps` below.
        let n = self.loop_checks.load(Ordering::Relaxed);
        self.loop_checks.store(n + 1, Ordering::Relaxed);
        if n.is_multiple_of(DEADLINE_STRIDE) && self.remaining_ms() == Some(0) {
            return Err(self.exceed_error(BudgetExceeded::Deadline));
        }
        Ok(())
    }

    /// Fine-grained hot-loop charge: one fuel unit per evaluation
    /// step, with cancellation and the deadline consulted every
    /// [`DEADLINE_STRIDE`] steps (loop heads and source calls check
    /// them unstrided via [`Budget::check`], so responsiveness does
    /// not ride on the stride). Called at the top of
    /// `Evaluator::eval`, and by the pipelined FLWOR stream once per
    /// pulled tuple — so a budget keeps metering a lazy result while
    /// it drains, after the producing `eval` has already returned.
    /// Early exit is the flip side: tuples a stream never pulls are
    /// never charged, so fuel totals under lazy evaluation can be
    /// lower than eager totals for the same query (DESIGN.md §11
    /// deviation list).
    #[inline]
    pub fn step(&self) -> XdmResult<()> {
        let fuel = self.fuel.load(Ordering::Relaxed);
        if fuel != UNLIMITED {
            if fuel == 0 {
                return Err(self.exceed_error(BudgetExceeded::Fuel));
            }
            self.fuel.store(fuel - 1, Ordering::Relaxed);
        }
        // Single-writer counter: only the evaluating thread steps;
        // other threads just read. load+store keeps an RMW out of
        // the evaluator's hot loop.
        let n = self.steps.load(Ordering::Relaxed);
        self.steps.store(n + 1, Ordering::Relaxed);
        if n.is_multiple_of(DEADLINE_STRIDE) {
            if self.cancelled.load(Ordering::Relaxed) {
                return Err(self.exceed_error(BudgetExceeded::Cancelled));
            }
            if self.remaining_ms() == Some(0) {
                return Err(self.exceed_error(BudgetExceeded::Deadline));
            }
        }
        Ok(())
    }

    /// Charge `units` of XDM allocation (node constructors).
    pub fn charge_memory(&self, units: u64) -> XdmResult<()> {
        let mem = self.memory.load(Ordering::Relaxed);
        if mem == UNLIMITED {
            return Ok(());
        }
        if mem < units {
            self.memory.store(0, Ordering::Relaxed);
            return Err(self.exceed_error(BudgetExceeded::Memory));
        }
        self.memory.store(mem - units, Ordering::Relaxed);
        Ok(())
    }

    fn exceed_error(&self, why: BudgetExceeded) -> XdmError {
        let detail = match why {
            BudgetExceeded::Deadline => {
                format!("request deadline exceeded at t={}ms", (self.clock)())
            }
            BudgetExceeded::Fuel => format!(
                "evaluation fuel exhausted after {} steps",
                self.steps.load(Ordering::Relaxed)
            ),
            BudgetExceeded::Memory => "XDM allocation ceiling reached".to_string(),
            BudgetExceeded::Cancelled => "request cancelled by client".to_string(),
        };
        why.error(detail)
    }
}

thread_local! {
    /// The budget of the request this thread is currently serving.
    /// The serving pool installs it per request (mirroring
    /// `fault::set_current_worker`); the resilience layer and the 2PC
    /// coordinator — which have no engine in scope — read it here.
    static CURRENT_BUDGET: RefCell<Option<Arc<Budget>>> = const { RefCell::new(None) };
}

/// Install (or clear, with `None`) the current thread's request
/// budget. The engine's own budget slot is per-engine; this
/// thread-local is the channel to the source-access layers below.
pub fn set_current_budget(budget: Option<Arc<Budget>>) {
    CURRENT_BUDGET.with(|b| *b.borrow_mut() = budget);
}

/// The budget of the request this thread is serving, if any.
pub fn current_budget() -> Option<Arc<Budget>> {
    CURRENT_BUDGET.with(|b| b.borrow().clone())
}

#[cfg(test)]
#[allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
mod budget_tests {
    use super::*;

    fn code_of(e: &XdmError) -> String {
        e.code.local.to_string()
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.step().unwrap();
        }
        b.check().unwrap();
        b.charge_memory(1 << 40).unwrap();
        assert!(!b.is_limited());
        assert_eq!(b.remaining_ms(), None);
        assert_eq!(b.remaining_fuel(), None);
    }

    #[test]
    fn fuel_exhausts_after_exactly_n_steps() {
        let b = Budget::unlimited().limit_fuel(5);
        for _ in 0..5 {
            b.step().unwrap();
        }
        let err = b.step().unwrap_err();
        assert_eq!(code_of(&err), "FUEL_EXHAUSTED");
        assert_eq!(err.code.ns.as_deref(), Some(ALDSP_ERR_NS));
        assert_eq!(b.steps_taken(), 5);
    }

    #[test]
    fn deadline_expires_on_the_shared_clock() {
        let t = Arc::new(AtomicU64::new(0));
        let reader = t.clone();
        let b = Budget::with_clock(Arc::new(move || reader.load(Ordering::Relaxed)))
            .deadline_in(100);
        b.check().unwrap();
        assert_eq!(b.remaining_ms(), Some(100));
        t.store(99, Ordering::Relaxed);
        b.check().unwrap();
        t.store(100, Ordering::Relaxed);
        let err = b.check().unwrap_err();
        assert_eq!(code_of(&err), "DEADLINE_EXCEEDED");
        assert_eq!(b.remaining_ms(), Some(0));
    }

    #[test]
    fn memory_ceiling_trips_and_stays_tripped() {
        let b = Budget::unlimited().limit_memory(10);
        b.charge_memory(6).unwrap();
        b.charge_memory(4).unwrap();
        let err = b.charge_memory(1).unwrap_err();
        assert_eq!(code_of(&err), "MEMORY_LIMIT");
        assert_eq!(b.remaining_memory(), Some(0));
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let b = Arc::new(Budget::unlimited());
        let b2 = b.clone();
        std::thread::spawn(move || b2.cancel()).join().unwrap();
        let err = b.step().unwrap_err();
        assert_eq!(code_of(&err), "CANCELLED");
        assert_eq!(code_of(&b.check().unwrap_err()), "CANCELLED");
    }

    #[test]
    fn thread_local_install_is_per_thread() {
        let b = Arc::new(Budget::unlimited().limit_fuel(1));
        set_current_budget(Some(b.clone()));
        assert!(current_budget().is_some());
        std::thread::spawn(|| assert!(current_budget().is_none()))
            .join()
            .unwrap();
        set_current_budget(None);
        assert!(current_budget().is_none());
    }

    #[test]
    fn kill_switch_reads_the_env() {
        // The env var is process-global; only assert the default here
        // (the XQSE_DISABLE_BUDGETS=1 check.sh arm exercises the off
        // state end to end).
        if std::env::var("XQSE_DISABLE_BUDGETS").as_deref() != Ok("1") {
            assert!(budgets_enabled());
        } else {
            assert!(!budgets_enabled());
        }
    }
}
