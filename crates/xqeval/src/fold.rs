//! Prepare-time query analysis: constant folding and static binding
//! resolution.
//!
//! [`fold_expr`] rewrites literal-only subtrees (arithmetic,
//! comparisons, ranges, and boolean connectives over literals) to
//! their computed literal, so a prepared plan's tree-walk does less
//! work on every execution. Folding is strictly *value-preserving*:
//! a subtree is replaced only when it evaluates without error to a
//! single atomic item. Anything that errors (e.g. `1 div 0` in a
//! branch that may never run) or yields a non-singleton is left
//! untouched, so dynamic-error timing is unchanged.
//!
//! [`resolve_bindings`] walks the statically known function-call
//! sites and resolves each against the engine registries, so a
//! prepared plan records which user/external functions and readonly
//! procedures it will dispatch to — the cheap analysis half of the
//! paper-era "compile once" plan shape.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;

use xdm::qname::QName;
use xdm::sequence::Item;

use xqparser::ast::*;

use crate::context::Env;
use crate::engine::{Engine, FunctionKind, ProcKind};
use crate::eval::Evaluator;

/// What a statically known call site resolved to at prepare time.
#[derive(Clone)]
pub enum ResolvedBinding {
    /// A registered function (user-declared or external).
    Function(FunctionKind),
    /// A registered procedure (the evaluator only accepts readonly
    /// ones from expression context; resolution records it anyway).
    Procedure(ProcKind),
}

/// Is the expression composed purely of literals and foldable
/// operators? (No variables, no paths, no function calls, no
/// constructors — nothing that can observe dynamic context.)
fn literal_only(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Comma(items) => items.iter().all(literal_only),
        Expr::Range(a, b)
        | Expr::Binary(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::General(_, a, b)
        | Expr::Value(_, a, b) => literal_only(a) && literal_only(b),
        Expr::Unary(_, a) => literal_only(a),
        _ => false,
    }
}

/// Evaluate a literal-only subtree; `Some` only for clean singleton
/// atomic results.
fn eval_to_literal(engine: &Engine, e: &Expr) -> Option<Expr> {
    let mut env = Env::new();
    let seq = Evaluator::new(engine).eval(e, &mut env).ok()?;
    let items = seq.items();
    match items {
        [Item::Atomic(a)] => Some(Expr::Literal(a.clone())),
        _ => None,
    }
}

fn fold_box(engine: &Engine, e: &Expr) -> Box<Expr> {
    Box::new(fold_expr(engine, e))
}

fn fold_opt_box(engine: &Engine, e: &Option<Box<Expr>>) -> Option<Box<Expr>> {
    e.as_ref().map(|x| fold_box(engine, x))
}

fn fold_name(engine: &Engine, n: &NameExpr) -> NameExpr {
    match n {
        NameExpr::Fixed(q) => NameExpr::Fixed(q.clone()),
        NameExpr::Computed(e) => NameExpr::Computed(fold_box(engine, e)),
    }
}

fn fold_steps(engine: &Engine, steps: &[Step]) -> Vec<Step> {
    steps
        .iter()
        .map(|s| Step {
            axis: s.axis,
            test: s.test.clone(),
            predicates: s.predicates.iter().map(|p| fold_expr(engine, p)).collect(),
        })
        .collect()
}

fn fold_direct(engine: &Engine, d: &DirectElement) -> DirectElement {
    DirectElement {
        name: d.name.clone(),
        attributes: d
            .attributes
            .iter()
            .map(|(n, parts)| {
                (
                    n.clone(),
                    parts
                        .iter()
                        .map(|p| match p {
                            AttrContent::Text(t) => AttrContent::Text(t.clone()),
                            AttrContent::Expr(e) => AttrContent::Expr(fold_expr(engine, e)),
                        })
                        .collect(),
                )
            })
            .collect(),
        ns_decls: d.ns_decls.clone(),
        content: d
            .content
            .iter()
            .map(|c| match c {
                DirectContent::Expr(e) => DirectContent::Expr(fold_expr(engine, e)),
                DirectContent::Element(el) => {
                    DirectContent::Element(Box::new(fold_direct(engine, el)))
                }
                other => other.clone(),
            })
            .collect(),
    }
}

/// Constant-fold an expression tree (see module docs). Returns a new
/// tree; the input is never mutated.
pub fn fold_expr(engine: &Engine, e: &Expr) -> Expr {
    if !matches!(e, Expr::Literal(_)) && literal_only(e) {
        if let Some(lit) = eval_to_literal(engine, e) {
            return lit;
        }
    }
    match e {
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => e.clone(),
        Expr::Comma(items) => {
            Expr::Comma(items.iter().map(|x| fold_expr(engine, x)).collect())
        }
        Expr::Range(a, b) => Expr::Range(fold_box(engine, a), fold_box(engine, b)),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, fold_box(engine, a), fold_box(engine, b))
        }
        Expr::Unary(neg, a) => Expr::Unary(*neg, fold_box(engine, a)),
        Expr::And(a, b) => Expr::And(fold_box(engine, a), fold_box(engine, b)),
        Expr::Or(a, b) => Expr::Or(fold_box(engine, a), fold_box(engine, b)),
        Expr::General(op, a, b) => {
            Expr::General(*op, fold_box(engine, a), fold_box(engine, b))
        }
        Expr::Value(op, a, b) => {
            Expr::Value(*op, fold_box(engine, a), fold_box(engine, b))
        }
        Expr::Node(op, a, b) => {
            Expr::Node(*op, fold_box(engine, a), fold_box(engine, b))
        }
        Expr::Set(op, a, b) => {
            Expr::Set(*op, fold_box(engine, a), fold_box(engine, b))
        }
        Expr::If(c, t, f) => Expr::If(
            fold_box(engine, c),
            fold_box(engine, t),
            fold_box(engine, f),
        ),
        Expr::Flwor { clauses, ret } => Expr::Flwor {
            clauses: clauses
                .iter()
                .map(|c| match c {
                    FlworClause::For { var, pos, source } => FlworClause::For {
                        var: var.clone(),
                        pos: pos.clone(),
                        source: fold_expr(engine, source),
                    },
                    FlworClause::Let { var, ty, value } => FlworClause::Let {
                        var: var.clone(),
                        ty: ty.clone(),
                        value: fold_expr(engine, value),
                    },
                    FlworClause::Where(w) => FlworClause::Where(fold_expr(engine, w)),
                    FlworClause::OrderBy(specs) => FlworClause::OrderBy(
                        specs
                            .iter()
                            .map(|s| OrderSpec {
                                key: fold_expr(engine, &s.key),
                                ..s.clone()
                            })
                            .collect(),
                    ),
                })
                .collect(),
            ret: fold_box(engine, ret),
        },
        Expr::Quantified { quantifier, bindings, satisfies } => Expr::Quantified {
            quantifier: *quantifier,
            bindings: bindings
                .iter()
                .map(|(v, s)| (v.clone(), fold_expr(engine, s)))
                .collect(),
            satisfies: fold_box(engine, satisfies),
        },
        Expr::Typeswitch { operand, cases } => Expr::Typeswitch {
            operand: fold_box(engine, operand),
            cases: cases
                .iter()
                .map(|c| TypeswitchCase {
                    body: fold_expr(engine, &c.body),
                    ..c.clone()
                })
                .collect(),
        },
        Expr::Path { start, steps } => Expr::Path {
            start: match start {
                PathStart::Expr(b) => PathStart::Expr(fold_box(engine, b)),
                other => other.clone(),
            },
            steps: fold_steps(engine, steps),
        },
        Expr::Filter { base, predicates } => Expr::Filter {
            base: fold_box(engine, base),
            predicates: predicates.iter().map(|p| fold_expr(engine, p)).collect(),
        },
        Expr::FunctionCall { name, args } => Expr::FunctionCall {
            name: name.clone(),
            args: args.iter().map(|a| fold_expr(engine, a)).collect(),
        },
        Expr::DirectElement(d) => {
            Expr::DirectElement(Box::new(fold_direct(engine, d)))
        }
        Expr::ComputedElement(n, content) => {
            Expr::ComputedElement(fold_name(engine, n), fold_opt_box(engine, content))
        }
        Expr::ComputedAttribute(n, content) => {
            Expr::ComputedAttribute(fold_name(engine, n), fold_opt_box(engine, content))
        }
        Expr::ComputedPi(n, content) => {
            Expr::ComputedPi(fold_name(engine, n), fold_opt_box(engine, content))
        }
        Expr::ComputedText(x) => Expr::ComputedText(fold_box(engine, x)),
        Expr::ComputedComment(x) => Expr::ComputedComment(fold_box(engine, x)),
        Expr::ComputedDocument(x) => Expr::ComputedDocument(fold_box(engine, x)),
        Expr::InstanceOf(x, ty) => Expr::InstanceOf(fold_box(engine, x), ty.clone()),
        Expr::TreatAs(x, ty) => Expr::TreatAs(fold_box(engine, x), ty.clone()),
        Expr::CastableAs(x, ty, opt) => {
            Expr::CastableAs(fold_box(engine, x), ty.clone(), *opt)
        }
        Expr::CastAs(x, ty, opt) => Expr::CastAs(fold_box(engine, x), ty.clone(), *opt),
        // Updating expressions: fold operands, keep structure.
        Expr::Insert { source, pos, target } => Expr::Insert {
            source: fold_box(engine, source),
            pos: *pos,
            target: fold_box(engine, target),
        },
        Expr::Delete(t) => Expr::Delete(fold_box(engine, t)),
        Expr::Replace { value_of, target, with } => Expr::Replace {
            value_of: *value_of,
            target: fold_box(engine, target),
            with: fold_box(engine, with),
        },
        Expr::Rename { target, new_name } => Expr::Rename {
            target: fold_box(engine, target),
            new_name: fold_box(engine, new_name),
        },
        Expr::Transform { copies, modify, ret } => Expr::Transform {
            copies: copies
                .iter()
                .map(|(v, x)| (v.clone(), fold_expr(engine, x)))
                .collect(),
            modify: fold_box(engine, modify),
            ret: fold_box(engine, ret),
        },
    }
}

/// Collect every statically known call site in an expression and
/// resolve it against the engine's registries. Builtins and unknown
/// names are skipped — dispatch for those stays dynamic (a later
/// `load` may still register them, and the evaluator reports
/// `XPST0017` at call time exactly as before).
pub fn resolve_bindings(
    engine: &Engine,
    e: &Expr,
) -> HashMap<(QName, usize), ResolvedBinding> {
    let mut out = HashMap::new();
    collect_calls(e, &mut |name, arity| {
        let key = (name.clone(), arity);
        if out.contains_key(&key) {
            return;
        }
        if let Some(f) = engine.function(name, arity) {
            out.insert(key, ResolvedBinding::Function(f));
        } else if let Some(p) = engine.procedure(name, arity) {
            out.insert(key, ResolvedBinding::Procedure(p));
        }
    });
    out
}

fn collect_calls(e: &Expr, f: &mut impl FnMut(&QName, usize)) {
    if let Expr::FunctionCall { name, args } = e {
        f(name, args.len());
    }
    each_child(e, &mut |child| collect_calls(child, f));
}

/// Visit each direct child expression of a node (structural walk used
/// by the binding collector).
fn each_child(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => {}
        Expr::Comma(v) => v.iter().for_each(&mut *f),
        Expr::Range(a, b)
        | Expr::Binary(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::General(_, a, b)
        | Expr::Value(_, a, b)
        | Expr::Node(_, a, b)
        | Expr::Set(_, a, b) => {
            f(a);
            f(b);
        }
        Expr::Unary(_, a)
        | Expr::ComputedText(a)
        | Expr::ComputedComment(a)
        | Expr::ComputedDocument(a)
        | Expr::Delete(a)
        | Expr::InstanceOf(a, _)
        | Expr::TreatAs(a, _)
        | Expr::CastableAs(a, _, _)
        | Expr::CastAs(a, _, _) => f(a),
        Expr::If(c, t, e2) => {
            f(c);
            f(t);
            f(e2);
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => f(source),
                    FlworClause::Let { value, .. } => f(value),
                    FlworClause::Where(w) => f(w),
                    FlworClause::OrderBy(specs) => specs.iter().for_each(|s| f(&s.key)),
                }
            }
            f(ret);
        }
        Expr::Quantified { bindings, satisfies, .. } => {
            bindings.iter().for_each(|(_, s)| f(s));
            f(satisfies);
        }
        Expr::Typeswitch { operand, cases } => {
            f(operand);
            cases.iter().for_each(|c| f(&c.body));
        }
        Expr::Path { start, steps } => {
            if let PathStart::Expr(b) = start {
                f(b);
            }
            steps.iter().for_each(|s| s.predicates.iter().for_each(&mut *f));
        }
        Expr::Filter { base, predicates } => {
            f(base);
            predicates.iter().for_each(&mut *f);
        }
        Expr::FunctionCall { args, .. } => args.iter().for_each(&mut *f),
        Expr::DirectElement(d) => each_direct_child(d, f),
        Expr::ComputedElement(n, content)
        | Expr::ComputedAttribute(n, content)
        | Expr::ComputedPi(n, content) => {
            if let NameExpr::Computed(x) = n {
                f(x);
            }
            if let Some(x) = content {
                f(x);
            }
        }
        Expr::Insert { source, target, .. } => {
            f(source);
            f(target);
        }
        Expr::Replace { target, with, .. } => {
            f(target);
            f(with);
        }
        Expr::Rename { target, new_name } => {
            f(target);
            f(new_name);
        }
        Expr::Transform { copies, modify, ret } => {
            copies.iter().for_each(|(_, x)| f(x));
            f(modify);
            f(ret);
        }
    }
}

fn each_direct_child(d: &DirectElement, f: &mut impl FnMut(&Expr)) {
    for (_, parts) in &d.attributes {
        for p in parts {
            if let AttrContent::Expr(e) = p {
                f(e);
            }
        }
    }
    for c in &d.content {
        match c {
            DirectContent::Expr(e) => f(e),
            DirectContent::Element(el) => each_direct_child(el, f),
            _ => {}
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use xdm::atomic::AtomicValue;
    use xqparser::parser::parse_expr;

    fn fold_src(src: &str) -> Expr {
        let engine = Engine::new();
        let e = parse_expr(src, &[]).unwrap();
        fold_expr(&engine, &e)
    }

    #[test]
    fn arithmetic_over_literals_folds() {
        assert_eq!(fold_src("1 + 2 * 3"), Expr::Literal(AtomicValue::Integer(7)));
    }

    #[test]
    fn comparisons_and_connectives_fold() {
        assert_eq!(
            fold_src("1 lt 2 and 3 eq 3"),
            Expr::Literal(AtomicValue::Boolean(true))
        );
    }

    #[test]
    fn folding_reaches_inside_composites() {
        // The branch arms fold even though the condition is dynamic.
        let folded = fold_src("if ($x) then 1 + 1 else 2 + 3");
        let Expr::If(_, t, f) = folded else { panic!("expected if") };
        assert_eq!(*t, Expr::Literal(AtomicValue::Integer(2)));
        assert_eq!(*f, Expr::Literal(AtomicValue::Integer(5)));
    }

    #[test]
    fn dynamic_errors_are_not_folded_away() {
        // 1 div 0 raises FOAR0001 at *run* time; folding must leave it.
        let folded = fold_src("if ($x) then 1 div 0 else 0");
        let Expr::If(_, t, _) = folded else { panic!("expected if") };
        assert!(matches!(*t, Expr::Binary(..)), "error expr left unfolded");
    }

    #[test]
    fn variables_block_folding() {
        let folded = fold_src("$x + 1");
        assert!(matches!(folded, Expr::Binary(..)));
    }

    #[test]
    fn sequences_fold_elementwise() {
        let folded = fold_src("(1 + 1, 2 + 2)");
        let Expr::Comma(items) = folded else { panic!("expected comma") };
        assert_eq!(items[0], Expr::Literal(AtomicValue::Integer(2)));
        assert_eq!(items[1], Expr::Literal(AtomicValue::Integer(4)));
    }

    #[test]
    fn bindings_resolve_against_registries() {
        use xdm::sequence::Sequence;
        let engine = Engine::new();
        engine.register_external_function(
            QName::with_ns("urn:s", "src"),
            0,
            std::rc::Rc::new(|_, _| Ok(Sequence::empty())),
        );
        let e = parse_expr("s:src() , unknown:fn(1)", &[("s", "urn:s"), ("unknown", "urn:u")])
            .unwrap();
        let resolved = resolve_bindings(&engine, &e);
        assert_eq!(resolved.len(), 1, "only the registered call resolves");
        assert!(resolved.contains_key(&(QName::with_ns("urn:s", "src"), 0)));
    }
}
