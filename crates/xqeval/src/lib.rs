//! # xqeval — the XQuery expression evaluator
//!
//! Dynamic evaluation of the [`xqparser`] AST over [`xdm`] values:
//!
//! - [`engine::Engine`] — the compilation/registration façade: load
//!   modules, register external functions and procedures (this is how
//!   ALDSP binds physical sources), then evaluate queries;
//! - [`context::Env`] — the dynamic context: variable scopes, focus
//!   (context item / position / size), the pending-update list slot,
//!   and the trace sink;
//! - [`functions`] — 90+ `fn:`/`xs:` builtins;
//! - [`update`] — XQuery Update Facility pending update lists with
//!   XUDY0017 conflict detection and ordered application;
//! - [`regex_lite`] — a self-contained backtracking regex engine for
//!   `fn:tokenize`, `fn:matches`, and `fn:replace`.
//!
//! The evaluator enforces the XQSE statement/expression boundary from
//! the paper: updating expressions are rejected (`XUST0001`) unless an
//! update statement has opened a pending-update list, and procedure
//! calls from expressions are permitted only for `readonly` procedures
//! (`XQSE0004`).

pub mod budget;
pub mod cache;
pub mod context;
pub mod engine;
pub mod eval;
pub mod fold;
pub mod functions;
pub mod regex_lite;
pub(crate) mod stream;
pub mod update;

pub use budget::{Budget, BudgetClock, BudgetExceeded};
pub use cache::Lru;
pub use context::Env;
pub use engine::{
    BatchFn, ColClass, Engine, ExternalFn, OptCounters, OptStats, PreparedQuery,
    ProcRunner, SourceCapability,
};
pub use eval::Evaluator;
pub use update::{Pul, Update};

#[cfg(test)]
mod tests;
