//! Expression evaluation.
//!
//! One method per AST form, with the two cross-cutting rules the paper
//! cares about wired through everything:
//!
//! 1. **No side effects in expressions** — updating expressions
//!    require an open pending-update list (`env.pul`), which only the
//!    XQSE update statement (or ALDSP's update machinery) provides;
//!    procedure calls resolve only if the procedure is `readonly`.
//! 2. **Declarative cores stay optimizable** — FLWOR join patterns are
//!    rewritten to hash probes with memoized indexes when the engine's
//!    optimizer flag is on (§IV: statements-vs-expressions separation
//!    "allowed us to easily preserve and apply existing query
//!    optimizations within the declarative parts of an XQSE program").

use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

use xdm::atomic::{to_f64, AtomicType, AtomicValue};
use xdm::decimal::Decimal;
use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::{NodeArena, NodeHandle, NodeKind, SharedArena};
use xdm::qname::{QName, FN_NS, XS_NS};
use xdm::sequence::{Item, Sequence};


use xqparser::ast::*;

use crate::context::{Env, Focus};
use crate::engine::{Engine, FunctionKind, ProcKind};
use crate::functions;
use crate::update::{Pul, Update};

/// The expression evaluator. Stateless besides the engine reference;
/// all dynamic state lives in [`Env`].
pub struct Evaluator<'e> {
    engine: &'e Engine,
}

/// A memoized join index: the materialized source sequence plus hash
/// maps honoring XQuery's typed equality semantics. Numeric keys live
/// in `by_num` (untyped values are indexed there too, flagged, because
/// untyped-vs-numeric comparison is numeric); string-ish keys live in
/// `by_str` (untyped values are indexed there as well, because
/// untyped-vs-string and untyped-vs-untyped comparison is stringy).
#[derive(Debug, Default)]
pub struct JoinIdx {
    by_num: HashMap<u64, Vec<(usize, bool)>>,
    by_str: HashMap<String, Vec<usize>>,
}

impl JoinIdx {
    fn num_key(d: f64) -> u64 {
        // Normalize -0.0 so 0 and -0 collide.
        (if d == 0.0 { 0.0f64 } else { d }).to_bits()
    }

    /// Index one value at offset `i`.
    fn insert(&mut self, v: &AtomicValue, i: usize) {
        match v {
            _ if v.type_of().is_numeric() => {
                if let Ok(d) = to_f64(v) {
                    if !d.is_nan() {
                        self.by_num.entry(Self::num_key(d)).or_default().push((i, true));
                    }
                }
            }
            AtomicValue::Untyped(s) => {
                self.by_str.entry(s.clone()).or_default().push(i);
                if let Ok(d) = s.trim().parse::<f64>() {
                    if !d.is_nan() {
                        self.by_num
                            .entry(Self::num_key(d))
                            .or_default()
                            .push((i, false));
                    }
                }
            }
            other => {
                self.by_str.entry(other.string_value()).or_default().push(i);
            }
        }
    }

    /// Offsets whose indexed value equals `p` under general-comparison
    /// semantics.
    fn probe(&self, p: &AtomicValue) -> Vec<usize> {
        match p {
            _ if p.type_of().is_numeric() => match to_f64(p) {
                Ok(d) if !d.is_nan() => self
                    .by_num
                    .get(&Self::num_key(d))
                    .map(|v| v.iter().map(|(i, _)| *i).collect())
                    .unwrap_or_default(),
                _ => Vec::new(),
            },
            AtomicValue::Untyped(s) => {
                let mut out: Vec<usize> =
                    self.by_str.get(s.as_str()).cloned().unwrap_or_default();
                if let Ok(d) = s.trim().parse::<f64>() {
                    if let Some(v) = self.by_num.get(&Self::num_key(d)) {
                        // Untyped vs *typed numeric* compares
                        // numerically; untyped vs untyped was already
                        // covered by the string probe.
                        out.extend(v.iter().filter(|(_, num)| *num).map(|(i, _)| *i));
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            other => self
                .by_str
                .get(&other.string_value())
                .cloned()
                .unwrap_or_default(),
        }
    }
}

/// How a memoized join-cache entry proves it is still current
/// (tentpole part 3: precise cross-statement cache retention).
pub enum CacheStamp {
    /// The source expression is opaque: the entry is valid only while
    /// the environment's write epoch is unchanged (any side-effecting
    /// statement kills it — the seed behavior, made lazy).
    Epoch(u64),
    /// The source is a capability-bearing read function: the entry is
    /// valid while the *live* table version still equals the version
    /// of the snapshot the index was built over. Statements that write
    /// other sources leave it untouched; a write to this source (or a
    /// stale snapshot served during an outage) fails revalidation.
    Source {
        /// Live-version probe (catalog metadata; cheap, never faulted).
        version_fn: Rc<dyn Fn() -> u64>,
        /// Version of the materialized snapshot.
        version: u64,
    },
}

impl CacheStamp {
    fn is_current(&self, env: &Env) -> bool {
        match self {
            CacheStamp::Epoch(e) => *e == env.write_epoch,
            CacheStamp::Source { version_fn, version } => version_fn() == *version,
        }
    }
}

/// The cache entry: materialized source + index + validity stamp.
pub struct JoinCacheEntry {
    /// The materialized source sequence.
    pub seq: Sequence,
    /// The hash index over the key path.
    pub idx: JoinIdx,
    /// Revalidation stamp.
    pub stamp: CacheStamp,
}

type JoinIndex = JoinCacheEntry;

impl<'e> Evaluator<'e> {
    /// Create an evaluator over an engine.
    pub fn new(engine: &'e Engine) -> Evaluator<'e> {
        Evaluator { engine }
    }

    /// Evaluate an expression, allowing a **lazy** result: an eligible
    /// top-level FLWOR chain comes back as a pull stream whose tuples
    /// are produced on demand (see `crate::stream`). This is the
    /// engine's streaming entry point (`Engine::eval_query_lazy`);
    /// callers must consume the result through the fallible Sequence
    /// API (`try_item` / `into_forced`) so deferred errors surface.
    pub fn eval_stream(&self, expr: &Expr, env: &mut Env) -> XdmResult<Sequence> {
        self.eval_lazy(expr, env)
    }

    /// Like [`Evaluator::eval`], but an eligible FLWOR chain is
    /// returned as a lazy sequence instead of being materialized.
    /// Everything else falls through to strict evaluation, so the
    /// result is lazy *only* for the one shape the stream understands
    /// — the invariant that `eval` itself never returns a lazy
    /// sequence is what keeps the legacy infallible accessors safe.
    pub(crate) fn eval_lazy(&self, expr: &Expr, env: &mut Env) -> XdmResult<Sequence> {
        if let Expr::Flwor { clauses, ret } = expr {
            if self.flwor_streamable(clauses, env) {
                // Mirror eval()'s per-step fuel charge for the
                // expression node itself; per-tuple charges follow as
                // the stream is pulled.
                self.engine.budget_step()?;
                return Ok(crate::stream::flwor_stream(self.engine, clauses, ret, env));
            }
        }
        self.eval(expr, env)
    }

    /// Can this clause chain run on the pull pipeline? Requires the
    /// lazy engine to be enabled, expression context (no open
    /// pending-update list), no `order by` (a sort is a full barrier),
    /// and that none of the eager rewrites (predicate pushdown,
    /// hash-join, batched source access) would claim a `for`/`where`
    /// pair — those skip work outright, which beats deferring it, and
    /// the kill switch must not change when they fire.
    fn flwor_streamable(&self, clauses: &[FlworClause], env: &Env) -> bool {
        if !self.engine.lazy_enabled() || env.pul.is_some() {
            return false;
        }
        for (i, c) in clauses.iter().enumerate() {
            match c {
                FlworClause::OrderBy(_) => return false,
                FlworClause::For { var, pos, source } => {
                    let next = clauses.get(i + 1);
                    if self.engine.optimize_enabled()
                        && pos.is_none()
                        && self.detect_pushdown(var, source, next).is_some()
                    {
                        return false;
                    }
                    if pos.is_none()
                        && self.engine.join_rewrite_enabled()
                        && self.detect_join(var, source, next).is_some()
                    {
                        return false;
                    }
                    if self.engine.optimize_enabled() && self.engine.batch_enabled() {
                        if let Expr::FunctionCall { name, args } = source {
                            if args.len() == 1
                                && self.engine.batchable(name, 1).is_some()
                            {
                                return false;
                            }
                        }
                    }
                }
                FlworClause::Let { .. } | FlworClause::Where(_) => {}
            }
        }
        true
    }

    /// Evaluate an expression to a sequence.
    pub fn eval(&self, expr: &Expr, env: &mut Env) -> XdmResult<Sequence> {
        // Per-request budget: one fuel unit per evaluation step. The
        // no-budget path is a single `Cell<bool>` read (see the
        // `budget_overhead_guard` in tests/chaos.rs).
        self.engine.budget_step()?;
        match expr {
            Expr::Literal(a) => Ok(Sequence::one(Item::Atomic(a.clone()))),
            Expr::VarRef(name) => match env.lookup(name) {
                Ok(v) => Ok(v),
                Err(e) if e.is(ErrorCode::XPST0008) => self
                    .engine
                    .global(name)
                    .ok_or(e),
                Err(e) => Err(e),
            },
            Expr::ContextItem => env
                .focus
                .as_ref()
                .map(|f| Sequence::one(f.item.clone()))
                .ok_or_else(|| {
                    XdmError::new(ErrorCode::XPDY0002, "context item is absent")
                }),
            Expr::Comma(items) => {
                let mut out = Sequence::empty();
                for e in items {
                    out.extend(self.eval(e, env)?);
                }
                Ok(out)
            }
            Expr::Range(lo, hi) => {
                let lo = self.eval_opt_integer(lo, env)?;
                let hi = self.eval_opt_integer(hi, env)?;
                match (lo, hi) {
                    (Some(a), Some(b)) if a <= b => {
                        Ok((a..=b).map(Item::integer).collect())
                    }
                    _ => Ok(Sequence::empty()),
                }
            }
            Expr::Binary(op, l, r) => self.eval_arith(*op, l, r, env),
            Expr::Unary(neg, e) => {
                let v = self.eval(e, env)?;
                let Some(a) = opt_one_atomic(&v, "unary")? else {
                    return Ok(Sequence::empty());
                };
                let a = coerce_numeric(a)?;
                if !neg {
                    return Ok(Sequence::one(Item::Atomic(a)));
                }
                Ok(Sequence::one(Item::Atomic(match a {
                    AtomicValue::Integer(i) => AtomicValue::Integer(
                        i.checked_neg().ok_or_else(overflow)?,
                    ),
                    AtomicValue::Decimal(d) => AtomicValue::Decimal(d.checked_neg()?),
                    AtomicValue::Double(d) => AtomicValue::Double(-d),
                    other => {
                        return Err(XdmError::new(
                            ErrorCode::XPTY0004,
                            format!("unary minus on {}", other.type_of()),
                        ))
                    }
                })))
            }
            Expr::And(l, r) => {
                let lb = self.eval(l, env)?.effective_boolean()?;
                if !lb {
                    return Ok(Sequence::one(Item::boolean(false)));
                }
                let rb = self.eval(r, env)?.effective_boolean()?;
                Ok(Sequence::one(Item::boolean(rb)))
            }
            Expr::Or(l, r) => {
                let lb = self.eval(l, env)?.effective_boolean()?;
                if lb {
                    return Ok(Sequence::one(Item::boolean(true)));
                }
                let rb = self.eval(r, env)?.effective_boolean()?;
                Ok(Sequence::one(Item::boolean(rb)))
            }
            Expr::General(op, l, r) => {
                if let Some(res) =
                    self.streaming_count_cmp(CountCmp::General(*op), l, r, env)
                {
                    return res;
                }
                let lv = self.eval(l, env)?.atomized();
                let rv = self.eval(r, env)?.atomized();
                let mut hit = false;
                'outer: for a in &lv {
                    for b in &rv {
                        if general_pair_matches(*op, a, b)? {
                            hit = true;
                            break 'outer;
                        }
                    }
                }
                Ok(Sequence::one(Item::boolean(hit)))
            }
            Expr::Value(op, l, r) => {
                if let Some(res) =
                    self.streaming_count_cmp(CountCmp::Value(*op), l, r, env)
                {
                    return res;
                }
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                let (Some(a), Some(b)) = (
                    opt_one_atomic(&lv, "value comparison")?,
                    opt_one_atomic(&rv, "value comparison")?,
                ) else {
                    return Ok(Sequence::empty());
                };
                let ord = a.value_compare(&b)?;
                let res = match ord {
                    None => false, // NaN
                    Some(o) => value_comp_holds(*op, o),
                };
                Ok(Sequence::one(Item::boolean(res)))
            }
            Expr::Node(op, l, r) => {
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                let (a, b) = match (lv.zero_or_one()?, rv.zero_or_one()?) {
                    (Some(a), Some(b)) => (a.clone(), b.clone()),
                    _ => return Ok(Sequence::empty()),
                };
                let (Item::Node(na), Item::Node(nb)) = (&a, &b) else {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "node comparison requires nodes",
                    ));
                };
                let res = match op {
                    NodeComp::Is => na == nb,
                    NodeComp::Precedes => na.document_order(nb) == Ordering::Less,
                    NodeComp::Follows => na.document_order(nb) == Ordering::Greater,
                };
                Ok(Sequence::one(Item::boolean(res)))
            }
            Expr::Set(op, l, r) => {
                let lv = self.eval(l, env)?.document_order_dedup()?;
                let rv = self.eval(r, env)?.document_order_dedup()?;
                let out: Vec<Item> = match op {
                    SetOp::Union => {
                        let mut v: Vec<Item> = lv.into_items();
                        v.extend(rv.into_items());
                        return Sequence::from_items(v).document_order_dedup();
                    }
                    SetOp::Intersect => lv
                        .items()
                        .iter()
                        .filter(|i| rv.items().contains(i))
                        .cloned()
                        .collect(),
                    SetOp::Except => lv
                        .items()
                        .iter()
                        .filter(|i| !rv.items().contains(i))
                        .cloned()
                        .collect(),
                };
                Ok(Sequence::from_items(out))
            }
            Expr::If(c, t, e) => {
                if self.eval(c, env)?.effective_boolean()? {
                    self.eval(t, env)
                } else {
                    self.eval(e, env)
                }
            }
            Expr::Flwor { clauses, ret } => self.eval_flwor(clauses, ret, env),
            Expr::Quantified { quantifier, bindings, satisfies } => {
                self.eval_quantified(*quantifier, bindings, satisfies, env)
            }
            Expr::Typeswitch { operand, cases } => {
                let v = self.eval(operand, env)?;
                for case in cases {
                    let matches = match &case.ty {
                        Some(ty) => ty.matches(&v),
                        None => true, // default
                    };
                    if matches {
                        env.push_scope();
                        if let Some(var) = &case.var {
                            env.bind(var.clone(), v.clone());
                        }
                        let out = self.eval(&case.body, env);
                        env.pop_scope();
                        return out;
                    }
                }
                Ok(Sequence::empty())
            }
            Expr::Path { start, steps } => self.eval_path(start, steps, env),
            Expr::Filter { base, predicates } => {
                if self.engine.lazy_enabled() {
                    if let Some((first, rest)) = predicates.split_first() {
                        if let Some(win) = positional_window(first) {
                            return self
                                .streaming_positional_filter(base, win, rest, env);
                        }
                    }
                }
                let mut seq = self.eval(base, env)?;
                for p in predicates {
                    seq = self.apply_predicate(seq, p, env)?;
                }
                Ok(seq)
            }
            Expr::FunctionCall { name, args } => {
                if let Some(r) = self.try_streaming_call(name, args, env) {
                    return r;
                }
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                self.call_function_inner(name, argv, env)
            }
            Expr::DirectElement(de) => {
                // XDM allocation ceiling: one admission unit up front,
                // then the built tree settles at its real cost — one
                // unit per node record allocated in the constructor's
                // arena plus one pointer unit per grafted subtree
                // (zero-copy adoption charges no per-node units; the
                // nodes it shares were charged when first built).
                self.engine.budget_charge_memory(1)?;
                let before = xdm::xdm_stats();
                let arena = NodeArena::new();
                let node = self.build_direct_element(de, &arena, env)?;
                self.settle_construction_memory(&arena, &before)?;
                Ok(Sequence::one(Item::Node(node)))
            }
            Expr::ComputedElement(name, content) => {
                self.engine.budget_charge_memory(1)?;
                let before = xdm::xdm_stats();
                let q = self.eval_name_expr(name, env, "element")?;
                let arena = NodeArena::new();
                let elem = NodeHandle::new_element(&arena, q);
                if let Some(c) = content {
                    let seq = self.eval(c, env)?;
                    assemble_content(&elem, &seq, self.engine.graft_enabled())?;
                }
                self.settle_construction_memory(&arena, &before)?;
                Ok(Sequence::one(Item::Node(elem)))
            }
            Expr::ComputedAttribute(name, content) => {
                self.engine.budget_charge_memory(1)?;
                let q = self.eval_name_expr(name, env, "attribute")?;
                let value = match content {
                    Some(c) => space_joined(&self.eval(c, env)?),
                    None => String::new(),
                };
                let arena = NodeArena::new();
                Ok(Sequence::one(Item::Node(NodeHandle::new_attribute(
                    &arena, q, value,
                ))))
            }
            Expr::ComputedText(c) => {
                self.engine.budget_charge_memory(1)?;
                let seq = self.eval(c, env)?;
                if seq.is_empty() {
                    return Ok(Sequence::empty());
                }
                let arena = NodeArena::new();
                Ok(Sequence::one(Item::Node(NodeHandle::new_text(
                    &arena,
                    space_joined(&seq),
                ))))
            }
            Expr::ComputedComment(c) => {
                let seq = self.eval(c, env)?;
                let arena = NodeArena::new();
                Ok(Sequence::one(Item::Node(NodeHandle::new_comment(
                    &arena,
                    space_joined(&seq),
                ))))
            }
            Expr::ComputedPi(name, content) => {
                let q = self.eval_name_expr(name, env, "processing-instruction")?;
                let value = match content {
                    Some(c) => space_joined(&self.eval(c, env)?),
                    None => String::new(),
                };
                let arena = NodeArena::new();
                Ok(Sequence::one(Item::Node(NodeHandle::new_pi(
                    &arena, q.local, value,
                ))))
            }
            Expr::ComputedDocument(c) => {
                let before = xdm::xdm_stats();
                let seq = self.eval(c, env)?;
                let doc = NodeHandle::new_document();
                assemble_content(&doc, &seq, self.engine.graft_enabled())?;
                self.settle_construction_memory(doc.arena(), &before)?;
                Ok(Sequence::one(Item::Node(doc)))
            }
            Expr::InstanceOf(e, ty) => {
                let v = self.eval(e, env)?;
                Ok(Sequence::one(Item::boolean(ty.matches(&v))))
            }
            Expr::TreatAs(e, ty) => {
                let v = self.eval(e, env)?;
                if ty.matches(&v) {
                    Ok(v)
                } else {
                    Err(XdmError::new(
                        ErrorCode::XPDY0050,
                        format!("treat as {ty}: dynamic type mismatch"),
                    ))
                }
            }
            Expr::CastAs(e, ty, optional) => {
                let v = self.eval(e, env)?;
                let target = resolve_atomic_type(ty)?;
                match opt_one_atomic(&v, "cast as")? {
                    None if *optional => Ok(Sequence::empty()),
                    None => Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "cast as: empty sequence without '?'",
                    )),
                    Some(a) => Ok(Sequence::one(Item::Atomic(a.cast_to(target)?))),
                }
            }
            Expr::CastableAs(e, ty, optional) => {
                let v = self.eval(e, env)?;
                let Ok(target) = resolve_atomic_type(ty) else {
                    return Ok(Sequence::one(Item::boolean(false)));
                };
                let ok = match opt_one_atomic(&v, "castable as") {
                    Ok(None) => *optional,
                    Ok(Some(a)) => a.cast_to(target).is_ok(),
                    Err(_) => false,
                };
                Ok(Sequence::one(Item::boolean(ok)))
            }
            Expr::Insert { source, pos, target } => {
                self.eval_insert(source, *pos, target, env)
            }
            Expr::Delete(target) => {
                let targets = self.eval(target, env)?;
                let pul = require_pul(env)?;
                for it in targets.iter() {
                    let Item::Node(n) = it else {
                        return Err(XdmError::new(
                            ErrorCode::XUTY0008,
                            "delete target must be nodes",
                        ));
                    };
                    let u = Update::Delete { target: n.clone() };
                    Pul::validate_target(&u)?;
                    pul.add(u)?;
                }
                Ok(Sequence::empty())
            }
            Expr::Replace { value_of, target, with } => {
                let t = self.eval(target, env)?;
                let w = self.eval(with, env)?;
                let Item::Node(node) = t.exactly_one()?.clone() else {
                    return Err(XdmError::new(
                        ErrorCode::XUTY0008,
                        "replace target must be a node",
                    ));
                };
                let u = if *value_of {
                    Update::ReplaceValue { target: node, value: space_joined(&w) }
                } else {
                    let (content, attrs) = content_nodes(&w, node.arena())?;
                    if !attrs.is_empty() {
                        if node.kind() != NodeKind::Attribute {
                            return Err(XdmError::new(
                                ErrorCode::XUTY0008,
                                "attribute replacement for non-attribute target",
                            ));
                        }
                        Update::ReplaceNode { target: node, with: attrs }
                    } else {
                        Update::ReplaceNode { target: node, with: content }
                    }
                };
                Pul::validate_target(&u)?;
                require_pul(env)?.add(u)?;
                Ok(Sequence::empty())
            }
            Expr::Rename { target, new_name } => {
                let t = self.eval(target, env)?;
                let n = self.eval(new_name, env)?;
                let Item::Node(node) = t.exactly_one()?.clone() else {
                    return Err(XdmError::new(
                        ErrorCode::XUTY0008,
                        "rename target must be a node",
                    ));
                };
                let name = match one_atomic(&n, "rename")? {
                    AtomicValue::QName(q) => q,
                    other => QName::parse_lexical(&other.string_value()).ok_or_else(
                        || {
                            XdmError::new(
                                ErrorCode::FORG0001,
                                format!("bad QName {:?}", other.string_value()),
                            )
                        },
                    )?,
                };
                let u = Update::Rename { target: node, name };
                Pul::validate_target(&u)?;
                require_pul(env)?.add(u)?;
                Ok(Sequence::empty())
            }
            Expr::Transform { copies, modify, ret } => {
                env.push_scope();
                let result = (|| {
                    for (var, src) in copies {
                        let v = self.eval(src, env)?;
                        let Item::Node(n) = v.exactly_one()? else {
                            return Err(XdmError::new(
                                ErrorCode::XUTY0008,
                                "copy binding must be a single node",
                            ));
                        };
                        let copy = n.deep_copy();
                        env.bind(var.clone(), Sequence::one(Item::Node(copy)));
                    }
                    // Open a nested PUL for the modify clause, apply at
                    // the end of the clause (transform snapshot).
                    let saved = env.pul.take();
                    env.pul = Some(Pul::new());
                    let modify_result = self.eval(modify, env);
                    let pul = env.pul.take().expect("pul still open");
                    env.pul = saved;
                    modify_result?;
                    pul.apply()?;
                    self.eval(ret, env)
                })();
                env.pop_scope();
                result
            }
        }
    }

    fn eval_insert(
        &self,
        source: &Expr,
        pos: InsertPos,
        target: &Expr,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let src = self.eval(source, env)?;
        let tgt = self.eval(target, env)?;
        let Item::Node(node) = tgt.exactly_one()?.clone() else {
            return Err(XdmError::new(
                ErrorCode::XUTY0008,
                "insert target must be a node",
            ));
        };
        let (content, attrs) = content_nodes(&src, node.arena())?;
        let pul = require_pul(env)?;
        if !attrs.is_empty() {
            let elem_target = match pos {
                InsertPos::Into | InsertPos::FirstInto | InsertPos::LastInto => {
                    node.clone()
                }
                InsertPos::Before | InsertPos::After => {
                    node.parent().ok_or_else(|| {
                        XdmError::new(ErrorCode::XUTY0008, "target has no parent")
                    })?
                }
            };
            let u = Update::InsertAttributes { target: elem_target, attrs };
            Pul::validate_target(&u)?;
            pul.add(u)?;
        }
        if !content.is_empty() {
            let u = match pos {
                InsertPos::Into | InsertPos::LastInto => {
                    Update::InsertInto { target: node, content }
                }
                InsertPos::FirstInto => Update::InsertFirst { target: node, content },
                InsertPos::Before => Update::InsertBefore { target: node, content },
                InsertPos::After => Update::InsertAfter { target: node, content },
            };
            Pul::validate_target(&u)?;
            pul.add(u)?;
        }
        Ok(Sequence::empty())
    }

    // ------------------------------------------------------------ FLWOR

    fn eval_flwor(
        &self,
        clauses: &[FlworClause],
        ret: &Expr,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        // A "tuple" is a set of variable bindings produced by the
        // clause pipeline.
        type Tuple = Vec<(QName, Sequence)>;
        let mut tuples: Vec<Tuple> = vec![Vec::new()];

        let with_tuple = |this: &Self,
                          env: &mut Env,
                          tuple: &Tuple,
                          e: &Expr|
         -> XdmResult<Sequence> {
            env.push_scope();
            for (n, v) in tuple {
                env.bind(n.clone(), v.clone());
            }
            let out = this.eval(e, env);
            env.pop_scope();
            out
        };

        let mut i = 0usize;
        while i < clauses.len() {
            match &clauses[i] {
                FlworClause::For { var, pos, source } => {
                    // Predicate pushdown (§II.B "push computation to
                    // the sources"): `for $v in src() where $v/COL eq K`
                    // over a capability-bearing source becomes one
                    // indexed point-select per outer tuple — the whole
                    // table is never materialized in the middle tier.
                    if self.engine.optimize_enabled() && pos.is_none() {
                        if let Some(pd) =
                            self.detect_pushdown(var, source, clauses.get(i + 1))
                        {
                            // Every outer key must be a pushable
                            // singleton; otherwise the rewrite is
                            // abandoned wholesale so normal evaluation
                            // preserves error semantics exactly.
                            let mut keys: Vec<(AtomicValue, String)> =
                                Vec::with_capacity(tuples.len());
                            let mut pushable = true;
                            for tuple in &tuples {
                                let k = with_tuple(self, env, tuple, pd.key_expr)?;
                                let atoms = k.atomized();
                                let lex = match &atoms[..] {
                                    [a] => pushdown_key(pd.class, a),
                                    _ => None,
                                };
                                match lex {
                                    Some(lex) => {
                                        let a = atoms
                                            .into_iter()
                                            .next()
                                            .expect("singleton checked");
                                        keys.push((a, lex));
                                    }
                                    None => {
                                        pushable = false;
                                        break;
                                    }
                                }
                            }
                            if pushable {
                                let opt = self.engine.opt_counters();
                                crate::engine::OptCounters::bump(
                                    &opt.pushdown_rewrites,
                                );
                                let mut next = Vec::new();
                                for (tuple, (key_atom, lex)) in
                                    tuples.iter().zip(&keys)
                                {
                                    let candidates =
                                        (pd.cap.select)(env, &pd.col, lex)?;
                                    for item in candidates.iter() {
                                        // Re-verify each candidate under
                                        // XQuery comparison semantics:
                                        // the index may only narrow,
                                        // never decide.
                                        let keyed = self.eval_steps_from(
                                            item.clone(),
                                            &pd.key_steps,
                                            env,
                                        )?;
                                        let mut hit = false;
                                        for a in keyed.atomized().iter() {
                                            if general_pair_matches(
                                                GeneralComp::Eq,
                                                a,
                                                key_atom,
                                            )? {
                                                hit = true;
                                                break;
                                            }
                                        }
                                        if hit {
                                            let mut t = tuple.clone();
                                            t.push((
                                                var.clone(),
                                                Sequence::one(item.clone()),
                                            ));
                                            next.push(t);
                                        }
                                    }
                                }
                                tuples = next;
                                i += 2; // consumed the Where too
                                continue;
                            }
                        }
                    }
                    // Hash-join rewrite: `for $v in E where key($v) eq K`
                    // with E independent of all in-scope variables.
                    // Gated on `join_rewrite_enabled`, NOT on
                    // `optimize_enabled`: the rewrite predates the
                    // pushdown/versioning layer, and the kill-switch
                    // must restore exactly that baseline. (With
                    // optimization off, entries are epoch-stamped
                    // below, so invalidation is the baseline's blanket
                    // any-write policy.) Sequential XQueryP runs and
                    // the E11 ablation turn the rewrite itself off via
                    // `Engine::set_join_rewrite(false)`.
                    let join = if pos.is_none()
                        && self.engine.join_rewrite_enabled()
                    {
                        self.detect_join(var, source, clauses.get(i + 1))
                    } else {
                        None
                    };
                    if let Some((key_steps, outer_key_expr)) = join {
                        let index =
                            self.join_index(source, &key_steps, env)?;
                        let mut next = Vec::new();
                        for tuple in &tuples {
                            let k =
                                with_tuple(self, env, tuple, outer_key_expr)?;
                            let atoms = k.atomized();
                            if atoms.len() != 1 {
                                continue;
                            }
                            for idx in index.idx.probe(&atoms[0]) {
                                let mut t = tuple.clone();
                                t.push((
                                    var.clone(),
                                    Sequence::one(index.seq.items()[idx].clone()),
                                ));
                                next.push(t);
                            }
                        }
                        tuples = next;
                        i += 2; // consumed the Where too
                        continue;
                    }
                    // Batched source access: a for-clause whose source
                    // calls a *batchable* function (web-service
                    // operations) is not issued per tuple. The request
                    // expression is evaluated for every pending tuple
                    // first, then the calls are flushed through the
                    // source's batch entry point in one coalesced
                    // round trip at the iteration boundary. A
                    // loop-invariant call (request references no
                    // variables) is hoisted and issued once. Requests
                    // are flushed in tuple order, so the first failing
                    // request surfaces exactly the error sequential
                    // evaluation would have raised. Because request
                    // *expressions* are all evaluated before any call
                    // is issued, a later tuple whose request
                    // expression itself raises aborts the whole flush
                    // before the first source call — sequential
                    // evaluation would have performed (and counted,
                    // and breaker/injector-accounted) the earlier
                    // tuples' calls first. The final value and error
                    // are identical either way; only handler side
                    // effects, ws_* counters, and resilience
                    // accounting for those never-issued calls differ.
                    if pos.is_none()
                        && !tuples.is_empty()
                        && self.engine.optimize_enabled()
                        && self.engine.batch_enabled()
                    {
                        if let Expr::FunctionCall { name, args } = source {
                            if args.len() == 1 {
                                if let Some(batch) =
                                    self.engine.batchable(name, 1)
                                {
                                    let mut next = Vec::new();
                                    if tuples.len() > 1
                                        && !expr_refs_any_var(&args[0])
                                    {
                                        // Hoisted: one request serves
                                        // every tuple.
                                        let req = self.eval(&args[0], env)?;
                                        let resp = batch(env, &[req])?
                                            .into_iter()
                                            .next()
                                            .unwrap_or_else(Sequence::empty);
                                        for tuple in &tuples {
                                            for item in resp.iter() {
                                                let mut t = tuple.clone();
                                                t.push((
                                                    var.clone(),
                                                    Sequence::one(item.clone()),
                                                ));
                                                next.push(t);
                                            }
                                        }
                                    } else {
                                        let mut requests =
                                            Vec::with_capacity(tuples.len());
                                        for tuple in &tuples {
                                            requests.push(with_tuple(
                                                self, env, tuple, &args[0],
                                            )?);
                                        }
                                        let responses = batch(env, &requests)?;
                                        for (tuple, resp) in
                                            tuples.iter().zip(responses)
                                        {
                                            for item in resp.iter() {
                                                let mut t = tuple.clone();
                                                t.push((
                                                    var.clone(),
                                                    Sequence::one(item.clone()),
                                                ));
                                                next.push(t);
                                            }
                                        }
                                    }
                                    tuples = next;
                                    i += 1;
                                    continue;
                                }
                            }
                        }
                    }
                    let mut next = Vec::new();
                    for tuple in &tuples {
                        let seq = with_tuple(self, env, tuple, source)?;
                        for (n, item) in seq.iter().enumerate() {
                            let mut t = tuple.clone();
                            t.push((var.clone(), Sequence::one(item.clone())));
                            if let Some(p) = pos {
                                t.push((
                                    p.clone(),
                                    Sequence::one(Item::integer(n as i64 + 1)),
                                ));
                            }
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                FlworClause::Let { var, ty, value } => {
                    for tuple in &mut tuples {
                        let v = {
                            env.push_scope();
                            for (n, val) in tuple.iter() {
                                env.bind(n.clone(), val.clone());
                            }
                            let out = self.eval(value, env);
                            env.pop_scope();
                            out?
                        };
                        if let Some(ty) = ty {
                            ty.check(&v, &format!("let ${var}"))?;
                        }
                        tuple.push((var.clone(), v));
                    }
                }
                FlworClause::Where(cond) => {
                    let mut kept = Vec::new();
                    for tuple in tuples {
                        let b = with_tuple(self, env, &tuple, cond)?
                            .effective_boolean()?;
                        if b {
                            kept.push(tuple);
                        }
                    }
                    tuples = kept;
                }
                FlworClause::OrderBy(specs) => {
                    // Compute keys per tuple, then stable sort through
                    // the one shared sorter (error capture included).
                    let mut keyed: Vec<(Vec<Option<AtomicValue>>, Tuple)> =
                        Vec::with_capacity(tuples.len());
                    for tuple in tuples {
                        let mut keys = Vec::with_capacity(specs.len());
                        for spec in specs {
                            let k = with_tuple(self, env, &tuple, &spec.key)?;
                            keys.push(opt_one_atomic(&k, "order by")?);
                        }
                        keyed.push((keys, tuple));
                    }
                    tuples = order_by_sort(keyed, specs)?;
                }
            }
            i += 1;
        }
        let mut out = Sequence::empty();
        for tuple in &tuples {
            out.extend(with_tuple(self, env, tuple, ret)?);
        }
        Ok(out)
    }

    /// Detect the equi-join pattern `for $v in E where P($v) eq K`
    /// where `E` and `K` are independent of `$v` and `P` is a simple
    /// child/attribute path on `$v`. Returns the key steps and the
    /// outer key expression.
    fn detect_join<'a>(
        &self,
        var: &QName,
        source: &Expr,
        next: Option<&'a FlworClause>,
    ) -> Option<(Vec<Step>, &'a Expr)> {
        let FlworClause::Where(cond) = next? else { return None };
        // Source must be a closed expression (no variable references)
        // so its index can be memoized across outer iterations.
        if expr_refs_any_var(source) {
            return None;
        }
        let (l, r) = match cond {
            Expr::Value(ValueComp::Eq, l, r) => (&**l, &**r),
            Expr::General(GeneralComp::Eq, l, r) => (&**l, &**r),
            _ => return None,
        };
        let key_of = |e: &Expr| -> Option<Vec<Step>> {
            if let Expr::Path { start: PathStart::Expr(base), steps } = e {
                if let Expr::VarRef(v) = &**base {
                    if v == var
                        && steps.iter().all(|s| {
                            matches!(s.axis, Axis::Child | Axis::Attribute)
                                && s.predicates.is_empty()
                        })
                    {
                        return Some(steps.clone());
                    }
                }
            }
            None
        };
        if let Some(steps) = key_of(l) {
            if !expr_refs_var(r, var) {
                return Some((steps, r));
            }
        }
        if let Some(steps) = key_of(r) {
            if !expr_refs_var(l, var) {
                return Some((steps, l));
            }
        }
        None
    }

    /// Detect the *pushdown* pattern `for $v in src() where $v/COL
    /// (eq|=) K` where `src` is an arity-0 read function with an
    /// advertised [`SourceCapability`], `COL` is one of its filterable
    /// columns (single child step, no predicates, unqualified name —
    /// the shape of relational row XML), and `K` does not reference
    /// `$v`.
    fn detect_pushdown<'a>(
        &self,
        var: &QName,
        source: &Expr,
        next: Option<&'a FlworClause>,
    ) -> Option<Pushdown<'a>> {
        let Expr::FunctionCall { name, args } = source else { return None };
        if !args.is_empty() {
            return None;
        }
        let cap = self.engine.source_capability(name)?;
        let FlworClause::Where(cond) = next? else { return None };
        let (l, r) = match cond {
            Expr::Value(ValueComp::Eq, l, r) => (&**l, &**r),
            Expr::General(GeneralComp::Eq, l, r) => (&**l, &**r),
            _ => return None,
        };
        let col_of = |e: &Expr| -> Option<(String, Vec<Step>)> {
            let Expr::Path { start: PathStart::Expr(base), steps } = e else {
                return None;
            };
            let Expr::VarRef(v) = &**base else { return None };
            if v != var || steps.len() != 1 {
                return None;
            }
            let st = &steps[0];
            if st.axis != Axis::Child || !st.predicates.is_empty() {
                return None;
            }
            let NodeTest::Name(q) = &st.test else { return None };
            if q.ns.is_some() {
                return None;
            }
            Some((q.local.to_string(), steps.clone()))
        };
        let build = |col: String, steps: Vec<Step>, key: &'a Expr| -> Option<Pushdown<'a>> {
            if expr_refs_var(key, var) {
                return None;
            }
            let class = cap
                .columns
                .iter()
                .find(|(c, _)| c == &col)
                .map(|(_, cl)| *cl)?;
            Some(Pushdown { cap: cap.clone(), col, class, key_steps: steps, key_expr: key })
        };
        if let Some((col, steps)) = col_of(l) {
            if let Some(pd) = build(col, steps, r) {
                return Some(pd);
            }
        }
        if let Some((col, steps)) = col_of(r) {
            if let Some(pd) = build(col, steps, l) {
                return Some(pd);
            }
        }
        None
    }

    /// Build (or fetch from the per-evaluation cache) a hash index
    /// over the join source keyed by the key path. Cached entries are
    /// revalidated against their [`CacheStamp`]; stale entries are
    /// discarded and rebuilt.
    fn join_index(
        &self,
        source: &Expr,
        key_steps: &[Step],
        env: &mut Env,
    ) -> XdmResult<Rc<JoinIndex>> {
        let opt = self.engine.opt_counters();
        let cache_key = (source as *const Expr as usize, steps_fingerprint(key_steps));
        if let Some(hit) = env_join_cache(env).get(&cache_key).cloned() {
            if hit.stamp.is_current(env) {
                crate::engine::OptCounters::bump(&opt.join_hits);
                return Ok(hit);
            }
            crate::engine::OptCounters::bump(&opt.join_invalidations);
            env_join_cache(env).remove(&cache_key);
        }
        crate::engine::OptCounters::bump(&opt.join_misses);
        // Capability-bearing arity-0 read functions get a precise
        // source-version stamp; anything else falls back to the
        // write-epoch stamp. With the optimizer off, *everything* is
        // epoch-stamped — any write then invalidates, which is the
        // baseline's blanket policy.
        let cap = if self.engine.optimize_enabled() {
            match source {
                Expr::FunctionCall { name, args } if args.is_empty() => {
                    self.engine.source_capability(name)
                }
                _ => None,
            }
        } else {
            None
        };
        let seq = self.eval(source, env)?;
        let stamp = match cap {
            // Stamp with the version of the snapshot actually served
            // (under stale-read degradation this is older than the
            // live version, so the entry immediately fails
            // revalidation — stale data is never retained).
            Some(c) => CacheStamp::Source {
                version: (c.served_version)(),
                version_fn: c.version.clone(),
            },
            None => CacheStamp::Epoch(env.write_epoch),
        };
        let mut index = JoinIdx::default();
        for (i, item) in seq.iter().enumerate() {
            if let Item::Node(_) = item {
                let keyed = self.eval_steps_from(item.clone(), key_steps, env)?;
                let atoms = keyed.atomized();
                if atoms.len() == 1 {
                    index.insert(&atoms[0], i);
                }
            }
        }
        let entry = Rc::new(JoinCacheEntry { seq, idx: index, stamp });
        // Cached entries must be fully materialized: `eval` never
        // returns a lazy sequence (the §11 choke-point invariant), so
        // a stream can never be stored — and later replayed with its
        // pull state half-consumed — through this cache.
        debug_assert!(!entry.seq.is_lazy(), "join cache must not hold lazy sequences");
        env_join_cache(env).insert(cache_key, entry.clone());
        Ok(entry)
    }

    fn eval_quantified(
        &self,
        quantifier: Quantifier,
        bindings: &[(QName, Expr)],
        satisfies: &Expr,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        fn walk(
            this: &Evaluator<'_>,
            bindings: &[(QName, Expr)],
            satisfies: &Expr,
            env: &mut Env,
            every: bool,
        ) -> XdmResult<bool> {
            match bindings.split_first() {
                None => this.eval(satisfies, env)?.effective_boolean(),
                Some(((var, src), rest)) => {
                    // Bindings are pulled one item at a time so the
                    // quantifier's short-circuit stops a lazy source
                    // mid-stream; on an eager source `try_item` is
                    // plain slice access and this is the old loop.
                    let seq = this.eval_lazy(src, env)?;
                    let mut i = 0usize;
                    while let Some(item) = seq.try_item(i)? {
                        env.push_scope();
                        env.bind(var.clone(), Sequence::one(item));
                        let r = walk(this, rest, satisfies, env, every);
                        env.pop_scope();
                        let r = r?;
                        if r != every {
                            // some: found true → short-circuit true;
                            // every: found false → short-circuit false.
                            return Ok(!every);
                        }
                        i += 1;
                    }
                    Ok(every)
                }
            }
        }
        let every = quantifier == Quantifier::Every;
        let out = walk(self, bindings, satisfies, env, every)?;
        Ok(Sequence::one(Item::boolean(out)))
    }

    // ------------------------------------------------------------- paths

    fn eval_path(
        &self,
        start: &PathStart,
        steps: &[Step],
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let input = match start {
            PathStart::Root | PathStart::RootDescendant => {
                let f = env.focus.as_ref().ok_or_else(|| {
                    XdmError::new(ErrorCode::XPDY0002, "no context item for '/'")
                })?;
                let Item::Node(n) = &f.item else {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "context item for '/' is not a node",
                    ));
                };
                Sequence::one(Item::Node(n.root()))
            }
            PathStart::Expr(e) => self.eval(e, env)?,
        };
        if steps.is_empty() {
            return input.document_order_dedup();
        }
        let mut current = input;
        for step in steps {
            let mut out: Vec<Item> = Vec::new();
            for item in current.iter() {
                let Item::Node(node) = item else {
                    return Err(XdmError::new(
                        ErrorCode::XPTY0004,
                        "path step applied to an atomic value",
                    ));
                };
                let candidates = axis_nodes(node, step.axis);
                let mut matched: Vec<NodeHandle> = candidates
                    .into_iter()
                    .filter(|n| node_test_matches(&step.test, n, step.axis))
                    .collect();
                for pred in &step.predicates {
                    matched = self.filter_nodes(matched, pred, env)?;
                }
                out.extend(matched.into_iter().map(Item::Node));
            }
            current = Sequence::from_items(out).document_order_dedup()?;
        }
        Ok(current)
    }

    /// Evaluate a pre-parsed step list from a single origin item (used
    /// by the join-index builder).
    fn eval_steps_from(
        &self,
        origin: Item,
        steps: &[Step],
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let start = PathStart::Expr(Box::new(Expr::ContextItem));
        env.with_focus(Focus { item: origin, position: 1, size: 1 }, |env| {
            self.eval_path(&start, steps, env)
        })
    }

    fn filter_nodes(
        &self,
        nodes: Vec<NodeHandle>,
        pred: &Expr,
        env: &mut Env,
    ) -> XdmResult<Vec<NodeHandle>> {
        let size = nodes.len();
        let mut out = Vec::new();
        for (i, n) in nodes.into_iter().enumerate() {
            let keep = env.with_focus(
                Focus { item: Item::Node(n.clone()), position: i + 1, size },
                |env| {
                    let v = self.eval(pred, env)?;
                    predicate_truth(&v, i + 1)
                },
            )?;
            if keep {
                out.push(n);
            }
        }
        Ok(out)
    }

    fn apply_predicate(
        &self,
        seq: Sequence,
        pred: &Expr,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let size = seq.len();
        let mut out = Vec::new();
        for (i, item) in seq.into_iter().enumerate() {
            let keep = env.with_focus(
                Focus { item: item.clone(), position: i + 1, size },
                |env| {
                    let v = self.eval(pred, env)?;
                    predicate_truth(&v, i + 1)
                },
            )?;
            if keep {
                out.push(item);
            }
        }
        Ok(Sequence::from_items(out))
    }

    // ------------------------------------------- early-exit consumers
    //
    // The interceptors below recognize consumers whose answer is
    // decided by a bounded prefix of their sequence argument, evaluate
    // that argument through `eval_lazy`, and pull only as far as the
    // answer requires. On an eager argument `try_item` is plain slice
    // access, so the rewrites are value-equivalent both kill-switch
    // ways; they are still gated on `lazy_enabled` so the kill switch
    // restores the strict evaluation order exactly. Documented
    // deviation (DESIGN §11): work past the early exit — including
    // error-raising expressions — is never performed, and window/bound
    // operands are evaluated before the sequence operand.

    /// Intercept `fn:exists`/`fn:empty` (one pull decides) and
    /// `fn:subsequence` (pulls stop at the window's end). `None` means
    /// "not intercepted — evaluate the call normally".
    fn try_streaming_call(
        &self,
        name: &QName,
        args: &[Expr],
        env: &mut Env,
    ) -> Option<XdmResult<Sequence>> {
        if !self.engine.lazy_enabled() || name.ns.as_deref() != Some(FN_NS) {
            return None;
        }
        // `call_function_inner` consults builtins before user
        // registries, so a `fn:`-namespace match here can never shadow
        // a user function.
        match (&*name.local, args.len()) {
            ("exists", 1) => Some((|| {
                let s = self.eval_lazy(&args[0], env)?;
                Ok(Sequence::one(Item::boolean(!s.try_is_empty()?)))
            })()),
            ("empty", 1) => Some((|| {
                let s = self.eval_lazy(&args[0], env)?;
                Ok(Sequence::one(Item::boolean(s.try_is_empty()?)))
            })()),
            ("subsequence", 2) | ("subsequence", 3) => {
                Some(self.streaming_subsequence(args, env))
            }
            _ => None,
        }
    }

    /// `fn:subsequence` over a pull stream: replicate the builtin's
    /// window arithmetic (`round()`ed start/length, keep positions
    /// `p >= start && p < start + len`) but stop pulling at the end of
    /// the window — a page over a large chain touches only the tuples
    /// up to the page's edge.
    fn streaming_subsequence(&self, args: &[Expr], env: &mut Env) -> XdmResult<Sequence> {
        let start = functions::one_double(&self.eval(&args[1], env)?, "fn:subsequence")?
            .round();
        let len = if args.len() == 3 {
            functions::one_double(&self.eval(&args[2], env)?, "fn:subsequence")?.round()
        } else {
            f64::INFINITY
        };
        let s = self.eval_lazy(&args[0], env)?;
        let end = start + len; // NaN bounds close the window immediately
        let mut out = Vec::new();
        let mut i = 0usize;
        loop {
            let p = i as f64 + 1.0;
            // Stop unless strictly inside the window: `p >= end`, or a
            // NaN bound (incomparable), both close it.
            if p.partial_cmp(&end) != Some(std::cmp::Ordering::Less) {
                break;
            }
            match s.try_item(i)? {
                Some(item) => {
                    if p >= start {
                        out.push(item);
                    }
                }
                None => break,
            }
            i += 1;
        }
        Ok(Sequence::from_items(out))
    }

    /// Intercept `count($x) <op> N` (numeric literal on either side):
    /// pulling `floor(N) + 2` items decides every comparison against
    /// `N`, so the chain is never drained past that cutoff.
    fn streaming_count_cmp(
        &self,
        cmp: CountCmp,
        l: &Expr,
        r: &Expr,
        env: &mut Env,
    ) -> Option<XdmResult<Sequence>> {
        if !self.engine.lazy_enabled() {
            return None;
        }
        fn counted_arg(e: &Expr) -> Option<&Expr> {
            let Expr::FunctionCall { name, args } = e else { return None };
            if name.ns.as_deref() == Some(FN_NS)
                && name.local == "count"
                && args.len() == 1
            {
                Some(&args[0])
            } else {
                None
            }
        }
        let (counted, bound, count_on_left) = match (counted_arg(l), counted_arg(r)) {
            (Some(x), _) => (x, numeric_literal(r)?, true),
            (_, Some(x)) => (x, numeric_literal(l)?, false),
            _ => return None,
        };
        let b = to_f64(&bound).ok()?;
        if !b.is_finite() {
            return None;
        }
        Some((|| {
            let s = self.eval_lazy(counted, env)?;
            let cutoff = b.max(0.0).floor() as usize + 2;
            let mut n = 0usize;
            let exact = loop {
                if n == cutoff {
                    break false; // at least `cutoff` items: count > b
                }
                if s.try_item(n)?.is_none() {
                    break true;
                }
                n += 1;
            };
            let res = if exact {
                let count = AtomicValue::Integer(n as i64);
                let (a, bv) =
                    if count_on_left { (&count, &bound) } else { (&bound, &count) };
                match cmp {
                    CountCmp::General(op) => general_pair_matches(op, a, bv)?,
                    CountCmp::Value(op) => match a.value_compare(bv)? {
                        None => false,
                        Some(o) => value_comp_holds(op, o),
                    },
                }
            } else {
                // Cutoff reached: the count exceeds the bound, which
                // fixes the operand ordering without knowing the count.
                let o = if count_on_left {
                    Ordering::Greater
                } else {
                    Ordering::Less
                };
                match cmp {
                    CountCmp::General(op) => general_comp_holds(op, o),
                    CountCmp::Value(op) => value_comp_holds(op, o),
                }
            };
            Ok(Sequence::one(Item::boolean(res)))
        })())
    }

    /// A positional first predicate (`[k]`, `[position() lt N]`, …)
    /// over a pull stream: produce the selected prefix/slot directly,
    /// pulling no further than the window's edge, then apply any
    /// remaining predicates normally.
    fn streaming_positional_filter(
        &self,
        base: &Expr,
        win: PosWindow,
        rest: &[Expr],
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let s = self.eval_lazy(base, env)?;
        let mut out: Vec<Item> = Vec::new();
        match win {
            PosWindow::Exact(k) => {
                // Only an integral position ≥ 1 can match; any other
                // numeric selects nothing from any sequence.
                if k >= 1.0 && k.fract() == 0.0 && k <= u32::MAX as f64 {
                    if let Some(item) = s.try_item(k as usize - 1)? {
                        out.push(item);
                    }
                }
            }
            PosWindow::UpTo { bound, inclusive } => {
                let mut i = 0usize;
                loop {
                    let p = i as f64 + 1.0;
                    let keep = if inclusive { p <= bound } else { p < bound };
                    if !keep {
                        break;
                    }
                    match s.try_item(i)? {
                        Some(item) => out.push(item),
                        None => break,
                    }
                    i += 1;
                }
            }
        }
        let mut seq = Sequence::from_items(out);
        for p in rest {
            seq = self.apply_predicate(seq, p, env)?;
        }
        Ok(seq)
    }

    // -------------------------------------------------------- functions

    /// Public entry: call a function/procedure with pre-evaluated
    /// arguments.
    pub fn call_function(
        &self,
        name: &QName,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        self.call_function_inner(name, args, env)
    }

    fn call_function_inner(
        &self,
        name: &QName,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        // 1. Builtins.
        if let Some(r) = functions::dispatch(self.engine, env, name, args.clone()) {
            return r;
        }
        // 2. Registered functions.
        if let Some(f) = self.engine.function(name, args.len()) {
            return match f {
                FunctionKind::User(decl) => self.call_user_function(&decl, args, env),
                FunctionKind::External { f, updating } => {
                    if updating && env.pul.is_none() {
                        return Err(XdmError::new(
                            ErrorCode::XUST0001,
                            format!("updating function {name} called outside an update statement"),
                        ));
                    }
                    f(env, args)
                }
            };
        }
        // 3. Procedures — only readonly ones may be called from
        //    expression context (§III.A: "Procedure calls cannot be
        //    used in place of function calls in an XQuery expression
        //    unless the called procedure is annotated as having no
        //    side effects").
        if let Some(p) = self.engine.procedure(name, args.len()) {
            return match p {
                ProcKind::External { f, readonly } => {
                    if !readonly {
                        Err(XdmError::new(
                            ErrorCode::XQSE0004,
                            format!(
                                "procedure {name} has side effects and cannot be \
                                 called from an expression"
                            ),
                        ))
                    } else {
                        f(env, args)
                    }
                }
                ProcKind::User(decl) => {
                    if !decl.readonly {
                        Err(XdmError::new(
                            ErrorCode::XQSE0004,
                            format!(
                                "procedure {name} has side effects and cannot be \
                                 called from an expression"
                            ),
                        ))
                    } else {
                        let runner = self.engine.proc_runner().ok_or_else(|| {
                            XdmError::new(
                                ErrorCode::XPST0017,
                                "no statement engine installed for procedure calls",
                            )
                        })?;
                        runner(self.engine, &decl, args, env)
                    }
                }
            };
        }
        Err(XdmError::new(
            ErrorCode::XPST0017,
            format!("unknown function {name}#{}", args.len()),
        ))
    }

    fn call_user_function(
        &self,
        decl: &FunctionDecl,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        env.push_scope();
        let result = (|| {
            for (p, a) in decl.params.iter().zip(args) {
                let a = match &p.ty {
                    Some(ty) => ty
                        .convert(a, &format!("parameter ${} of {}", p.name, decl.name))?,
                    None => a,
                };
                env.bind(p.name.clone(), a);
            }
            // Function bodies see no outer focus.
            let saved_focus = env.focus.take();
            let body = decl.body.as_ref().expect("user function has body");
            let out = self.eval(body, env);
            env.focus = saved_focus;
            let out = out?;
            if let Some(ty) = &decl.return_type {
                ty.check(&out, &format!("result of {}", decl.name))?;
            }
            Ok(out)
        })();
        env.pop_scope();
        result
    }

    /// Settle a constructor's memory charge after the tree is built:
    /// every node record allocated in the constructor's own arena
    /// beyond the root (the admission unit covered that), plus one
    /// pointer unit per subtree grafted during the construction.
    /// Coarse by design — nested constructors settle themselves and a
    /// graft they perform may be counted once more here; the ceiling
    /// is a guard rail, not an allocator.
    fn settle_construction_memory(
        &self,
        arena: &SharedArena,
        before: &xdm::XdmStats,
    ) -> XdmResult<()> {
        let grafts = xdm::xdm_stats().since(before).subtrees_grafted;
        let local = (arena.borrow().len().saturating_sub(1)) as u64;
        let units = local + grafts;
        if units > 0 {
            self.engine.budget_charge_memory(units)?;
        }
        Ok(())
    }

    fn eval_name_expr(
        &self,
        name: &NameExpr,
        env: &mut Env,
        what: &str,
    ) -> XdmResult<QName> {
        match name {
            NameExpr::Fixed(q) => Ok(q.clone()),
            NameExpr::Computed(e) => {
                let v = self.eval(e, env)?;
                match one_atomic(&v, what)? {
                    AtomicValue::QName(q) => Ok(q),
                    other => QName::parse_lexical(&other.string_value()).ok_or_else(
                        || {
                            XdmError::new(
                                ErrorCode::FORG0001,
                                format!("computed {what} name {:?} is not a QName", other.string_value()),
                            )
                        },
                    ),
                }
            }
        }
    }

    // ----------------------------------------------------- constructors

    fn build_direct_element(
        &self,
        de: &DirectElement,
        arena: &SharedArena,
        env: &mut Env,
    ) -> XdmResult<NodeHandle> {
        let elem = NodeHandle::new_element(arena, de.name.clone());
        for (p, u) in &de.ns_decls {
            elem.add_ns_decl(p.clone(), u.clone());
        }
        for (name, parts) in &de.attributes {
            let mut value = String::new();
            for part in parts {
                match part {
                    AttrContent::Text(t) => value.push_str(t),
                    AttrContent::Expr(e) => {
                        let v = self.eval(e, env)?;
                        value.push_str(&space_joined(&v));
                    }
                }
            }
            elem.set_attribute(&NodeHandle::new_attribute(arena, name.clone(), value))?;
        }
        for c in &de.content {
            match c {
                DirectContent::Text(t) => {
                    elem.append_child(&NodeHandle::new_text(arena, t.clone()))?;
                }
                DirectContent::Comment(t) => {
                    elem.append_child(&NodeHandle::new_comment(arena, t.clone()))?;
                }
                DirectContent::Pi(target, data) => {
                    elem.append_child(&NodeHandle::new_pi(
                        arena,
                        target.clone(),
                        data.clone(),
                    ))?;
                }
                DirectContent::Element(child) => {
                    let c = self.build_direct_element(child, arena, env)?;
                    elem.append_child(&c)?;
                }
                DirectContent::Expr(e) => {
                    let v = self.eval(e, env)?;
                    assemble_content(&elem, &v, self.engine.graft_enabled())?;
                }
            }
        }
        Ok(elem)
    }

    fn eval_arith(
        &self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        let lv = self.eval(l, env)?;
        let rv = self.eval(r, env)?;
        let (Some(a), Some(b)) = (
            opt_one_atomic(&lv, "arithmetic")?,
            opt_one_atomic(&rv, "arithmetic")?,
        ) else {
            return Ok(Sequence::empty());
        };
        let a = coerce_numeric(a)?;
        let b = coerce_numeric(b)?;
        arith(op, a, b).map(|v| Sequence::one(Item::Atomic(v)))
    }

    fn eval_opt_integer(&self, e: &Expr, env: &mut Env) -> XdmResult<Option<i64>> {
        let v = self.eval(e, env)?;
        match opt_one_atomic(&v, "range")? {
            None => Ok(None),
            Some(a) => match a.cast_to(AtomicType::Integer)? {
                AtomicValue::Integer(i) => Ok(Some(i)),
                _ => unreachable!(),
            },
        }
    }
}

/// A detected pushdown opportunity.
struct Pushdown<'a> {
    cap: crate::engine::SourceCapability,
    col: String,
    class: crate::engine::ColClass,
    key_steps: Vec<Step>,
    key_expr: &'a Expr,
}

/// Canonicalize a comparison key for a source column class, or `None`
/// when the key cannot be pushed without risking *false negatives*
/// (the source answers by canonical-lexical hash equality; the rewrite
/// re-verifies candidates, so false positives are harmless but missed
/// rows are not):
///
/// - `Integer` columns store canonical `i64` lexicals. Numeric keys
///   compare numerically (push the integral value; non-integral or
///   out-of-range values fall back). Untyped keys compare *stringly*
///   against untyped column values, and only canonical lexicals can
///   ever match — parsing and re-rendering is safe because a
///   non-canonical key matches nothing either way.
/// - `String` columns: string/untyped keys push verbatim; numeric keys
///   would compare numerically against e.g. `"007"` and must fall back.
/// - `Boolean` columns store `true`/`false`. Boolean keys push their
///   canonical lexical; untyped keys are normalized (`1` → `true`),
///   with re-verification discarding the lexical mismatches.
fn pushdown_key(class: crate::engine::ColClass, a: &AtomicValue) -> Option<String> {
    use crate::engine::ColClass;
    match class {
        ColClass::Integer => {
            let d = match a {
                v if v.type_of().is_numeric() => to_f64(v).ok()?,
                AtomicValue::Untyped(s) => s.trim().parse::<f64>().ok()?,
                _ => return None,
            };
            if !d.is_finite() || d.fract() != 0.0 || d.abs() >= 9.007_199_254_740_992e15 {
                return None;
            }
            Some(format!("{}", d as i64))
        }
        ColClass::String => match a {
            AtomicValue::String(s) | AtomicValue::Untyped(s) => Some(s.clone()),
            _ => None,
        },
        ColClass::Boolean => match a {
            AtomicValue::Boolean(b) => Some(b.to_string()),
            AtomicValue::Untyped(s) => match s.trim() {
                "true" | "1" => Some("true".to_string()),
                "false" | "0" => Some("false".to_string()),
                _ => None,
            },
            _ => None,
        },
    }
}

// ---------------------------------------------------------------- utils

fn overflow() -> XdmError {
    XdmError::new(ErrorCode::FOAR0002, "integer overflow")
}

fn one_atomic(seq: &Sequence, what: &str) -> XdmResult<AtomicValue> {
    opt_one_atomic(seq, what)?.ok_or_else(|| {
        XdmError::new(ErrorCode::XPTY0004, format!("{what}: empty sequence"))
    })
}

fn opt_one_atomic(seq: &Sequence, what: &str) -> XdmResult<Option<AtomicValue>> {
    let atoms = seq.atomized();
    match atoms.len() {
        0 => Ok(None),
        1 => Ok(Some(atoms.into_iter().next().expect("one"))),
        n => Err(XdmError::new(
            ErrorCode::XPTY0004,
            format!("{what}: expected at most one item, got {n}"),
        )),
    }
}

/// Untyped operands in arithmetic become doubles (XQuery 1.0 §3.4).
fn coerce_numeric(a: AtomicValue) -> XdmResult<AtomicValue> {
    match a {
        AtomicValue::Untyped(_) => a.cast_to(AtomicType::Double),
        other => Ok(other),
    }
}

fn arith(op: BinaryOp, a: AtomicValue, b: AtomicValue) -> XdmResult<AtomicValue> {
    use AtomicValue as V;
    // Promote: double > decimal > integer.
    let pair = (&a, &b);
    let any_double = matches!(pair.0, V::Double(_)) || matches!(pair.1, V::Double(_));
    if !a.type_of().is_numeric() || !b.type_of().is_numeric() {
        return Err(XdmError::new(
            ErrorCode::XPTY0004,
            format!("arithmetic on {} and {}", a.type_of(), b.type_of()),
        ));
    }
    if any_double {
        let (x, y) = (to_f64(&a)?, to_f64(&b)?);
        let r = match op {
            BinaryOp::Add => x + y,
            BinaryOp::Sub => x - y,
            BinaryOp::Mul => x * y,
            BinaryOp::Div => x / y,
            BinaryOp::IDiv => {
                if y == 0.0 {
                    return Err(XdmError::new(ErrorCode::FOAR0001, "idiv by zero"));
                }
                return Ok(V::Integer((x / y).trunc() as i64));
            }
            BinaryOp::Mod => x % y,
        };
        return Ok(V::Double(r));
    }
    let any_decimal = matches!(pair.0, V::Decimal(_)) || matches!(pair.1, V::Decimal(_));
    let dec = |v: &AtomicValue| -> Decimal {
        match v {
            V::Integer(i) => Decimal::from_i64(*i),
            V::Decimal(d) => *d,
            _ => unreachable!("numeric"),
        }
    };
    if any_decimal || op == BinaryOp::Div {
        let (x, y) = (dec(&a), dec(&b));
        return Ok(match op {
            BinaryOp::Add => V::Decimal(x.checked_add(y)?),
            BinaryOp::Sub => V::Decimal(x.checked_sub(y)?),
            BinaryOp::Mul => V::Decimal(x.checked_mul(y)?),
            BinaryOp::Div => V::Decimal(x.checked_div(y)?),
            BinaryOp::IDiv => V::Integer(x.checked_idiv(y)?),
            BinaryOp::Mod => V::Decimal(x.checked_mod(y)?),
        }
        .normalize_decimal_to_int(any_decimal));
    }
    // Pure integer.
    let (V::Integer(x), V::Integer(y)) = (&a, &b) else { unreachable!() };
    let (x, y) = (*x, *y);
    Ok(match op {
        BinaryOp::Add => V::Integer(x.checked_add(y).ok_or_else(overflow)?),
        BinaryOp::Sub => V::Integer(x.checked_sub(y).ok_or_else(overflow)?),
        BinaryOp::Mul => V::Integer(x.checked_mul(y).ok_or_else(overflow)?),
        BinaryOp::Div => unreachable!("handled above"),
        BinaryOp::IDiv => {
            if y == 0 {
                return Err(XdmError::new(ErrorCode::FOAR0001, "idiv by zero"));
            }
            V::Integer(x.checked_div(y).ok_or_else(overflow)?)
        }
        BinaryOp::Mod => {
            if y == 0 {
                return Err(XdmError::new(ErrorCode::FOAR0001, "mod by zero"));
            }
            V::Integer(x % y)
        }
    })
}

trait NormalizeNum {
    fn normalize_decimal_to_int(self, keep_decimal: bool) -> AtomicValue;
}

impl NormalizeNum for AtomicValue {
    /// `integer op integer` that routed through decimals (div) keeps
    /// decimal type; otherwise collapse integral decimals back to
    /// integers when both inputs were integers.
    fn normalize_decimal_to_int(self, keep_decimal: bool) -> AtomicValue {
        if keep_decimal {
            return self;
        }
        match self {
            AtomicValue::Decimal(d) if d.scale() == 0 => match d.trunc_i64() {
                Ok(i) => AtomicValue::Integer(i),
                Err(_) => AtomicValue::Decimal(d),
            },
            other => other,
        }
    }
}

fn general_pair_matches(
    op: GeneralComp,
    a: &AtomicValue,
    b: &AtomicValue,
) -> XdmResult<bool> {
    let ord = a.value_compare(b)?;
    Ok(match ord {
        None => false,
        Some(o) => match op {
            GeneralComp::Eq => o == Ordering::Equal,
            GeneralComp::Ne => o != Ordering::Equal,
            GeneralComp::Lt => o == Ordering::Less,
            GeneralComp::Le => o != Ordering::Greater,
            GeneralComp::Gt => o == Ordering::Greater,
            GeneralComp::Ge => o != Ordering::Less,
        },
    })
}

/// Stable-sort rows by their precomputed `order by` keys. Comparator
/// errors (incomparable key pairs) cannot unwind out of `sort_by`, so
/// the first one is captured and re-raised after the sort finishes —
/// this is the single shared implementation of the clause's
/// error-capture contract for every order-by evaluation site.
pub(crate) fn order_by_sort<T>(
    mut keyed: Vec<(Vec<Option<AtomicValue>>, T)>,
    specs: &[OrderSpec],
) -> XdmResult<Vec<T>> {
    let mut sort_err: Option<XdmError> = None;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, spec) in specs.iter().enumerate() {
            match order_keys(&ka[i], &kb[i], spec) {
                Ok(Ordering::Equal) => continue,
                Ok(o) => return o,
                Err(e) => {
                    if sort_err.is_none() {
                        sort_err = Some(e);
                    }
                    return Ordering::Equal;
                }
            }
        }
        Ordering::Equal
    });
    match sort_err {
        Some(e) => Err(e),
        None => Ok(keyed.into_iter().map(|(_, t)| t).collect()),
    }
}

fn order_keys(
    a: &Option<AtomicValue>,
    b: &Option<AtomicValue>,
    spec: &OrderSpec,
) -> XdmResult<Ordering> {
    let o = match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => {
            if spec.empty_least {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (Some(_), None) => {
            if spec.empty_least {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (Some(x), Some(y)) => {
            // Untyped sorts as string against strings, numeric vs
            // numerics — value_compare handles the coercion.
            x.value_compare(y)?.unwrap_or(Ordering::Equal)
        }
    };
    Ok(if spec.descending { o.reverse() } else { o })
}

/// Which comparison family a `count(...) <op> N` interception came
/// from — the two families agree on singleton numerics, but each is
/// decided through its own machinery to keep promotions identical.
enum CountCmp {
    General(GeneralComp),
    Value(ValueComp),
}

/// The window a positional first predicate selects.
enum PosWindow {
    /// `[k]` or `[position() eq k]` — a single slot.
    Exact(f64),
    /// `[position() lt N]` / `[position() le N]` — a prefix.
    UpTo { bound: f64, inclusive: bool },
}

fn numeric_literal(e: &Expr) -> Option<AtomicValue> {
    if let Expr::Literal(a) = e {
        if a.type_of().is_numeric() {
            return Some(a.clone());
        }
    }
    None
}

fn value_comp_holds(op: ValueComp, o: Ordering) -> bool {
    match op {
        ValueComp::Eq => o == Ordering::Equal,
        ValueComp::Ne => o != Ordering::Equal,
        ValueComp::Lt => o == Ordering::Less,
        ValueComp::Le => o != Ordering::Greater,
        ValueComp::Gt => o == Ordering::Greater,
        ValueComp::Ge => o != Ordering::Less,
    }
}

fn general_comp_holds(op: GeneralComp, o: Ordering) -> bool {
    match op {
        GeneralComp::Eq => o == Ordering::Equal,
        GeneralComp::Ne => o != Ordering::Equal,
        GeneralComp::Lt => o == Ordering::Less,
        GeneralComp::Le => o != Ordering::Greater,
        GeneralComp::Gt => o == Ordering::Greater,
        GeneralComp::Ge => o != Ordering::Less,
    }
}

/// Recognize a first predicate that selects by position alone:
/// a numeric literal, or `position()` compared against a numeric
/// literal with an operator that bounds a prefix. `ge`/`gt`/`ne`
/// shapes keep the whole tail and gain nothing from streaming, so
/// they are not recognized.
fn positional_window(pred: &Expr) -> Option<PosWindow> {
    if let Some(a) = numeric_literal(pred) {
        return to_f64(&a).ok().map(PosWindow::Exact);
    }
    #[derive(Clone, Copy)]
    enum Rel {
        Eq,
        Lt,
        Le,
        Gt,
        Ge,
    }
    let (rel, l, r) = match pred {
        Expr::General(op, l, r) => {
            let rel = match op {
                GeneralComp::Eq => Rel::Eq,
                GeneralComp::Lt => Rel::Lt,
                GeneralComp::Le => Rel::Le,
                GeneralComp::Gt => Rel::Gt,
                GeneralComp::Ge => Rel::Ge,
                GeneralComp::Ne => return None,
            };
            (rel, &**l, &**r)
        }
        Expr::Value(op, l, r) => {
            let rel = match op {
                ValueComp::Eq => Rel::Eq,
                ValueComp::Lt => Rel::Lt,
                ValueComp::Le => Rel::Le,
                ValueComp::Gt => Rel::Gt,
                ValueComp::Ge => Rel::Ge,
                ValueComp::Ne => return None,
            };
            (rel, &**l, &**r)
        }
        _ => return None,
    };
    let is_position = |e: &Expr| -> bool {
        matches!(e, Expr::FunctionCall { name, args }
            if args.is_empty()
                && name.ns.as_deref() == Some(FN_NS)
                && name.local == "position")
    };
    let bound_of = |e: &Expr| numeric_literal(e).and_then(|a| to_f64(&a).ok());
    if is_position(l) {
        let bound = bound_of(r)?;
        return match rel {
            Rel::Eq => Some(PosWindow::Exact(bound)),
            Rel::Lt => Some(PosWindow::UpTo { bound, inclusive: false }),
            Rel::Le => Some(PosWindow::UpTo { bound, inclusive: true }),
            Rel::Gt | Rel::Ge => None,
        };
    }
    if is_position(r) {
        let bound = bound_of(l)?;
        // Flipped operand order: `N gt position()` keeps a prefix.
        return match rel {
            Rel::Eq => Some(PosWindow::Exact(bound)),
            Rel::Gt => Some(PosWindow::UpTo { bound, inclusive: false }),
            Rel::Ge => Some(PosWindow::UpTo { bound, inclusive: true }),
            Rel::Lt | Rel::Le => None,
        };
    }
    None
}

fn predicate_truth(v: &Sequence, position: usize) -> XdmResult<bool> {
    // A singleton numeric predicate is a position test.
    if let [Item::Atomic(a)] = v.items() {
        if a.type_of().is_numeric() {
            let p = to_f64(a)?;
            return Ok(p == position as f64);
        }
    }
    v.effective_boolean()
}

fn axis_nodes(node: &NodeHandle, axis: Axis) -> Vec<NodeHandle> {
    match axis {
        Axis::Child => node.children(),
        Axis::Attribute => node.attributes(),
        Axis::Descendant => node.descendants(),
        Axis::DescendantOrSelf => {
            let mut v = vec![node.clone()];
            v.extend(node.descendants());
            v
        }
        Axis::SelfAxis => vec![node.clone()],
        Axis::Parent => node.parent().into_iter().collect(),
        Axis::Ancestor => node.ancestors(),
        Axis::AncestorOrSelf => {
            let mut v = vec![node.clone()];
            v.extend(node.ancestors());
            v
        }
        Axis::FollowingSibling => node.following_siblings(),
        Axis::PrecedingSibling => node.preceding_siblings(),
    }
}

/// The principal node kind of an axis (name tests match it).
fn principal_kind(axis: Axis) -> NodeKind {
    if axis == Axis::Attribute {
        NodeKind::Attribute
    } else {
        NodeKind::Element
    }
}

fn node_test_matches(test: &NodeTest, node: &NodeHandle, axis: Axis) -> bool {
    match test {
        NodeTest::Kind(k) => kind_test_matches(k, node),
        name_test => {
            node.kind() == principal_kind(axis)
                && name_test.matches_name(node.name().as_ref())
        }
    }
}

fn kind_test_matches(k: &KindTest, node: &NodeHandle) -> bool {
    match k {
        KindTest::AnyKind => true,
        KindTest::Document => node.kind() == NodeKind::Document,
        KindTest::Element(name) => {
            node.kind() == NodeKind::Element
                && name.as_ref().is_none_or(|q| node.name().as_ref() == Some(q))
        }
        KindTest::Attribute(name) => {
            node.kind() == NodeKind::Attribute
                && name.as_ref().is_none_or(|q| node.name().as_ref() == Some(q))
        }
        KindTest::Text => node.kind() == NodeKind::Text,
        KindTest::Comment => node.kind() == NodeKind::Comment,
        KindTest::Pi(target) => {
            node.kind() == NodeKind::Pi
                && target
                    .as_ref()
                    .is_none_or(|t| node.name().is_some_and(|q| q.local == *t))
        }
    }
}

fn resolve_atomic_type(q: &QName) -> XdmResult<AtomicType> {
    let is_xs = q.ns.as_deref() == Some(XS_NS) || q.ns.is_none();
    if is_xs {
        if let Some(t) = AtomicType::from_local(&q.local) {
            return Ok(t);
        }
    }
    Err(XdmError::new(
        ErrorCode::XPST0003,
        format!("unknown atomic type {q}"),
    ))
}

fn require_pul(env: &mut Env) -> XdmResult<&mut Pul> {
    env.pul.as_mut().ok_or_else(|| {
        XdmError::new(
            ErrorCode::XUST0001,
            "updating expression evaluated outside an update statement",
        )
    })
}

/// Space-joined string of an atomized sequence (attribute/text
/// content rules).
fn space_joined(seq: &Sequence) -> String {
    seq.atomized()
        .iter()
        .map(|a| a.string_value())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Element-content assembly: adjacent atomics become one text node
/// (space-separated); nodes are copied; attribute nodes attach to the
/// element (only before other content); document nodes contribute
/// their children.
///
/// With `graft` on, already-materialized element subtrees from other
/// arenas are adopted **by reference** (zero-copy) when immutability
/// can be guaranteed — the source is sealed on first share and any
/// later mutation through the host copies on write. Observable
/// semantics (serialization, axes, node identity of the constructed
/// tree) are identical to the deep-copy path.
fn assemble_content(parent: &NodeHandle, seq: &Sequence, graft: bool) -> XdmResult<()> {
    let arena = parent.arena().clone();
    let mut pending_text: Option<String> = None;
    let mut seen_non_attr = !parent.children().is_empty();
    for item in seq.iter() {
        match item {
            Item::Atomic(a) => {
                let s = a.string_value();
                pending_text = Some(match pending_text.take() {
                    Some(prev) => format!("{prev} {s}"),
                    None => s,
                });
            }
            Item::Node(n) => {
                if let Some(t) = pending_text.take() {
                    parent.append_child(&NodeHandle::new_text(&arena, t))?;
                    seen_non_attr = true;
                }
                match n.kind() {
                    NodeKind::Attribute => {
                        if seen_non_attr {
                            return Err(XdmError::new(
                                ErrorCode::XPTY0004,
                                "attribute node after non-attribute content",
                            ));
                        }
                        let a = copy_for_content(n, &arena);
                        parent.set_attribute(&a)?;
                    }
                    NodeKind::Document => {
                        for c in n.children() {
                            if graft && c.graftable_into(&arena) {
                                parent.graft_child(&c)?;
                            } else {
                                let cc = copy_for_content(&c, &arena);
                                parent.append_child(&cc)?;
                            }
                        }
                        seen_non_attr = true;
                    }
                    _ => {
                        if graft && n.graftable_into(&arena) {
                            parent.graft_child(n)?;
                        } else {
                            let c = copy_for_content(n, &arena);
                            parent.append_child(&c)?;
                        }
                        seen_non_attr = true;
                    }
                }
            }
        }
    }
    if let Some(t) = pending_text {
        parent.append_child(&NodeHandle::new_text(&arena, t))?;
    }
    Ok(())
}

/// Constructor content is copied — except freshly constructed,
/// parentless nodes already in the target arena, which can be moved
/// (they are unobservable elsewhere).
fn copy_for_content(n: &NodeHandle, arena: &SharedArena) -> NodeHandle {
    if n.parent().is_none() && Rc::ptr_eq(n.arena(), arena) {
        n.clone()
    } else {
        n.deep_copy_into(arena)
    }
}

/// Split a sequence into (content nodes, attribute nodes) copied into
/// the target arena — the XUF insert/replace source normalization.
fn content_nodes(
    seq: &Sequence,
    arena: &SharedArena,
) -> XdmResult<(Vec<NodeHandle>, Vec<NodeHandle>)> {
    let mut content = Vec::new();
    let mut attrs = Vec::new();
    let mut pending_text: Option<String> = None;
    for item in seq.iter() {
        match item {
            Item::Atomic(a) => {
                let s = a.string_value();
                pending_text = Some(match pending_text.take() {
                    Some(prev) => format!("{prev} {s}"),
                    None => s,
                });
            }
            Item::Node(n) => {
                if let Some(t) = pending_text.take() {
                    content.push(NodeHandle::new_text(arena, t));
                }
                match n.kind() {
                    NodeKind::Attribute => attrs.push(n.deep_copy_into(arena)),
                    NodeKind::Document => {
                        for c in n.children() {
                            content.push(c.deep_copy_into(arena));
                        }
                    }
                    _ => content.push(n.deep_copy_into(arena)),
                }
            }
        }
    }
    if let Some(t) = pending_text {
        content.push(NodeHandle::new_text(arena, t));
    }
    Ok((content, attrs))
}

// ------------------------------------------------- join-cache plumbing

fn env_join_cache(env: &mut Env) -> &mut HashMap<(usize, u64), Rc<JoinIndex>> {
    &mut env.join_cache
}

fn steps_fingerprint(steps: &[Step]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    for s in steps {
        format!("{:?}|{:?}", s.axis, s.test).hash(&mut h);
    }
    h.finish()
}

/// Does the expression reference any variable at all?
fn expr_refs_any_var(e: &Expr) -> bool {
    let mut found = false;
    walk_expr(e, &mut |x| {
        if matches!(x, Expr::VarRef(_)) {
            found = true;
        }
    });
    found
}

/// Does the expression reference the given variable?
fn expr_refs_var(e: &Expr, var: &QName) -> bool {
    let mut found = false;
    walk_expr(e, &mut |x| {
        if matches!(x, Expr::VarRef(v) if v == var) {
            found = true;
        }
    });
    found
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => {}
        Expr::Comma(v) => v.iter().for_each(|x| walk_expr(x, f)),
        Expr::Range(a, b)
        | Expr::Binary(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::General(_, a, b)
        | Expr::Value(_, a, b)
        | Expr::Node(_, a, b)
        | Expr::Set(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Unary(_, a)
        | Expr::ComputedText(a)
        | Expr::ComputedComment(a)
        | Expr::ComputedDocument(a)
        | Expr::Delete(a) => walk_expr(a, f),
        Expr::If(c, t, e2) => {
            walk_expr(c, f);
            walk_expr(t, f);
            walk_expr(e2, f);
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => walk_expr(source, f),
                    FlworClause::Let { value, .. } => walk_expr(value, f),
                    FlworClause::Where(w) => walk_expr(w, f),
                    FlworClause::OrderBy(specs) => {
                        specs.iter().for_each(|s| walk_expr(&s.key, f))
                    }
                }
            }
            walk_expr(ret, f);
        }
        Expr::Quantified { bindings, satisfies, .. } => {
            bindings.iter().for_each(|(_, s)| walk_expr(s, f));
            walk_expr(satisfies, f);
        }
        Expr::Typeswitch { operand, cases } => {
            walk_expr(operand, f);
            cases.iter().for_each(|c| walk_expr(&c.body, f));
        }
        Expr::Path { start, steps } => {
            if let PathStart::Expr(b) = start {
                walk_expr(b, f);
            }
            for s in steps {
                s.predicates.iter().for_each(|p| walk_expr(p, f));
            }
        }
        Expr::Filter { base, predicates } => {
            walk_expr(base, f);
            predicates.iter().for_each(|p| walk_expr(p, f));
        }
        Expr::FunctionCall { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
        Expr::DirectElement(de) => walk_direct(de, f),
        Expr::ComputedElement(n, c) | Expr::ComputedAttribute(n, c) | Expr::ComputedPi(n, c) => {
            if let NameExpr::Computed(e2) = n {
                walk_expr(e2, f);
            }
            if let Some(c) = c {
                walk_expr(c, f);
            }
        }
        Expr::InstanceOf(a, _)
        | Expr::TreatAs(a, _)
        | Expr::CastAs(a, _, _)
        | Expr::CastableAs(a, _, _) => walk_expr(a, f),
        Expr::Insert { source, target, .. } => {
            walk_expr(source, f);
            walk_expr(target, f);
        }
        Expr::Replace { target, with, .. } => {
            walk_expr(target, f);
            walk_expr(with, f);
        }
        Expr::Rename { target, new_name } => {
            walk_expr(target, f);
            walk_expr(new_name, f);
        }
        Expr::Transform { copies, modify, ret } => {
            copies.iter().for_each(|(_, e2)| walk_expr(e2, f));
            walk_expr(modify, f);
            walk_expr(ret, f);
        }
    }
}

fn walk_direct(de: &DirectElement, f: &mut impl FnMut(&Expr)) {
    for (_, parts) in &de.attributes {
        for p in parts {
            if let AttrContent::Expr(e) = p {
                walk_expr(e, f);
            }
        }
    }
    for c in &de.content {
        match c {
            DirectContent::Expr(e) => walk_expr(e, f),
            DirectContent::Element(child) => walk_direct(child, f),
            _ => {}
        }
    }
}
